"""Scenario: ship a pre-trained type-inference model as an artifact.

The paper's public repository distributes pre-trained models so AutoML
platforms can integrate type inference without touching the training data.
This example trains once, saves the model with its integrity header, reloads
it in a "deployment" step, and serves predictions — plus exports the labeled
corpus to plain CSV files the way the benchmark is published.

Run:  python examples/deploy_pretrained.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import (
    RandomForestModel,
    TypeInferencePipeline,
    load_model,
    save_model,
)
from repro.datagen import export_corpus, generate_corpus, load_corpus


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-deploy-"))
    print(f"workspace: {workdir}")

    # --- "research" side: build the benchmark, train, publish ------------
    print("\n[research] generating labeled corpus and training OurRF...")
    corpus = generate_corpus(n_examples=1000, seed=0)
    model = RandomForestModel(n_estimators=40, random_state=0)
    model.fit(corpus.dataset)

    model_path = workdir / "sortinghat_rf.model"
    save_model(model, model_path)
    print(f"[research] model artifact written: {model_path} "
          f"({model_path.stat().st_size / 1024:.0f} KiB)")

    corpus_dir = workdir / "benchmark_release"
    manifest = export_corpus(corpus, corpus_dir)
    n_csvs = len(list((corpus_dir / "raw").glob("*.csv")))
    print(f"[research] benchmark release: {n_csvs} raw CSV files + "
          f"{manifest.name}")

    # --- "platform" side: load the artifact, serve predictions ----------
    print("\n[platform] loading the published model artifact...")
    served = load_model(model_path)
    pipeline = TypeInferencePipeline(served)

    release = load_corpus(corpus_dir)
    sample_file = release.files[0]
    print(f"[platform] inferring types for uploaded file "
          f"{sample_file.name!r} ({sample_file.n_columns} columns):")
    for prediction in pipeline.predict_table(sample_file):
        truth = release.truth[(sample_file.name, prediction.column)]
        mark = "ok " if prediction.feature_type is truth else "MISS"
        print(f"   [{mark}] {prediction.column:<22} "
              f"pred={prediction.feature_type.value:<18} "
              f"truth={truth.value}")

    # sanity: artifact predictions match the in-memory model exactly
    profiles = release.dataset.profiles[:50]
    assert served.predict(profiles) == model.predict(profiles)
    print("\n[platform] artifact predictions match the trained model — "
          "safe to deploy.")


if __name__ == "__main__":
    main()
