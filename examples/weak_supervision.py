"""Scenario: amplify 100 hand labels into a full training set.

Realizes the paper's Section 6.2 future-work direction (Snorkel/Snuba-style
weak supervision): hand-label a small development set, turn the existing
heuristics into labeling functions, weak-label everything else with a
weighted label model, and train on the amplified set.

Run:  python examples/weak_supervision.py
"""

from __future__ import annotations

from repro.datagen import generate_corpus
from repro.weak import amplify, default_labeling_functions, lf_summary

N_DEV = 100


def main() -> None:
    print("Generating the corpus (only the first "
          f"{N_DEV} columns get human labels)...")
    corpus = generate_corpus(n_examples=1200, seed=0)
    by_key = {(t.name, c.name): c for t in corpus.files for c in t}
    columns = [
        by_key[(p.source_file, p.name)] for p in corpus.dataset.profiles
    ]

    dev = corpus.dataset.subset(range(N_DEV))
    dev_columns = columns[:N_DEV]

    print("\nLabeling-function diagnostics on the dev set:")
    lfs = default_labeling_functions()
    rows = lf_summary(lfs, dev_columns, dev.profiles, dev.labels)
    print(f"   {'labeling function':<22} {'coverage':<9} accuracy")
    for row in sorted(rows, key=lambda r: -r["coverage"]):
        print(f"   {row['lf']:<22} {row['coverage']:<9.2f} "
              f"{row['accuracy']:.2f}")

    print("\nWeak-labeling the remaining "
          f"{len(corpus.dataset) - N_DEV} columns and retraining...")
    result = amplify(
        dev, dev_columns,
        corpus.dataset.profiles[N_DEV:], columns[N_DEV:],
        n_estimators=40,
    )
    print(f"   kept {result.n_weakly_labeled} confident weak labels "
          f"(accuracy vs hidden truth: {result.weak_label_accuracy:.3f}; "
          f"abstained on {result.n_abstained})")

    fresh = generate_corpus(n_examples=400, seed=99)
    dev_only = result.dev_only_model.score(fresh.dataset)
    amplified = result.amplified_model.score(fresh.dataset)
    print("\nHeld-out accuracy on a fresh corpus:")
    print(f"   {N_DEV} human labels only:            {dev_only:.3f}")
    print(f"   {N_DEV} human + weak labels:          {amplified:.3f}")
    print("\nTakeaway: the heuristics are weak teachers individually, but a "
          "weighted\ncombination of their votes amplifies a small labeled "
          "set essentially for free.")


if __name__ == "__main__":
    main()
