"""Scenario: compare all five model families + every baseline tool.

Reproduces the core of the paper's Section 4 at a small scale: train
Logistic Regression, RBF-SVM, Random Forest, k-NN (weighted edit+euclidean
distance), and the char-CNN on the labeled corpus, evaluate them against
TFDV / Pandas / TransmogrifAI / AutoGluon / the rule baseline on a held-out
test set, and print a mini leaderboard.

Run:  python examples/compare_models.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    CNNModel,
    KNNModel,
    LogRegModel,
    RandomForestModel,
    SVMModel,
)
from repro.datagen import generate_corpus
from repro.ml import accuracy_score, train_test_split
from repro.tools import (
    AutoGluonTool,
    PandasTool,
    RuleBaselineTool,
    TFDVTool,
    TransmogrifAITool,
)


def main() -> None:
    print("Generating labeled corpus...")
    corpus = generate_corpus(n_examples=1200, seed=0)
    labels = [label.value for label in corpus.dataset.labels]
    index = np.arange(len(corpus.dataset))
    train_idx, test_idx = train_test_split(
        index, test_size=0.2, random_state=0, stratify=labels
    )
    train = corpus.dataset.subset(train_idx)
    test = corpus.dataset.subset(test_idx)
    truth = [label.value for label in test.labels]
    results: list[tuple[str, float, float]] = []

    print("Scoring the rule/syntax-based tools...")
    columns = {(t.name, c.name): c for t in corpus.files for c in t}
    test_columns = [columns[(p.source_file, p.name)] for p in test.profiles]
    for tool in (TFDVTool(), PandasTool(), TransmogrifAITool(),
                 AutoGluonTool(), RuleBaselineTool()):
        start = time.perf_counter()
        preds = [tool.infer_column(c).value for c in test_columns]
        results.append(
            (tool.name, accuracy_score(truth, preds), time.perf_counter() - start)
        )

    print("Training the five ML model families (this takes a minute)...")
    models = {
        "logreg": LogRegModel(),
        "rbf-svm": SVMModel(max_landmarks=600),
        "random-forest": RandomForestModel(n_estimators=50, random_state=0),
        "knn": KNNModel(n_neighbors=5, gamma=1.0),
        "char-cnn": CNNModel(epochs=8, random_state=0),
    }
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(train)
        preds = [p.value for p in model.predict(test.profiles)]
        results.append(
            (name, accuracy_score(truth, preds), time.perf_counter() - start)
        )

    results.sort(key=lambda row: -row[1])
    print(f"\n{'approach':<16} {'9-class accuracy':<18} seconds")
    print(f"{'-' * 16} {'-' * 18} {'-' * 7}")
    for name, accuracy, seconds in results:
        print(f"{name:<16} {accuracy:<18.3f} {seconds:.1f}")
    print(
        "\nExpected shape (paper Table 1/2): the trained models cluster at "
        "the top,\nRandom Forest first; the syntax-reading tools trail far "
        "behind because\ninteger-coded categoricals and integer keys read as "
        "Numeric to them."
    )


if __name__ == "__main__":
    main()
