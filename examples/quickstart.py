"""Quickstart: infer ML feature types for a raw CSV file.

This walks the paper's Figure 1 workflow end-to-end:

1. train the benchmark's best model (a Random Forest over descriptive stats
   + column-name bigrams) on the labeled corpus;
2. point the pipeline at a raw CSV file;
3. read off a feature type + confidence per column, plus the human-review
   queue an AutoML platform would surface.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RandomForestModel, TypeInferencePipeline
from repro.datagen import generate_corpus

# The paper's running example (Figure 2): a customer-churn table whose
# attribute types lie about their feature types.
CHURN_CSV = """CustID,Gender,Salary,ZipCode,XYZ,Income,HireDate,Churn
1501,F,1500,92092,005,USD 15000,05/01/1992,Yes
1704,M,3400,78712,003,USD 25384,12/09/2008,No
1932,F,2700,10001,004,USD 41200,03/15/2015,No
2045,M,5100,60601,001,USD 18750,07/22/2001,Yes
2111,F,4200,94105,002,USD 30300,11/02/2011,No
2239,M,3900,92092,005,USD 27000,01/19/2006,Yes
2307,F,2200,78712,003,USD 22100,09/08/1999,No
2450,M,4700,10001,002,USD 35900,04/27/2018,Yes
2513,F,3100,60601,001,USD 24800,06/13/2004,No
2688,M,2900,94105,004,USD 19600,08/30/2013,Yes
2755,F,5300,92092,002,USD 44100,02/11/1996,No
2891,M,3600,78712,001,USD 28700,10/05/2009,Yes
3005,F,4400,10001,003,USD 39800,05/17/2012,No
3120,M,2600,60601,005,USD 21500,12/01/1998,Yes
3246,F,4900,94105,004,USD 33600,03/09/2017,No
3371,M,3300,92092,002,USD 26200,07/25/2003,Yes
"""


def main() -> None:
    print("1. Generating the labeled benchmark corpus (synthetic stand-in for")
    print("   the 9,921-column ML Data Prep Zoo dataset)...")
    corpus = generate_corpus(n_examples=1500, seed=0)

    print("2. Training the paper's best model (Random Forest, stats+name)...")
    model = RandomForestModel(n_estimators=50, random_state=0)
    model.fit(corpus.dataset)

    print("3. Inferring feature types for the churn table:\n")
    pipeline = TypeInferencePipeline(model)
    predictions = pipeline.predict_csv_text(CHURN_CSV)

    print(f"   {'column':<10} {'feature type':<20} {'confidence':<11} review?")
    print(f"   {'-' * 10} {'-' * 20} {'-' * 11} {'-' * 7}")
    for prediction in predictions:
        flag = "YES" if prediction.needs_review else ""
        print(
            f"   {prediction.column:<10} {prediction.feature_type.value:<20} "
            f"{prediction.confidence:<11.2f} {flag}"
        )

    print(
        "\nNote how ZipCode (stored as integers) comes out Categorical, "
        "Income (a string with a currency prefix) comes out Embedded Number, "
        "and CustID (also integers) comes out Not-Generalizable — exactly "
        "the semantic-gap calls a syntax-reading tool gets wrong."
    )


if __name__ == "__main__":
    main()
