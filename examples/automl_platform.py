"""Scenario: an AutoML platform's ingestion gateway.

Mirrors how TFDV/TransmogrifAI/AutoGluon sit in front of model building
(paper Figure 1) and demonstrates the paper's two headline findings on a
batch of freshly uploaded datasets:

1. the ML-based model disagrees with syntax-reading tools exactly on the
   semantic-gap columns (integer categoricals, integer keys);
2. routing columns by the *correct* types yields a better downstream model.

Run:  python examples/automl_platform.py
"""

from __future__ import annotations

from repro.core import RandomForestModel, TypeInferencePipeline, profile_table
from repro.datagen import generate_corpus
from repro.datagen.downstream import SPEC_BY_NAME, make_dataset
from repro.downstream import (
    evaluate_assignment,
    model_assignments,
    tool_assignments,
    truth_assignments,
)
from repro.tools import TFDVTool


def train_gateway_model() -> RandomForestModel:
    print("Training the gateway's type-inference model...")
    corpus = generate_corpus(n_examples=1500, seed=0)
    model = RandomForestModel(n_estimators=50, random_state=0)
    model.fit(corpus.dataset)
    return model


def ingest(dataset_name: str, model: RandomForestModel) -> None:
    """Simulate one dataset upload: infer types, compare with TFDV, train."""
    print(f"\n=== Upload: {dataset_name} ===")
    dataset = make_dataset(SPEC_BY_NAME[dataset_name], seed=13)
    tfdv = TFDVTool()

    ours = model_assignments(dataset, model)
    theirs = tool_assignments(dataset, tfdv)
    truth = truth_assignments(dataset)

    disagreements = [
        name for name in truth if ours[name] != theirs.get(name)
    ]
    print(f"columns: {len(truth)}, disagreements with TFDV: {len(disagreements)}")
    for name in disagreements[:5]:
        print(
            f"  {name:<16} truth={truth[name].short:<4} "
            f"ours={ours[name].short:<4} tfdv={theirs[name].short}"
        )

    for label, assignment in (("truth", truth), ("ours", ours), ("tfdv", theirs)):
        score = evaluate_assignment(dataset, assignment, "linear", seed=0)
        unit = "acc" if score.higher_is_better else "rmse"
        print(f"  downstream linear model with {label:<6} types: "
              f"{score.value:8.2f} ({unit})")


def review_queue_demo(model: RandomForestModel) -> None:
    """Show the confidence-based human-review routing of Section 3.3."""
    print("\n=== Human review queue ===")
    pipeline = TypeInferencePipeline(model)
    dataset = make_dataset(SPEC_BY_NAME["Pokemon"], seed=5)
    queue = pipeline.review_queue(dataset.table)
    profiles = profile_table(dataset.table)
    print(
        f"{len(queue)} of {len(profiles)} columns flagged "
        "(Context-Specific or low confidence):"
    )
    for item in queue[:6]:
        print(f"  {item.column:<18} {item.feature_type.value:<18} "
              f"confidence={item.confidence:.2f}")


def main() -> None:
    model = train_gateway_model()
    for dataset_name in ("Hayes", "Supreme", "Zoo"):
        ingest(dataset_name, model)
    review_queue_demo(model)


if __name__ == "__main__":
    main()
