"""Scenario: extend the 9-class vocabulary with a new semantic type.

Walks the paper's Appendix I.4 experiment: add *Country* as a tenth class by
(1) relabeling matching Categorical examples, (2) pulling weakly-labeled
Country columns from the (simulated) Sherlock data repository, and
(3) retraining the Random Forest — then verify the new class is learnable
with only ~100 extra labels while the original nine classes keep working.

Run:  python examples/extend_vocabulary.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.table11 import (
    ExtendedType,
    render_table11,
    run_table11,
)


def main() -> None:
    print("Building the benchmark context (corpus + split)...")
    context = BenchmarkContext(n_examples=1200, seed=0, rf_estimators=40)

    print("Extending the vocabulary with Country and State "
          "(N=100 and N=200 extra labels)...\n")
    rows = run_table11(context, extra_train_counts=(100, 200), extra_test=100)
    print(render_table11(rows))

    print("\nTakeaways (paper Appendix I.4):")
    print(" - programming cost: zero — the same training script covers "
          "10 classes;")
    print(" - labeling cost: ~100 weakly-supervised examples already give "
          "high precision;")
    print(" - feature engineering cost: zero — the 25 descriptive stats and "
          "bigram features carry signal for the new classes unchanged.")

    country_rows = [r for r in rows if r.extended_type is ExtendedType.COUNTRY]
    best = max(country_rows, key=lambda r: r.f1)
    print(
        f"\nBest Country run: N={best.n_extra_train}, "
        f"precision={best.precision:.3f}, recall={best.recall:.3f}, "
        f"10-class accuracy={best.ten_class_accuracy:.3f}"
    )


if __name__ == "__main__":
    main()
