"""Run the full 30-dataset downstream experiment, optionally in chunks.

Usage:
    python scripts/run_downstream_full.py --chunk 0 --of 3 --out out0.json

Each chunk writes a JSON file with per-dataset scores; merge_results() (or
running with --merge file1 file2 ...) combines chunks into the Table 4/5
summaries.  Chunking keeps each invocation inside batch-job time limits.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.downstream_exp import run_downstream_experiment
from repro.datagen.downstream import DOWNSTREAM_SPECS


def run_chunk(chunk: int, of: int, scale: int, seed: int) -> dict:
    names = tuple(
        spec.name for i, spec in enumerate(DOWNSTREAM_SPECS) if i % of == chunk
    )
    context = BenchmarkContext(n_examples=scale, seed=seed, rf_estimators=40)
    result = run_downstream_experiment(context, dataset_names=names, seed=seed)
    payload: dict = {"datasets": list(names), "scores": {}, "inference": {}}
    for approach, kinds in result.suite.scores.items():
        payload["scores"][approach] = {
            kind: {name: s.value for name, s in per_ds.items()}
            for kind, per_ds in kinds.items()
        }
    payload["tasks"] = {
        ds.name: ds.task for ds in result.datasets
    }
    for row in result.inference:
        payload["inference"][row.approach] = {
            "covered": row.covered,
            "total": row.total,
            "correct": row.correct_given_coverage,
        }
    return payload


def merge_results(paths: list[str]) -> str:
    """Combine chunk JSONs into Table 4-style summaries."""
    scores: dict = {}
    tasks: dict = {}
    inference: dict = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        tasks.update(payload["tasks"])
        for approach, kinds in payload["scores"].items():
            for kind, per_ds in kinds.items():
                scores.setdefault(approach, {}).setdefault(kind, {}).update(
                    per_ds
                )
        for approach, row in payload["inference"].items():
            agg = inference.setdefault(
                approach, {"covered": 0, "total": 0, "correct": 0}
            )
            for key in agg:
                agg[key] += row[key]

    lines = ["== Table 4(A): coverage & accuracy given coverage =="]
    for approach, agg in inference.items():
        acc = agg["correct"] / agg["covered"] if agg["covered"] else 0.0
        lines.append(
            f"{approach:<10} covered={agg['covered']}/{agg['total']} "
            f"accuracy={100 * acc:.1f}%"
        )

    approaches = [a for a in scores if a != "truth"]
    for kind in ("linear", "forest"):
        lines.append(f"\n== Table 4(B): vs truth, downstream {kind} ==")
        truth = scores["truth"][kind]
        for approach in approaches:
            under = match = over = best = 0
            for name, truth_value in truth.items():
                value = scores[approach][kind][name]
                higher_better = tasks[name] == "classification"
                delta = (value - truth_value) if higher_better else (
                    truth_value - value
                )
                tolerance = 0.5 if higher_better else 0.02 * abs(truth_value)
                if abs(value - truth_value) <= tolerance:
                    match += 1
                elif delta > 0:
                    over += 1
                else:
                    under += 1
                rivals = []
                for other in approaches:
                    other_value = scores[other][kind][name]
                    rivals.append(
                        (other_value - truth_value)
                        if higher_better
                        else (truth_value - other_value)
                    )
                if delta >= max(rivals) - 1e-12:
                    best += 1
            lines.append(
                f"{approach:<10} underperform={under:<3} match={match:<3} "
                f"outperform={over:<3} best_tool={best}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--chunk", type=int, default=0)
    parser.add_argument("--of", type=int, default=1)
    parser.add_argument("--scale", type=int, default=2400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None)
    parser.add_argument("--merge", nargs="*", default=None)
    args = parser.parse_args(argv)

    if args.merge:
        print(merge_results(args.merge))
        return 0
    payload = run_chunk(args.chunk, args.of, args.scale, args.seed)
    out = args.out or f"downstream_chunk_{args.chunk}_of_{args.of}.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
    print(f"wrote {out} ({len(payload['datasets'])} datasets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
