#!/usr/bin/env python
"""Profile the end-to-end inference pipeline with repro.obs spans.

Generates a synthetic labeled corpus, trains the default Random Forest, runs
``predict_table`` over every generated file, and prints the top-N span names
by total wall time plus the counter/histogram snapshot — a quick answer to
"where does prediction actually spend its time?".

``--compare OLD.json NEW.json`` instead diffs two previously written span
dumps (or ``repro-bench --manifest`` files) and prints per-span and
per-experiment speedups, so a before/after pair — e.g. the manifests kept
in ``BENCH_*.json`` — can be read in one command.

Usage:
    PYTHONPATH=src python scripts/profile_pipeline.py [--scale 600] [--top 15]
    PYTHONPATH=src python scripts/profile_pipeline.py --compare OLD.json NEW.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchmark.context import BenchmarkContext
from repro.core.pipeline import TypeInferencePipeline
from repro.obs import telemetry
from repro.obs.export import spans_summary, write_json


def _load_spans(path: str) -> tuple[dict, list[dict]]:
    """Span summary + experiment list from a span dump or run manifest."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "spans" in payload or "experiments" in payload:  # a run manifest
        return payload.get("spans", {}), payload.get("experiments", [])
    return payload, []


def _print_speedups(title: str, rows: list[tuple[str, float, float]]) -> None:
    if not rows:
        return
    print(f"\n{title}")
    print(f"{'name':<32} {'old (s)':>10} {'new (s)':>10} {'speedup':>9}")
    for name, old_s, new_s in rows:
        if new_s > 0:
            speedup = f"{old_s / new_s:>8.2f}x"
        else:
            speedup = "      inf"
        print(f"{name:<32} {old_s:>10.3f} {new_s:>10.3f} {speedup}")


def compare(old_path: str, new_path: str) -> int:
    """Print per-span and per-experiment speedups between two dumps."""
    old_spans, old_experiments = _load_spans(old_path)
    new_spans, new_experiments = _load_spans(new_path)

    span_rows = [
        (name, old_spans[name]["wall_s"], new_spans[name]["wall_s"])
        for name in old_spans
        if name in new_spans
    ]
    span_rows.sort(key=lambda row: -row[1])
    _print_speedups("spans (shared names, by old wall time)", span_rows)
    only_old = sorted(set(old_spans) - set(new_spans))
    only_new = sorted(set(new_spans) - set(old_spans))
    if only_old:
        print(f"only in {old_path}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {new_path}: {', '.join(only_new)}")

    old_wall = {e["name"]: e["wall_s"] for e in old_experiments}
    new_wall = {e["name"]: e["wall_s"] for e in new_experiments}
    experiment_rows = [
        (name, old_wall[name], new_wall[name])
        for name in old_wall
        if name in new_wall
    ]
    _print_speedups("experiments", experiment_rows)
    if experiment_rows:
        total_old = sum(row[1] for row in experiment_rows)
        total_new = sum(row[2] for row in experiment_rows)
        if total_new > 0:
            print(f"{'TOTAL':<32} {total_old:>10.3f} {total_new:>10.3f} "
                  f"{total_old / total_new:>8.2f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=600,
                        help="labeled-corpus size to generate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trees", type=int, default=25)
    parser.add_argument("--top", type=int, default=15,
                        help="number of span names to print")
    parser.add_argument("--spans-out", default=None, metavar="PATH",
                        help="also dump the aggregated spans as JSON")
    parser.add_argument("--compare", nargs=2, metavar=("OLD.json", "NEW.json"),
                        default=None,
                        help="diff two span dumps / run manifests and print "
                             "per-span speedups instead of profiling")
    args = parser.parse_args(argv)

    if args.compare:
        return compare(*args.compare)

    context = BenchmarkContext(
        n_examples=args.scale, seed=args.seed, rf_estimators=args.trees
    )
    print(f"fitting RF on a {args.scale}-column corpus ...", flush=True)
    pipeline = TypeInferencePipeline(context.our_rf)

    telemetry.enable()
    telemetry.reset()
    n_columns = 0
    for table in context.corpus.files:
        n_columns += len(pipeline.predict_table(table))
    print(f"predicted {n_columns} columns over "
          f"{len(context.corpus.files)} files\n")

    summary = spans_summary(telemetry.spans)
    print(f"{'span':<32} {'count':>7} {'total wall (s)':>15} "
          f"{'mean (ms)':>10} {'max (ms)':>9}")
    for name, entry in list(summary.items())[: args.top]:
        print(
            f"{name:<32} {entry['count']:>7} {entry['wall_s']:>15.3f} "
            f"{1e3 * entry['mean_wall_s']:>10.3f} "
            f"{1e3 * entry['max_wall_s']:>9.3f}"
        )
    if telemetry.tracer.dropped:
        print(f"(note: {telemetry.tracer.dropped} spans dropped at the "
              f"{telemetry.tracer.max_records}-record cap)")

    snapshot = telemetry.metrics.snapshot()
    print("\ncounters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name} = {value:g}")
    for name, hist in snapshot["histograms"].items():
        print(f"histogram {name}: count={hist['count']} "
              f"mean={hist['mean']:.4g} p50={hist['p50']:.4g} "
              f"p90={hist['p90']:.4g} p99={hist['p99']:.4g}")

    if args.spans_out:
        write_json(args.spans_out, summary)
        print(f"\nwrote {args.spans_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
