#!/usr/bin/env python
"""Profile the end-to-end inference pipeline with repro.obs spans.

Generates a synthetic labeled corpus, trains the default Random Forest, runs
``predict_table`` over every generated file, and prints the top-N span names
by total wall time plus the counter/histogram snapshot — a quick answer to
"where does prediction actually spend its time?".

Usage:
    PYTHONPATH=src python scripts/profile_pipeline.py [--scale 600] [--top 15]
"""

from __future__ import annotations

import argparse
import sys

from repro.benchmark.context import BenchmarkContext
from repro.core.pipeline import TypeInferencePipeline
from repro.obs import telemetry
from repro.obs.export import spans_summary, write_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=600,
                        help="labeled-corpus size to generate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trees", type=int, default=25)
    parser.add_argument("--top", type=int, default=15,
                        help="number of span names to print")
    parser.add_argument("--spans-out", default=None, metavar="PATH",
                        help="also dump the aggregated spans as JSON")
    args = parser.parse_args(argv)

    context = BenchmarkContext(
        n_examples=args.scale, seed=args.seed, rf_estimators=args.trees
    )
    print(f"fitting RF on a {args.scale}-column corpus ...", flush=True)
    pipeline = TypeInferencePipeline(context.our_rf)

    telemetry.enable()
    telemetry.reset()
    n_columns = 0
    for table in context.corpus.files:
        n_columns += len(pipeline.predict_table(table))
    print(f"predicted {n_columns} columns over "
          f"{len(context.corpus.files)} files\n")

    summary = spans_summary(telemetry.spans)
    print(f"{'span':<32} {'count':>7} {'total wall (s)':>15} "
          f"{'mean (ms)':>10} {'max (ms)':>9}")
    for name, entry in list(summary.items())[: args.top]:
        print(
            f"{name:<32} {entry['count']:>7} {entry['wall_s']:>15.3f} "
            f"{1e3 * entry['mean_wall_s']:>10.3f} "
            f"{1e3 * entry['max_wall_s']:>9.3f}"
        )
    if telemetry.tracer.dropped:
        print(f"(note: {telemetry.tracer.dropped} spans dropped at the "
              f"{telemetry.tracer.max_records}-record cap)")

    snapshot = telemetry.metrics.snapshot()
    print("\ncounters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name} = {value:g}")
    for name, hist in snapshot["histograms"].items():
        print(f"histogram {name}: count={hist['count']} "
              f"mean={hist['mean']:.4g} p50={hist['p50']:.4g} "
              f"p90={hist['p90']:.4g} p99={hist['p99']:.4g}")

    if args.spans_out:
        write_json(args.spans_out, summary)
        print(f"\nwrote {args.spans_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
