#!/usr/bin/env python
"""Stream smoke: bounded-memory streaming inference over a CSV that cannot
fit the memory ceiling.

The script generates a CSV (row by row, so its own memory stays flat),
then runs ``repro-infer --stream`` on it inside a child process that
asserts its *own* peak RSS (``resource.getrusage(RUSAGE_SELF).ru_maxrss``)
stayed under ``--ceiling-mb``.  A buffered (in-memory) reference run over
the same file checks that the streamed predictions are byte-identical and
that streaming costs at most ``--max-slowdown``× the buffered wall time.

Every generated column keeps its distinct-value count under the sketch's
distinct cap, so the streamed statistics are exactly the batch kernel's
(up to the documented ulp-level mean/std delta) and the prediction
comparison is strict.

CI runs this at ~1M rows (``--rows 1000000 --ceiling-mb 512``); the
committed ``BENCH_pr8.json`` comes from a larger local run whose file is
>= 10x the 320 MB ceiling::

    python scripts/stream_smoke.py --rows 15000000 --ceiling-mb 320 \
        --out BENCH_pr8.json

Exit code 0 means generation, the RSS ceiling, output parity, and the
throughput budget all held.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Child wrapper: run repro-infer, then report (and assert) peak RSS.
#: ru_maxrss is KB on Linux.  The record rides on stderr's last line so
#: stdout stays exactly the CLI's prediction output.
CHILD = """
import json, resource, sys
ceiling_kb = int(sys.argv[1])
from repro.cli import main
rc = main(sys.argv[2:])
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"rc": rc, "peak_rss_kb": peak_kb}), file=sys.stderr)
if rc == 0 and ceiling_kb > 0 and peak_kb > ceiling_kb:
    print(
        f"RSS ceiling exceeded: {peak_kb} KB > {ceiling_kb} KB",
        file=sys.stderr,
    )
    rc = 3
sys.exit(rc)
"""

# Distinct-value pools sized well under the sketch's 65,536 cap, so the
# streamed stats match the batch kernel exactly (no spill).
CITIES = [f"city_{i:04d}" for i in range(2000)]
TAGS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
PAD = "x" * 180


def generate_csv(path: Path, n_rows: int) -> int:
    """Write the smoke CSV row by row; returns its size in bytes."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["id", "amount", "city", "tag", "flag", "comment"]
        )
        for i in range(n_rows):
            writer.writerow([
                i % 50_000,
                f"{(i % 10_000) * 1.25 + 0.5:.2f}",
                CITIES[i % len(CITIES)],
                TAGS[i % len(TAGS)],
                "true" if i % 3 else "false",
                f"row {i % 40_000} {PAD}",
            ])
    return path.stat().st_size


def run_infer(
    args: list[str], ceiling_kb: int, label: str
) -> tuple[subprocess.CompletedProcess, float, int]:
    """Run the CLI in a child; (proc, wall seconds, peak RSS KB)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-c", CHILD, str(ceiling_kb), *args]
    print(f"+ [{label}] repro-infer {' '.join(args)}", flush=True)
    started = time.monotonic()
    proc = subprocess.run(
        command, env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=7200,
    )
    wall_s = time.monotonic() - started
    peak_kb = -1
    for line in proc.stderr.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "peak_rss_kb" in record:
            peak_kb = int(record["peak_rss_kb"])
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"FAIL: [{label}] exited {proc.returncode} "
            f"(peak RSS {peak_kb} KB)"
        )
    print(f"  [{label}] {wall_s:.1f}s, peak RSS {peak_kb / 1024:.0f} MB",
          flush=True)
    return proc, wall_s, peak_kb


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=1_000_000,
        help="CSV rows to generate (default 1M: the CI size)",
    )
    parser.add_argument(
        "--ceiling-mb", type=int, default=512,
        help="peak-RSS ceiling enforced on the streamed run (default 512)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=1.5,
        help="streamed wall time must stay within this factor of the "
             "buffered run (default 1.5)",
    )
    parser.add_argument(
        "--skip-buffered", action="store_true",
        help="skip the in-memory reference run (no parity/throughput "
             "checks; for files the host cannot buffer)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write a BENCH-style JSON report here",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="working directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="stream-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    csv_path = workdir / "stream_smoke.csv"
    model_path = workdir / "tiny.model"

    print(f"=== generating {args.rows:,} rows -> {csv_path} ===", flush=True)
    started = time.monotonic()
    n_bytes = generate_csv(csv_path, args.rows)
    generate_s = time.monotonic() - started
    print(f"  {n_bytes / 1e6:.0f} MB in {generate_s:.1f}s", flush=True)
    ceiling_kb = args.ceiling_mb * 1024

    # Train the tiny model once on a small corpus; both timed runs then
    # just load the artifact, so they differ only in the ingestion path.
    print("=== training the throwaway model ===", flush=True)
    train_csv = workdir / "train.csv"
    train_csv.write_text("a,b\n1,x\n2,y\n")
    run_infer(
        [str(train_csv), "--save", str(model_path), "--model",
         str(model_path), "--trees", "5", "--train-examples", "80"],
        ceiling_kb=0, label="train",
    )

    base = [str(csv_path), "--model", str(model_path), "--json"]
    print(f"=== streamed run (ceiling {args.ceiling_mb} MB) ===", flush=True)
    streamed, stream_s, stream_peak_kb = run_infer(
        [*base, "--stream"], ceiling_kb=ceiling_kb, label="streamed"
    )

    report = {
        "stream_smoke": {
            "config": {
                "rows": args.rows,
                "file_bytes": n_bytes,
                "ceiling_mb": args.ceiling_mb,
                "max_slowdown": args.max_slowdown,
            },
            "generate_s": round(generate_s, 3),
            "streamed": {
                "wall_s": round(stream_s, 3),
                "peak_rss_kb": stream_peak_kb,
                "rows_per_s": round(args.rows / stream_s, 1),
                "mb_per_s": round(n_bytes / 1e6 / stream_s, 2),
            },
            "file_over_ceiling": round(
                n_bytes / (args.ceiling_mb * 1024 * 1024), 2
            ),
        }
    }

    if not args.skip_buffered:
        print("=== buffered (in-memory) reference run ===", flush=True)
        buffered, buffer_s, buffer_peak_kb = run_infer(
            base, ceiling_kb=0, label="buffered"
        )
        if streamed.stdout != buffered.stdout:
            raise SystemExit(
                "FAIL: streamed predictions differ from the buffered path"
            )
        ratio = stream_s / buffer_s
        report["stream_smoke"]["buffered"] = {
            "wall_s": round(buffer_s, 3),
            "peak_rss_kb": buffer_peak_kb,
        }
        report["stream_smoke"]["throughput_ratio"] = round(ratio, 3)
        print(
            f"  parity OK; streamed/buffered wall ratio {ratio:.2f} "
            f"(budget {args.max_slowdown})",
            flush=True,
        )
        if ratio > args.max_slowdown:
            raise SystemExit(
                f"FAIL: streaming is {ratio:.2f}x the buffered path "
                f"(budget {args.max_slowdown}x)"
            )

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report -> {args.out}", flush=True)
    if args.workdir is None:
        csv_path.unlink(missing_ok=True)
        train_csv.unlink(missing_ok=True)
        model_path.unlink(missing_ok=True)
    print(
        f"stream smoke OK: {n_bytes / 1e6:.0f} MB profiled under a "
        f"{args.ceiling_mb} MB ceiling "
        f"({report['stream_smoke']['file_over_ceiling']}x the ceiling)",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
