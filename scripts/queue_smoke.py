#!/usr/bin/env python
"""Queue smoke: three crash-prone workers must merge byte-identical to serial.

Stages (tiny scale, one sharded + one monolithic experiment):

1. **Reference** — a fault-free serial ``repro-bench`` run with
   ``--run-dir`` checkpointing.  Its per-experiment outputs are the ground
   truth, and the run leaves the artifact cache warm so the fleet below
   measures coordination, not cache luck.
2. **Fleet** — three concurrent ``repro-bench work`` processes pull-claim
   tasks from a fresh shared ``--run-dir``.  Every worker carries the
   *same* fault plan: SIGKILL on one specific shard at attempt 0.  Exactly
   one worker dies (whichever claims that shard first); the stealer reruns
   it as attempt 1, which no rule matches, so the fleet recovers on its
   own — no supervisor, no restart logic.
3. **Merge** — ``repro-bench merge`` waits for the queue to drain, folds
   shard records through the registered merges, and must exit 0.
4. **Verify** — merged outputs are byte-identical to the reference,
   exactly one worker was SIGKILLed, and the merge manifest records at
   least one steal-on-stale.

Run locally::

    python scripts/queue_smoke.py

Exit code 0 means the distributed story held together end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FAULT_PLAN", None)  # stages pass --fault-plan explicitly
    return env


def run_bench(args: list[str], expect_rc: int | None = 0) -> subprocess.CompletedProcess:
    command = [sys.executable, "-m", "repro.benchmark.runner", *args]
    print(f"+ {' '.join(command)}", flush=True)
    proc = subprocess.run(
        command, env=bench_env(), cwd=REPO_ROOT, capture_output=True,
        text=True, timeout=1800,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if expect_rc is not None and proc.returncode != expect_rc:
        raise SystemExit(
            f"FAIL: expected exit code {expect_rc}, got {proc.returncode}"
        )
    return proc


def checkpoint_outputs(run_dir: Path) -> dict[str, str]:
    out = {}
    for path in sorted((run_dir / "experiments").glob("*.json")):
        record = json.loads(path.read_text())
        out[record["name"]] = record["output"]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--experiments", default="table15,labeling",
        help="comma-separated; the first must be sharded (its shard named "
             "by --kill-shard is the SIGKILL target)",
    )
    parser.add_argument(
        "--kill-shard", default="Supreme",
        help="shard id of the first experiment whose attempt-0 worker dies",
    )
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--stale-after", type=float, default=4.0,
        help="lease staleness window for the fleet (short: fast steals)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="working directory (default: a fresh temp dir, removed on success)",
    )
    args = parser.parse_args(argv)

    experiments = args.experiments.split(",")
    kill_experiment = experiments[0]
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="queue-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    run_ref, run_queue = workdir / "run-ref", workdir / "run-queue"
    cache = workdir / "cache"

    # Every worker gets this plan.  The attempt-0 match is the fence that
    # makes the chaos deterministic: exactly one process ever runs
    # (kill_experiment, kill_shard) at attempt 0, and the steal reruns it
    # at attempt 1, which matches nothing.
    plan_path = workdir / "plan.json"
    plan_path.write_text(json.dumps({
        "seed": 0,
        "rules": [
            {"point": "worker.run", "mode": "kill",
             "match": {"experiment": kill_experiment,
                       "shard": args.kill_shard,
                       "attempt": 0}},
        ],
    }, indent=2))

    scale_seed = ["--scale", str(args.scale), "--seed", str(args.seed)]

    print("=== stage 1: fault-free serial reference run ===", flush=True)
    run_bench([args.experiments, *scale_seed,
               "--run-dir", str(run_ref), "--cache-dir", str(cache)])
    reference = checkpoint_outputs(run_ref)
    if sorted(reference) != sorted(experiments):
        raise SystemExit(f"FAIL: reference checkpointed {sorted(reference)}")

    print(f"=== stage 2: {args.workers} pull-claim workers, one SIGKILLed "
          f"on {kill_experiment}/{args.kill_shard} ===", flush=True)
    queue_flags = [
        "--run-dir", str(run_queue), "--cache-dir", str(cache),
        "--experiments", args.experiments, *scale_seed,
        "--stale-after", str(args.stale_after), "--heartbeat", "0.5",
        "--poll", "0.2",
    ]
    procs = []
    for index in range(args.workers):
        command = [
            sys.executable, "-m", "repro.benchmark.runner", "work",
            *queue_flags, "--owner", f"smoke-worker-{index}",
            "--fault-plan", str(plan_path),
        ]
        print(f"+ {' '.join(command)} &", flush=True)
        procs.append(subprocess.Popen(
            command, env=bench_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        ))
        time.sleep(0.2)  # stagger startup so the spec publish settles first
    exit_codes = []
    for index, proc in enumerate(procs):
        out, _ = proc.communicate(timeout=1800)
        sys.stdout.write(out)
        exit_codes.append(proc.returncode)
        print(f"worker {index} exited {proc.returncode}", flush=True)
    killed = [rc for rc in exit_codes if rc == -9]
    survived = [rc for rc in exit_codes if rc == 0]
    if len(killed) != 1:
        raise SystemExit(f"FAIL: expected exactly one SIGKILLed worker, "
                         f"exit codes {exit_codes}")
    if len(survived) != args.workers - 1:
        raise SystemExit(f"FAIL: surviving workers should exit 0, "
                         f"exit codes {exit_codes}")

    print("=== stage 3: merge ===", flush=True)
    manifest_path = workdir / "merge-manifest.json"
    merge = run_bench([
        "merge", *queue_flags, "--timeout", "600",
        "--manifest", str(manifest_path),
    ])

    print("=== stage 4: verify ===", flush=True)
    merged = checkpoint_outputs(run_queue)
    for name in experiments:
        if merged.get(name) != reference[name]:
            raise SystemExit(
                f"FAIL: merged {name!r} output differs from the serial "
                f"reference"
            )
        if f"######## {name} (" not in merge.stdout:
            raise SystemExit(f"FAIL: merge stdout missing {name!r}")
    report = json.loads(manifest_path.read_text())["queue"]
    if report["steals"] < 1:
        raise SystemExit(f"FAIL: no steal-on-stale recorded: {report}")
    if report["failed"]:
        raise SystemExit(f"FAIL: queue report counts failures: {report}")

    print(f"queue smoke OK: {len(experiments)} experiments byte-identical "
          f"to serial across {args.workers} workers "
          f"({report['steals']} steal(s), {report['completed']} tasks)")
    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
