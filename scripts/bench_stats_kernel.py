#!/usr/bin/env python
"""Microbenchmark: per-cell reference stats vs the vectorized batch kernel.

Times (a) the pre-vectorization per-cell algorithm (the same reference
implementation the parity tests use as oracle) looped over every column,
and (b) ``compute_stats_batch`` over the same columns with a shared
``StatsScanCache`` — the exact code path ``generate_corpus`` uses — on
two workloads:

* ``labeled-corpus``: the default benchmark corpus (``generate_corpus``).
  Roughly half its cells are distinct (unique-valued numeric columns),
  which caps the win from distinct-value dedup.
* ``downstream-suite``: the 30 downstream datasets (``make_suite``) —
  categorical-heavy, ~0.3 distinct/cell, where dedup dominates.

Verifies the outputs agree before reporting, and writes a JSON record
suitable for inclusion in BENCH_*.json.

Usage:
    PYTHONPATH=src python scripts/bench_stats_kernel.py [--scale 2400] [--out X.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.stats import (
    DescriptiveStats,
    StatsScanCache,
    _delimiter_count,
    _finite,
    _moments,
    _stopword_count,
    _whitespace_count,
    _word_count,
    compute_stats_batch,
)
from repro.datagen.corpus import generate_corpus
from repro.datagen.downstream import make_suite
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_email,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)


def reference_compute_stats(column) -> DescriptiveStats:
    """The pre-vectorization per-cell algorithm (see seed stats.py)."""
    present = column.non_missing()
    total = len(column)
    n_nans = column.n_missing()
    distinct = column.distinct()
    samples = distinct[:5]

    numeric = [try_parse_float(cell) for cell in present]
    numeric = [v for v in numeric if v is not None]
    if numeric:
        arr = np.asarray(numeric, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            mean_value = _finite(arr.mean())
            std_value = _finite(arr.std())
        min_value = _finite(arr.min())
        max_value = _finite(arr.max())
    else:
        mean_value = std_value = min_value = max_value = 0.0

    mean_word, std_word = _moments([_word_count(c) for c in present])
    mean_stop, std_stop = _moments([_stopword_count(c) for c in present])
    mean_char, std_char = _moments([len(c) for c in present])
    mean_ws, std_ws = _moments([_whitespace_count(c) for c in present])
    mean_delim, std_delim = _moments([_delimiter_count(c) for c in present])

    vector = np.array(
        [
            float(total),
            float(n_nans),
            n_nans / total if total else 0.0,
            float(len(distinct)),
            len(distinct) / total if total else 0.0,
            mean_value,
            std_value,
            min_value,
            max_value,
            mean_word,
            std_word,
            mean_stop,
            std_stop,
            mean_char,
            std_char,
            mean_ws,
            std_ws,
            mean_delim,
            std_delim,
            len(numeric) / len(present) if present else 0.0,
            float(any(looks_like_url(s) for s in samples)),
            float(any(looks_like_email(s) for s in samples)),
            float(any(_delimiter_count(s) >= 2 for s in samples)),
            float(any(looks_like_list(s) for s in samples)),
            float(any(looks_like_datetime(s) for s in samples)),
        ]
    )
    return DescriptiveStats(vector)


def bench_tables(name: str, tables: list[list], repeat: int) -> dict:
    """Time reference vs batch kernel over per-table column lists."""
    columns = [column for table in tables for column in table]
    n_cells = sum(len(column) for column in columns)
    n_distinct = sum(len(set(column.cells)) for column in columns)
    print(f"{name}: {len(columns)} columns, {n_cells} cells, "
          f"{n_distinct} distinct, {len(tables)} tables", flush=True)

    old_best = new_best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        old = [reference_compute_stats(column) for column in columns]
        old_best = min(old_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        scan_cache = StatsScanCache()
        new = []
        for table in tables:  # table-at-a-time, as generate_corpus runs it
            new.extend(compute_stats_batch(table, scan_cache=scan_cache))
        new_best = min(new_best, time.perf_counter() - t0)

    max_diff = max(
        float(np.max(np.abs(a.values - b.values))) for a, b in zip(old, new)
    )
    record = {
        "workload": name,
        "n_columns": len(columns),
        "n_cells": n_cells,
        "n_distinct_values": n_distinct,
        "old_per_cell_s": round(old_best, 4),
        "new_batch_s": round(new_best, 4),
        "speedup": round(old_best / new_best, 2),
        "max_abs_diff": max_diff,
    }
    print(f"  per-cell reference: {old_best:.3f}s   "
          f"batch kernel: {new_best:.3f}s   "
          f"speedup: {record['speedup']:.2f}x   "
          f"max|diff|: {max_diff:.2e}")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=2400,
                        help="corpus size in columns (benchmark default 2400)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best is reported)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the result record as JSON")
    args = parser.parse_args(argv)

    corpus = generate_corpus(n_examples=args.scale, seed=args.seed)
    corpus_record = bench_tables(
        "labeled-corpus",
        [list(table) for table in corpus.files],
        args.repeat,
    )

    suite = make_suite(seed=args.seed)
    suite_record = bench_tables(
        "downstream-suite",
        [list(dataset.table) for dataset in suite],
        args.repeat,
    )

    workloads = [corpus_record, suite_record]
    failed = [w for w in workloads if w["max_abs_diff"] > 1e-9]
    if failed:
        for w in failed:
            print(f"PARITY FAILURE ({w['workload']}): "
                  f"max abs diff {w['max_abs_diff']:.3e}")
        return 1

    record = {
        "benchmark": "compute_stats",
        "scale": args.scale,
        "seed": args.seed,
        "workloads": workloads,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
