#!/usr/bin/env python
"""Benchmark the pull-claim work queue against serial and `--jobs N` runs.

Measures, over a pre-warmed artifact cache (so every configuration pays
the same compute, not cache luck):

* serial `repro-bench` wall clock (the baseline the queue must match
  byte-for-byte),
* the in-process fork engine at `--jobs 2`,
* 2- and 4-worker `repro-bench work` fleets plus their `repro-bench
  merge`, and
* the lease protocol's per-task overhead (claim + release microbench on
  the real O_EXCL path).

The results file is honest about the host: on a single-CPU container
every multi-process configuration adds coordination cost without
parallel speedup — the numbers demonstrate *overhead bounds* there, and
only show scaling on multi-core hosts (`cpus` is recorded alongside).

Run::

    python scripts/bench_queue.py --out BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def bench_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_bench(args: list[str]) -> float:
    command = [sys.executable, "-m", "repro.benchmark.runner", *args]
    print(f"+ {' '.join(command)}", flush=True)
    start = time.monotonic()
    subprocess.run(
        command, env=bench_env(), cwd=REPO_ROOT, check=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    return time.monotonic() - start


def outputs(run_dir: Path) -> dict[str, str]:
    out = {}
    for path in sorted((run_dir / "experiments").glob("*.json")):
        record = json.loads(path.read_text())
        out[record["name"]] = record["output"]
    return out


def fleet_run(
    workdir: Path, tag: str, n_workers: int, experiments: str,
    scale: int, seed: int, cache: Path,
) -> dict:
    run_dir = workdir / f"run-{tag}"
    queue_flags = [
        "--run-dir", str(run_dir), "--cache-dir", str(cache),
        "--experiments", experiments,
        "--scale", str(scale), "--seed", str(seed),
    ]
    start = time.monotonic()
    procs = []
    for index in range(n_workers):
        command = [
            sys.executable, "-m", "repro.benchmark.runner", "work",
            *queue_flags, "--owner", f"bench-{tag}-{index}",
        ]
        print(f"+ {' '.join(command)} &", flush=True)
        procs.append(subprocess.Popen(
            command, env=bench_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        ))
        time.sleep(0.2)
    for proc in procs:
        if proc.wait(timeout=3600) != 0:
            raise SystemExit(f"FAIL: a {tag} worker exited {proc.returncode}")
    workers_wall = time.monotonic() - start

    manifest_path = workdir / f"manifest-{tag}.json"
    merge_start = time.monotonic()
    subprocess.run(
        [sys.executable, "-m", "repro.benchmark.runner", "merge",
         *queue_flags, "--timeout", "600", "--manifest", str(manifest_path)],
        env=bench_env(), cwd=REPO_ROOT, check=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    merge_wall = time.monotonic() - merge_start
    report = json.loads(manifest_path.read_text())["queue"]
    return {
        "workers": n_workers,
        "wall_s": round(workers_wall + merge_wall, 3),
        "workers_wall_s": round(workers_wall, 3),
        "merge_wall_s": round(merge_wall, 3),
        "tasks_completed": report["completed"],
        "claims": report["claims"],
        "steals": report["steals"],
        "outputs": outputs(run_dir),
    }


def lease_microbench(n: int = 500) -> dict:
    """Per-task cost of the real lease protocol (O_EXCL create + unlink)."""
    from repro.benchmark.queue import QueueTask, WorkQueue

    tmp = Path(tempfile.mkdtemp(prefix="bench-lease-"))
    try:
        queue = WorkQueue(tmp, owner="bench")
        tasks = [QueueTask(f"task-{i}", f"task-{i}", None) for i in range(n)]
        start = time.perf_counter()
        for task in tasks:
            lease = queue.try_claim(task)
            queue.release(lease, completed=False)
        claim_release = time.perf_counter() - start

        lease = queue.try_claim(tasks[0])
        start = time.perf_counter()
        for _ in range(n):
            lease.touch()
        heartbeat = time.perf_counter() - start
        queue.release(lease, completed=False)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "iterations": n,
        "claim_release_us": round(claim_release / n * 1e6, 1),
        "heartbeat_touch_us": round(heartbeat / n * 1e6, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--experiments", default="table15,downstream")
    parser.add_argument("--out", default="BENCH_pr9.json")
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="bench-queue-"))
    cache = workdir / "cache"

    print("=== warm the shared artifact cache ===", flush=True)
    warm_wall = run_bench([
        args.experiments, "--scale", str(args.scale), "--seed",
        str(args.seed), "--cache-dir", str(cache),
    ])

    print("=== serial baseline (warm cache) ===", flush=True)
    serial_wall = run_bench([
        args.experiments, "--scale", str(args.scale), "--seed",
        str(args.seed), "--cache-dir", str(cache),
        "--run-dir", str(workdir / "run-serial"),
    ])
    reference = outputs(workdir / "run-serial")

    print("=== fork engine, --jobs 2 (warm cache) ===", flush=True)
    jobs2_wall = run_bench([
        args.experiments, "--scale", str(args.scale), "--seed",
        str(args.seed), "--cache-dir", str(cache),
        "--run-dir", str(workdir / "run-jobs2"), "--jobs", "2",
    ])

    fleets = []
    for n_workers in (2, 4):
        print(f"=== queue fleet, {n_workers} workers (warm cache) ===",
              flush=True)
        fleet = fleet_run(
            workdir, f"w{n_workers}", n_workers, args.experiments,
            args.scale, args.seed, cache,
        )
        if fleet.pop("outputs") != reference:
            raise SystemExit(
                f"FAIL: {n_workers}-worker merge diverged from serial"
            )
        fleet["vs_serial"] = round(fleet["wall_s"] / serial_wall, 3)
        fleets.append(fleet)

    print("=== lease protocol microbenchmark ===", flush=True)
    lease = lease_microbench()

    results = {
        "benchmark": "pull-claim work queue vs serial and --jobs N",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "knobs": {
            "experiments": args.experiments,
            "scale": args.scale,
            "seed": args.seed,
            "warm_cache": True,
        },
        "note": (
            "all fleet outputs verified byte-identical to serial; on a "
            "single-CPU host the multi-process rows measure coordination "
            "overhead, not speedup"
        ),
        "warm_up_wall_s": round(warm_wall, 3),
        "serial_wall_s": round(serial_wall, 3),
        "jobs2_wall_s": round(jobs2_wall, 3),
        "queue_fleets": fleets,
        "lease_overhead": lease,
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
