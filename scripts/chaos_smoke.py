#!/usr/bin/env python
"""Chaos smoke: a faulted benchmark run must recover to the fault-free result.

Stages (all at tiny scale, two experiments):

1. **Reference** — a fault-free ``repro-bench`` run with ``--run-dir``
   checkpointing; its per-experiment outputs are the ground truth.
2. **Chaos** — the same run under a fault plan that SIGKILLs the first
   experiment's worker on *every* attempt (exhausting restarts) and
   corrupts the first artifact-cache entry written (the corpus).  The run
   must exit nonzero with a per-experiment failure report — not hang — and
   checkpoint the surviving experiment.
3. **Resume** — the same command, fault-free, with ``--resume``: the
   corrupted cache entry is quarantined and rebuilt, only the failed
   experiment reruns, and the run exits 0.
4. **Verify** — every experiment's checkpointed output is byte-identical
   to the reference, and the poisoned cache quarantined at least one
   entry.
5. **Streamed ingestion** — ``repro-infer --stream`` over a CSV whose
   quoted fields span chunk boundaries: a ``csv.read_chunk`` fault plan
   must surface as a clean exit-2 ``CSVReadError`` (never a traceback),
   and the fault-free streamed rerun must print byte-identical output to
   the buffered path.
6. **Distributed queue** — two concurrent ``repro-bench work`` processes
   pull-claim the same experiments from a fresh shared run dir; a fault
   plan SIGKILLs whichever worker runs the first experiment at attempt 0.
   The survivor must steal the stale lease, and ``repro-bench merge``
   must exit 0 with outputs byte-identical to the stage-1 reference.
   (The CI ``queue-smoke`` job runs the bigger three-worker, sharded
   version: ``scripts/queue_smoke.py``.)

Run locally::

    python scripts/chaos_smoke.py

Exit code 0 means the whole robustness story held together end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FAULT_PLAN", None)  # each stage passes --fault-plan explicitly
    return env


def run_module(
    module: str, args: list[str], expect_rc: int | None = 0
) -> subprocess.CompletedProcess:
    env = bench_env()
    command = [sys.executable, "-m", module, *args]
    print(f"+ {' '.join(command)}", flush=True)
    proc = subprocess.run(
        command, env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=1800,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if expect_rc is not None and proc.returncode != expect_rc:
        raise SystemExit(
            f"FAIL: expected exit code {expect_rc}, got {proc.returncode}"
        )
    return proc


def run_bench(args: list[str], expect_rc: int | None = 0) -> subprocess.CompletedProcess:
    return run_module("repro.benchmark.runner", args, expect_rc=expect_rc)


def stream_stage(workdir: Path) -> None:
    """Stage 5: streamed ingestion under ``csv.read_chunk`` chaos."""
    csv_path = workdir / "stream.csv"
    csv_path.write_bytes(
        b"id,comment,amount\n"
        + b"".join(
            b'%d,"line one\nline ""two"" of row %d",%d.5\n' % (i, i, i)
            for i in range(50)
        )
    )
    model_path = workdir / "tiny.model"
    base = [str(csv_path), "--model", str(model_path), "--json",
            "--trees", "5", "--train-examples", "80"]
    # Train once (buffered) and keep the artifact + reference output.
    reference = run_module("repro.cli", [*base, "--save", str(model_path)])

    plan_path = workdir / "stream-plan.json"
    plan_path.write_text(json.dumps({
        "seed": 0,
        "rules": [
            {"point": "csv.read_chunk", "mode": "error", "on_call": 1},
        ],
    }, indent=2))
    faulted = run_module(
        "repro.cli",
        [*base, "--stream", "--chunk-rows", "7",
         "--fault-plan", str(plan_path)],
        expect_rc=2,
    )
    if "Traceback" in faulted.stderr:
        raise SystemExit("FAIL: csv.read_chunk fault leaked a traceback")
    if "repro-infer:" not in faulted.stderr:
        raise SystemExit("FAIL: csv.read_chunk fault printed no typed error")

    streamed = run_module(
        "repro.cli", [*base, "--stream", "--chunk-rows", "7"]
    )
    if streamed.stdout != reference.stdout:
        raise SystemExit(
            "FAIL: streamed predictions differ from the buffered path"
        )


def queue_stage(
    workdir: Path, experiments: list[str], reference: dict[str, str],
    cache_dir: Path, scale: int, seed: int,
) -> None:
    """Stage 6: two pull-claim workers, one SIGKILLed, merge == reference.

    The attempt-0 match makes the chaos deterministic with a shared plan:
    exactly one process runs the target at attempt 0 (O_EXCL claim), and
    the steal reruns it at attempt 1, which no rule matches.
    """
    import time

    run_queue = workdir / "run-queue"
    kill_target = experiments[0]
    plan_path = workdir / "queue-plan.json"
    plan_path.write_text(json.dumps({
        "seed": 0,
        "rules": [
            {"point": "worker.run", "mode": "kill",
             "match": {"experiment": kill_target, "attempt": 0}},
        ],
    }, indent=2))
    queue_flags = [
        "--run-dir", str(run_queue), "--cache-dir", str(cache_dir),
        "--experiments", ",".join(experiments),
        "--scale", str(scale), "--seed", str(seed),
        "--stale-after", "4", "--heartbeat", "0.5", "--poll", "0.2",
    ]

    procs = []
    for index in range(2):
        command = [
            sys.executable, "-m", "repro.benchmark.runner", "work",
            *queue_flags, "--owner", f"chaos-worker-{index}",
            "--fault-plan", str(plan_path),
        ]
        print(f"+ {' '.join(command)} &", flush=True)
        procs.append(subprocess.Popen(
            command, env=bench_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        ))
        time.sleep(0.2)  # let the first worker publish the run spec
    exit_codes = []
    for proc in procs:
        out, _ = proc.communicate(timeout=1800)
        sys.stdout.write(out)
        exit_codes.append(proc.returncode)
    if sorted(exit_codes) != [-9, 0]:
        raise SystemExit(
            f"FAIL: expected one SIGKILLed and one clean worker, "
            f"exit codes {exit_codes}"
        )

    manifest_path = workdir / "queue-merge-manifest.json"
    merge = run_module("repro.benchmark.runner", [
        "merge", *queue_flags, "--timeout", "600",
        "--manifest", str(manifest_path),
    ])
    merged = checkpoint_outputs(run_queue)
    for name in experiments:
        if merged.get(name) != reference[name]:
            raise SystemExit(
                f"FAIL: merged {name!r} output differs from the reference"
            )
        if f"######## {name} (" not in merge.stdout:
            raise SystemExit(f"FAIL: merge stdout missing {name!r}")
    report = json.loads(manifest_path.read_text())["queue"]
    if report["steals"] < 1:
        raise SystemExit(f"FAIL: no steal-on-stale recorded: {report}")


def checkpoint_outputs(run_dir: Path) -> dict[str, str]:
    out = {}
    for path in sorted((run_dir / "experiments").glob("*.json")):
        record = json.loads(path.read_text())
        out[record["name"]] = record["output"]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--experiments", default="table18,labeling",
        help="comma-separated pair; the FIRST one's worker gets killed",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="working directory (default: a fresh temp dir, removed on success)",
    )
    args = parser.parse_args(argv)

    experiments = args.experiments.split(",")
    kill_target = experiments[0]
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="chaos-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    run_ref, run_chaos = workdir / "run-ref", workdir / "run-chaos"
    cache_ref, cache_chaos = workdir / "cache-ref", workdir / "cache-chaos"

    plan_path = workdir / "plan.json"
    plan_path.write_text(json.dumps({
        "seed": 0,
        "rules": [
            # Every attempt dies -> restarts exhaust -> loud failure record.
            {"point": "worker.run", "mode": "kill",
             "match": {"experiment": kill_target}},
            # First artifact stored (the corpus) is bit-rotted on disk.
            {"point": "cache.write", "mode": "corrupt", "on_call": 1},
        ],
    }, indent=2))

    base = [args.experiments, "--scale", str(args.scale),
            "--seed", str(args.seed), "--jobs", "2"]

    print("=== stage 1: fault-free reference run ===", flush=True)
    run_bench([*base, "--run-dir", str(run_ref),
               "--cache-dir", str(cache_ref)])
    reference = checkpoint_outputs(run_ref)
    if sorted(reference) != sorted(experiments):
        raise SystemExit(f"FAIL: reference checkpointed {sorted(reference)}")

    print("=== stage 2: chaos run (worker killed, cache poisoned) ===",
          flush=True)
    chaos = run_bench(
        [*base, "--run-dir", str(run_chaos), "--cache-dir", str(cache_chaos),
         "--fault-plan", str(plan_path), "--max-worker-restarts", "1"],
        expect_rc=None,
    )
    if chaos.returncode == 0:
        raise SystemExit("FAIL: chaos run exited 0 despite a killed worker")
    if f"######## {kill_target} FAILED ########" not in chaos.stdout:
        raise SystemExit("FAIL: chaos run did not report the failed experiment")
    if "experiment(s) failed" not in chaos.stderr:
        raise SystemExit("FAIL: chaos run printed no per-experiment error summary")
    partial = checkpoint_outputs(run_chaos)
    if kill_target in partial:
        raise SystemExit(f"FAIL: killed experiment {kill_target!r} was checkpointed")

    print("=== stage 3: fault-free --resume run ===", flush=True)
    resume = run_bench(
        [*base, "--run-dir", str(run_chaos), "--cache-dir", str(cache_chaos),
         "--resume"],
    )

    print("=== stage 4: verify recovery ===", flush=True)
    recovered = checkpoint_outputs(run_chaos)
    for name in experiments:
        if recovered.get(name) != reference[name]:
            raise SystemExit(
                f"FAIL: {name!r} output after resume differs from the "
                f"fault-free reference"
            )
    quarantined = list((cache_chaos / "quarantine").glob("*.pkl"))
    if not quarantined:
        raise SystemExit(
            "FAIL: poisoned cache entry was never quarantined on resume"
        )
    for name in experiments:
        if f"######## {name} (" not in resume.stdout:
            raise SystemExit(f"FAIL: resume run stdout missing {name!r}")

    print("=== stage 5: streamed ingestion under csv.read_chunk chaos ===",
          flush=True)
    stream_stage(workdir)

    print("=== stage 6: distributed queue workers under SIGKILL chaos ===",
          flush=True)
    queue_stage(workdir, experiments, reference, cache_ref,
                args.scale, args.seed)

    print(f"chaos smoke OK: {len(experiments)} experiments recovered, "
          f"{len(quarantined)} cache entr{'y' if len(quarantined) == 1 else 'ies'} "
          f"quarantined")
    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
