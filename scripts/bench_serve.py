#!/usr/bin/env python
"""Load generator + benchmark for the ``repro.serve`` inference service.

Full mode (default) produces the PR's evidence file (``BENCH_pr3.json``):

1. trains and saves a model artifact, and writes a synthetic CSV workload;
2. baseline: sequential ``repro-infer --model`` subprocess per table — the
   pre-serving deployment story (every invocation pays interpreter start,
   model load, and a cold featurizer);
3. server: one warm ``repro-serve`` process, the same tables fired by
   concurrent clients — reports columns/sec, p50/p90/p99 latency, batch-size
   distribution, and shed counts from ``/metrics``;
4. parity: server predictions must be byte-identical (modulo timing fields)
   to the offline ``TypeInferencePipeline`` on every table.

Smoke mode (``--smoke``, used by the CI ``serve-smoke`` job) fires N
concurrent requests at a server (``--server URL``, or a self-started one)
and fails on any 5xx response or a wall-time ceiling breach.

Trace-overhead mode (``--trace-overhead``, evidence for ``BENCH_pr6.json``)
measures server throughput with distributed tracing active end to end
(traceparent propagation, queue-wait span synthesis, rolling-window
metrics), microbenchmarks the span machinery itself, and compares
columns/sec against a committed baseline file (``BENCH_pr3.json``) with a
5% regression bar.

Fleet mode (``--fleet``, evidence for ``BENCH_pr10.json``) measures the
client-side balancer over N serve processes sharing one artifact:

1. columns/sec at each process count in ``--processes`` (the near-linear
   scaling assertion only applies when the host has at least that many
   CPUs — the result records ``cpus`` either way);
2. a hot-swap soak: sustained load through a 2-process fleet while every
   backend's default model is swapped to a second artifact mid-run —
   zero lost requests, every response fingerprinted to one of the two
   artifacts, and byte-identical to the offline pipeline of whichever
   artifact answered;
3. keep-alive pipelining vs sequential requests on one connection.

The CI ``serve-fleet-smoke`` job runs this mode small (2 backends); the
swap/parity gates fail the job, the scaling gate is advisory on shared
runners.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py --out BENCH_pr3.json
    PYTHONPATH=src python scripts/bench_serve.py --smoke --server http://127.0.0.1:8123
    PYTHONPATH=src python scripts/bench_serve.py --trace-overhead --out BENCH_pr6.json
    PYTHONPATH=src python scripts/bench_serve.py --fleet --out BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import percentile  # noqa: E402
from repro.serve.client import ServeClient, ServeClientError  # noqa: E402

SMOKE_CSV = "id,amount,category\n" + "\n".join(
    f"{i},{round(3.5 * i, 2)},{['a', 'b', 'c'][i % 3]}" for i in range(30)
)


# --------------------------------------------------------------------------
# workload synthesis
# --------------------------------------------------------------------------
def make_workload(root: Path, n_tables: int, n_rows: int, seed: int) -> list[Path]:
    """Write ``n_tables`` mixed-type CSVs; returns their paths."""
    root.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    cities = ["berlin", "oslo", "lima", "pune", "quito", "osaka"]
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
    paths = []
    for t in range(n_tables):
        columns: dict[str, list[str]] = {
            "record_id": [str(10_000 + i) for i in range(n_rows)],
            "amount": [f"{rng.uniform(1, 9999):.2f}" for _ in range(n_rows)],
            "city": [rng.choice(cities) for _ in range(n_rows)],
            "signup_date": [
                f"20{rng.randint(10, 23):02d}-{rng.randint(1, 12):02d}-"
                f"{rng.randint(1, 28):02d}"
                for _ in range(n_rows)
            ],
            "rating": [str(rng.randint(1, 5)) for _ in range(n_rows)],
            "note": [
                " ".join(rng.choice(words) for _ in range(rng.randint(4, 9)))
                for _ in range(n_rows)
            ],
            "homepage": [
                f"https://example.org/{rng.choice(words)}/{i}"
                for i in range(n_rows)
            ],
            "price_label": [f"${rng.uniform(1, 99):.2f}" for _ in range(n_rows)],
        }
        lines = [",".join(columns)]
        for i in range(n_rows):
            lines.append(",".join(columns[name][i] for name in columns))
        path = root / f"table_{t:03d}.csv"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        paths.append(path)
    return paths


def train_artifact(path: Path, n_examples: int, trees: int, seed: int) -> None:
    from repro.core.models import RandomForestModel
    from repro.core.persistence import save_model
    from repro.datagen.corpus import generate_corpus

    corpus = generate_corpus(n_examples=n_examples, seed=seed)
    model = RandomForestModel(n_estimators=trees, random_state=seed)
    model.fit(corpus.dataset)
    save_model(model, path)


# --------------------------------------------------------------------------
# baseline: sequential repro-infer subprocesses
# --------------------------------------------------------------------------
def run_sequential(model_path: Path, csvs: list[Path]) -> dict:
    walls = []
    n_columns = 0
    for csv_path in csvs:
        start = time.monotonic()
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", str(csv_path),
             "--model", str(model_path), "--json"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": _pythonpath()},
        )
        walls.append(time.monotonic() - start)
        if result.returncode != 0:
            raise RuntimeError(f"repro-infer failed: {result.stderr}")
        n_columns += len(json.loads(result.stdout))
    total = sum(walls)
    return {
        "mode": "sequential repro-infer --model (one subprocess per table)",
        "tables": len(csvs),
        "columns": n_columns,
        "wall_s": round(total, 3),
        "columns_per_s": round(n_columns / total, 2),
        "per_invocation_s": {
            "p50": round(percentile(sorted(walls), 50), 3),
            "p99": round(percentile(sorted(walls), 99), 3),
        },
    }


def _pythonpath() -> str:
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = os.environ.get("PYTHONPATH")
    return src + (os.pathsep + existing if existing else "")


# --------------------------------------------------------------------------
# server under load
# --------------------------------------------------------------------------
class ManagedServer:
    """A repro-serve subprocess on an ephemeral port."""

    def __init__(self, args: list[str]):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0", *args],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            env={**os.environ, "PYTHONPATH": _pythonpath()},
        )
        banner = self.proc.stdout.readline()
        try:
            self.url = next(
                tok for tok in banner.split() if tok.startswith("http://")
            )
        except StopIteration:
            self.proc.kill()
            raise RuntimeError(f"repro-serve did not start: {banner!r}")

    def stop(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait()


def run_server_load(
    url: str, csvs: list[Path], concurrency: int, passes: int
) -> dict:
    client = ServeClient(url, timeout_s=120)
    texts = [(p.stem, p.read_text(encoding="utf-8")) for p in csvs]
    jobs = texts * passes
    latencies: list[float] = []
    responses: dict[str, dict] = {}
    errors: list[str] = []

    def fire(job):
        name, text = job
        start = time.monotonic()
        try:
            response = client.infer_csv_text(text, table=name)
        except ServeClientError as exc:
            errors.append(f"{name}: {exc}")
            return
        latencies.append(time.monotonic() - start)
        responses[name] = response

    start = time.monotonic()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(fire, jobs))
    wall = time.monotonic() - start

    metrics = client.metrics()
    n_columns = sum(
        len(r["predictions"]) for r in responses.values()
    ) * passes if responses else 0
    ordered = sorted(latencies)
    return {
        "mode": f"repro-serve, {concurrency} concurrent clients, "
                f"{passes} passes over the workload",
        "tables": len(csvs),
        "requests": len(jobs),
        "errors": errors,
        "columns": n_columns,
        "wall_s": round(wall, 3),
        "columns_per_s": round(n_columns / wall, 2) if wall else None,
        "latency_s": {
            "p50": round(percentile(ordered, 50), 4),
            "p90": round(percentile(ordered, 90), 4),
            "p99": round(percentile(ordered, 99), 4),
            "max": round(ordered[-1], 4) if ordered else None,
        },
        "batch_size": metrics["histograms"].get("serve.batch_size"),
        "shed": metrics["counters"].get("serve.shed", 0),
        "deadline_exceeded": metrics["counters"].get(
            "serve.deadline_exceeded", 0
        ),
        "responses": responses,
    }


def check_parity(model_path: Path, csvs: list[Path], responses: dict) -> dict:
    """Server output must match the offline pipeline byte-for-byte."""
    from repro.core.persistence import load_model
    from repro.core.pipeline import TypeInferencePipeline

    pipeline = TypeInferencePipeline(load_model(model_path))
    mismatches = []
    for csv_path in csvs:
        offline = json.dumps(
            [p.as_dict() for p in pipeline.predict_csv(csv_path)]
        )
        served = json.dumps(responses[csv_path.stem]["predictions"])
        if offline != served:
            mismatches.append(csv_path.name)
    return {
        "tables_checked": len(csvs),
        "byte_identical": not mismatches,
        "mismatches": mismatches,
    }


# --------------------------------------------------------------------------
# modes
# --------------------------------------------------------------------------
def run_full(args) -> int:
    out: dict = {
        "benchmark": "repro.serve throughput vs sequential repro-infer",
        "python": sys.version.split()[0],
        "knobs": {
            "tables": args.tables, "rows": args.rows,
            "concurrency": args.concurrency, "passes": args.passes,
            "train_examples": args.train_examples, "trees": args.trees,
            "max_wait_ms": args.max_wait_ms,
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        root = Path(tmp)
        model_path = root / "bench.model"
        print(f"training artifact ({args.train_examples} examples, "
              f"{args.trees} trees) ...", flush=True)
        train_artifact(model_path, args.train_examples, args.trees, args.seed)
        csvs = make_workload(root / "tables", args.tables, args.rows, args.seed)

        print(f"sequential baseline over {len(csvs)} tables ...", flush=True)
        out["sequential"] = run_sequential(model_path, csvs)
        print(f"  {out['sequential']['columns_per_s']} columns/s", flush=True)

        print("starting warm server ...", flush=True)
        server = ManagedServer(
            ["--model", str(model_path),
             "--max-wait-ms", str(args.max_wait_ms), "--wait-ready"]
        )
        try:
            ServeClient(server.url).wait_ready(timeout_s=120)
            load = run_server_load(
                server.url, csvs, args.concurrency, args.passes
            )
        finally:
            exit_code = server.stop()
        responses = load.pop("responses")
        out["server"] = load
        out["server"]["clean_shutdown"] = exit_code == 0
        print(f"  {load['columns_per_s']} columns/s", flush=True)

        out["parity"] = check_parity(model_path, csvs, responses)
        speedup = (
            load["columns_per_s"] / out["sequential"]["columns_per_s"]
        )
        out["speedup_columns_per_s"] = round(speedup, 2)

    Path(args.out).write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(
        {k: out[k] for k in ("speedup_columns_per_s", "parity")}, indent=2
    ))
    print(f"wrote {args.out}")
    if load["errors"] or not out["parity"]["byte_identical"]:
        return 1
    if speedup < 5.0:
        print(f"WARNING: speedup {speedup:.1f}x below the 5x acceptance bar")
        return 1
    return 0


def microbench_tracing(iterations: int = 20_000) -> dict:
    """Cost of the span/trace machinery itself, measured in-process."""
    from repro.obs import Telemetry, TraceContext

    t = Telemetry().enable()
    start = time.perf_counter()
    for _ in range(iterations):
        with t.span("bench.span", k=1):
            pass
    span_wall = time.perf_counter() - start

    header = TraceContext.generate().to_traceparent()
    start = time.perf_counter()
    for _ in range(iterations):
        TraceContext.from_traceparent(header)
    parse_wall = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        TraceContext.generate()
    mint_wall = time.perf_counter() - start
    return {
        "iterations": iterations,
        "span_enter_exit_us": round(1e6 * span_wall / iterations, 3),
        "traceparent_parse_us": round(1e6 * parse_wall / iterations, 3),
        "context_mint_us": round(1e6 * mint_wall / iterations, 3),
    }


def run_trace_overhead(args) -> int:
    """Server throughput with tracing on, vs the committed PR 3 baseline."""
    out: dict = {
        "benchmark": "distributed-tracing overhead on repro-serve throughput",
        "python": sys.version.split()[0],
        "knobs": {
            "tables": args.tables, "rows": args.rows,
            "concurrency": args.concurrency, "passes": args.passes,
            "train_examples": args.train_examples, "trees": args.trees,
            "max_wait_ms": args.max_wait_ms,
        },
        "tracing": {
            "traceparent_propagation": True,
            "queue_wait_span_synthesis": True,
            "rolling_window_metrics": True,
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench-trace-") as tmp:
        root = Path(tmp)
        model_path = root / "bench.model"
        print(f"training artifact ({args.train_examples} examples, "
              f"{args.trees} trees) ...", flush=True)
        train_artifact(model_path, args.train_examples, args.trees, args.seed)
        csvs = make_workload(root / "tables", args.tables, args.rows, args.seed)

        trace_path = root / "server-spans.jsonl"
        print("starting warm server (tracing active) ...", flush=True)
        server = ManagedServer(
            ["--model", str(model_path),
             "--max-wait-ms", str(args.max_wait_ms), "--wait-ready",
             "--trace-out", str(trace_path)]
        )
        try:
            ServeClient(server.url).wait_ready(timeout_s=120)
            # One warmup pass so the measured run sees hot caches, as the
            # PR 3 baseline run did.
            run_server_load(server.url, csvs, args.concurrency, 1)
            load = run_server_load(
                server.url, csvs, args.concurrency, args.passes
            )
        finally:
            exit_code = server.stop()
        load.pop("responses")
        out["server"] = load
        out["server"]["clean_shutdown"] = exit_code == 0
        print(f"  {load['columns_per_s']} columns/s with tracing", flush=True)
        if trace_path.exists():
            with open(trace_path, encoding="utf-8") as handle:
                out["server"]["spans_exported"] = sum(
                    1 for line in handle if line.strip()
                )

    out["microbenchmark_tracing"] = microbench_tracing()
    print(json.dumps(out["microbenchmark_tracing"], indent=2))

    comparison: dict = {"baseline_file": args.baseline}
    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        before = baseline["server"]["columns_per_s"]
        after = load["columns_per_s"]
        delta_pct = round(100.0 * (after - before) / before, 2)
        comparison.update(
            baseline_columns_per_s=before,
            traced_columns_per_s=after,
            delta_pct=delta_pct,
            within_5pct=delta_pct >= -5.0,
        )
    except (OSError, KeyError, ValueError) as exc:
        comparison["error"] = f"baseline unavailable: {exc}"
    out["comparison_to_baseline"] = comparison

    Path(args.out).write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(comparison, indent=2))
    print(f"wrote {args.out}")
    if load["errors"]:
        return 1
    if comparison.get("within_5pct") is False:
        print("FAIL: tracing overhead exceeds the 5% throughput bar")
        return 1
    return 0


def _offline_truth(model_path: Path, csvs: list[Path]) -> dict:
    """``table name -> predictions json`` from the offline pipeline."""
    from repro.core.persistence import load_model
    from repro.core.pipeline import TypeInferencePipeline

    pipeline = TypeInferencePipeline(load_model(model_path))
    return {
        p.stem: json.dumps(
            [pred.as_dict() for pred in pipeline.predict_csv(p)]
        )
        for p in csvs
    }


def _start_fleet(model_path: Path, n: int, max_wait_ms: float) -> list:
    return [
        ManagedServer(
            ["--model", str(model_path),
             "--max-wait-ms", str(max_wait_ms), "--wait-ready"]
        )
        for _ in range(n)
    ]


def _fire_fleet(fleet, jobs: list, concurrency: int) -> dict:
    """Fire (name, text) jobs through a FleetClient; keep every response."""
    latencies: list[float] = []
    responses: list = []
    errors: list[str] = []

    def fire(job):
        name, text = job
        start = time.monotonic()
        try:
            response = fleet.infer_csv_text(text, table=name)
        except ServeClientError as exc:
            errors.append(f"{name}: {exc}")
            return
        latencies.append(time.monotonic() - start)
        responses.append((name, response))

    start = time.monotonic()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(fire, jobs))
    wall = time.monotonic() - start
    n_columns = sum(len(r["predictions"]) for _, r in responses)
    ordered = sorted(latencies)
    return {
        "requests": len(jobs),
        "ok": len(responses),
        "errors": errors,
        "columns": n_columns,
        "wall_s": round(wall, 3),
        "columns_per_s": round(n_columns / wall, 2) if wall else None,
        "latency_s": {
            "p50": round(percentile(ordered, 50), 4) if ordered else None,
            "p99": round(percentile(ordered, 99), 4) if ordered else None,
        },
        "responses": responses,
    }


def _fleet_parity(responses: list, truth_by_fp: dict) -> dict:
    """Every response must match the offline truth of the artifact whose
    fingerprint it carries."""
    mismatches = []
    unknown_fps = set()
    for name, response in responses:
        truth = truth_by_fp.get(response.get("fingerprint"))
        if truth is None:
            unknown_fps.add(response.get("fingerprint"))
            continue
        if json.dumps(response["predictions"]) != truth[name]:
            mismatches.append(name)
    return {
        "responses_checked": len(responses),
        "byte_identical": not mismatches and not unknown_fps,
        "mismatches": mismatches[:5],
        "unknown_fingerprints": sorted(
            str(fp) for fp in unknown_fps
        ),
    }


def run_fleet(args) -> int:
    """Balancer scaling + mid-run hot swap + pipelining (BENCH_pr10.json)."""
    from repro.core.persistence import model_fingerprint
    from repro.serve.balance import FleetClient

    process_counts = sorted(
        {int(x) for x in str(args.processes).split(",") if x.strip()}
    )
    cpus = os.cpu_count() or 1
    out: dict = {
        "benchmark": "client-side balancer over N repro-serve processes",
        "python": sys.version.split()[0],
        "cpus": cpus,
        "knobs": {
            "processes": process_counts,
            "tables": args.tables, "rows": args.rows,
            "concurrency": args.concurrency, "passes": args.passes,
            "train_examples": args.train_examples, "trees": args.trees,
            "max_wait_ms": args.max_wait_ms,
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        root = Path(tmp)
        model_a = root / "fleet.model"
        model_b = root / "fleet-swap.model"
        print(f"training artifacts ({args.train_examples} examples) ...",
              flush=True)
        train_artifact(model_a, args.train_examples, args.trees, args.seed)
        train_artifact(
            model_b, args.train_examples, args.trees + 2, args.seed + 1
        )
        fp_a = model_fingerprint(model_a)
        fp_b = model_fingerprint(model_b)
        csvs = make_workload(root / "tables", args.tables, args.rows, args.seed)
        texts = [(p.stem, p.read_text(encoding="utf-8")) for p in csvs]
        truth_by_fp = {
            fp_a: _offline_truth(model_a, csvs),
            fp_b: _offline_truth(model_b, csvs),
        }
        jobs = texts * args.passes

        # -- 1. scaling: columns/sec at each process count -------------------
        scaling: dict = {}
        all_clean = True
        for n in process_counts:
            print(f"fleet of {n} process(es) ...", flush=True)
            servers = _start_fleet(model_a, n, args.max_wait_ms)
            try:
                fleet = FleetClient(
                    [s.url for s in servers], timeout_s=120
                )
                fleet.wait_ready(timeout_s=120)
                result = _fire_fleet(fleet, jobs, args.concurrency)
                fleet.close()
            finally:
                codes = [s.stop() for s in servers]
            result.pop("responses")
            result["clean_shutdown"] = all(c == 0 for c in codes)
            all_clean = all_clean and result["clean_shutdown"]
            scaling[str(n)] = result
            print(f"  {result['columns_per_s']} columns/s", flush=True)
        out["scaling"] = scaling
        low, high = str(process_counts[0]), str(process_counts[-1])
        speedup = None
        if scaling[low]["columns_per_s"]:
            speedup = round(
                scaling[high]["columns_per_s"] / scaling[low]["columns_per_s"],
                2,
            )
        # Near-linear needs a core per process; on smaller hosts the number
        # is recorded but not gated (the servers just time-share one CPU).
        applicable = cpus >= process_counts[-1]
        out["scaling_gate"] = {
            "processes": [process_counts[0], process_counts[-1]],
            "speedup": speedup,
            "cpus": cpus,
            "applicable": applicable,
            "near_linear": (
                bool(speedup and speedup >= 0.6 * process_counts[-1])
                if applicable else None
            ),
        }

        # -- 2. hot-swap soak on a 2-process fleet ---------------------------
        print("hot-swap soak (2 processes, swap mid-run) ...", flush=True)
        servers = _start_fleet(model_a, 2, args.max_wait_ms)
        swap_result: dict = {}
        try:
            fleet = FleetClient([s.url for s in servers], timeout_s=120)
            fleet.wait_ready(timeout_s=120)
            soak_jobs = texts * max(2, args.passes)
            swap_responses: dict = {}

            def swap_mid_run():
                time.sleep(0.5)
                swap_responses.update(fleet.swap_model(
                    model_a.stem, model_b, wait="drained", timeout_s=120
                ))

            swapper = ThreadPoolExecutor(max_workers=1)
            swap_future = swapper.submit(swap_mid_run)
            load = _fire_fleet(fleet, soak_jobs, args.concurrency)
            swap_future.result(timeout=180)
            swapper.shutdown()
            # One post-swap round so the new artifact provably answers even
            # when the soak finished before the swap landed.
            post = _fire_fleet(fleet, texts, args.concurrency)
            for key in ("requests", "ok", "columns"):
                load[key] += post[key]
            load["errors"] += post["errors"]
            load["responses"] += post["responses"]
            fleet.close()
        finally:
            codes = [s.stop() for s in servers]
        responses = load.pop("responses")
        fingerprints = {r.get("fingerprint") for _, r in responses}
        swap_result = {
            **load,
            "clean_shutdown": all(c == 0 for c in codes),
            "requests_lost": load["requests"] - load["ok"],
            "fingerprints_seen": sorted(str(fp) for fp in fingerprints),
            "old_fingerprint": fp_a,
            "new_fingerprint": fp_b,
            "swapped_backends": len(swap_responses),
            "parity": _fleet_parity(responses, truth_by_fp),
        }
        all_clean = all_clean and swap_result["clean_shutdown"]
        out["hot_swap"] = swap_result
        print(f"  {load['ok']}/{load['requests']} ok, "
              f"fingerprints {len(fingerprints)}", flush=True)

        # -- 3. pipelining vs sequential on one connection -------------------
        print("pipelining vs sequential (1 process) ...", flush=True)
        servers = _start_fleet(model_a, 1, args.max_wait_ms)
        try:
            client = ServeClient(servers[0].url, timeout_s=120)
            client.wait_ready(timeout_s=120)
            start = time.monotonic()
            seq_columns = 0
            for name, text in jobs:
                seq_columns += len(
                    client.infer_csv_text(text, table=name)["predictions"]
                )
            seq_wall = time.monotonic() - start
            start = time.monotonic()
            piped = client.infer_pipelined(jobs, depth=8)
            pipe_wall = time.monotonic() - start
            pipe_columns = sum(len(r["predictions"]) for r in piped)
            client.close()
        finally:
            for s in servers:
                s.stop()
        out["pipelining"] = {
            "requests": len(jobs),
            "sequential_columns_per_s": round(seq_columns / seq_wall, 2),
            "pipelined_columns_per_s": round(pipe_columns / pipe_wall, 2),
            "speedup": round(seq_wall / pipe_wall, 2) if pipe_wall else None,
        }
        print(f"  sequential {out['pipelining']['sequential_columns_per_s']} "
              f"vs pipelined {out['pipelining']['pipelined_columns_per_s']} "
              "columns/s", flush=True)

    Path(args.out).write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    for n, result in scaling.items():
        if result["errors"]:
            failures.append(f"{len(result['errors'])} errors at {n} processes")
    if swap_result["requests_lost"]:
        failures.append(f"{swap_result['requests_lost']} requests lost "
                        "during the hot swap")
    if not swap_result["parity"]["byte_identical"]:
        failures.append("hot-swap responses diverge from the offline truth")
    if not fingerprints <= {fp_a, fp_b}:
        failures.append(f"unexpected fingerprints served: {fingerprints}")
    if fp_b not in fingerprints:
        failures.append("no response carried the swapped-in artifact")
    if not all_clean:
        failures.append("a server exited uncleanly")
    gate = out["scaling_gate"]
    if gate["applicable"] and not gate["near_linear"]:
        failures.append(
            f"scaling {gate['speedup']}x over {gate['processes']} processes "
            f"is below the near-linear bar on a {cpus}-cpu host"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def run_smoke(args) -> int:
    owned: ManagedServer | None = None
    if args.server:
        url = args.server
    else:
        server_args = ["--train-examples", "300", "--trees", "10",
                       "--max-wait-ms", str(args.max_wait_ms)]
        if args.cache_dir:
            server_args += ["--cache-dir", args.cache_dir]
        owned = ManagedServer(server_args)
        url = owned.url
    client = ServeClient(url, timeout_s=120)
    try:
        health = client.wait_ready(timeout_s=args.ceiling_s)
        print(f"server ready (model {health['model']['fingerprint'][:12]})",
              flush=True)
        statuses: list[int] = []

        def fire(index: int) -> None:
            try:
                client.infer_csv_text(SMOKE_CSV, table=f"smoke{index}")
                statuses.append(200)
            except ServeClientError as exc:
                statuses.append(exc.status)

        start = time.monotonic()
        with ThreadPoolExecutor(max_workers=args.requests) as pool:
            list(pool.map(fire, range(args.requests)))
        wall = time.monotonic() - start
    finally:
        if owned is not None:
            code = owned.stop()
            print(f"server drained with exit code {code}")

    bad = [s for s in statuses if s >= 500 or s == 0]
    print(f"smoke: {len(statuses)} requests in {wall:.2f}s, "
          f"statuses={sorted(set(statuses))}")
    if bad:
        print(f"FAIL: {len(bad)} requests got 5xx/transport errors")
        return 1
    if wall > args.ceiling_s:
        print(f"FAIL: wall {wall:.1f}s over ceiling {args.ceiling_s:.0f}s")
        return 1
    print("smoke OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr3.json")
    parser.add_argument("--tables", type=int, default=12)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--passes", type=int, default=3,
                        help="how many times the workload is replayed "
                             "against the server")
    parser.add_argument("--train-examples", type=int, default=600)
    parser.add_argument("--trees", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-wait-ms", type=float, default=10.0)
    smoke = parser.add_argument_group("smoke mode (CI)")
    smoke.add_argument("--smoke", action="store_true",
                       help="fire --requests concurrent requests, assert "
                            "non-5xx and a wall ceiling")
    smoke.add_argument("--server", default=None, metavar="URL",
                       help="target a running server (default: start one)")
    smoke.add_argument("--cache-dir", default=None,
                       help="cache dir for the self-started smoke server")
    smoke.add_argument("--requests", type=int, default=20)
    smoke.add_argument("--ceiling-s", type=float, default=120.0)
    overhead = parser.add_argument_group("trace-overhead mode")
    overhead.add_argument(
        "--trace-overhead", action="store_true",
        help="measure serve throughput with tracing active and compare "
             "against --baseline (evidence for BENCH_pr6.json)",
    )
    overhead.add_argument(
        "--baseline", default="BENCH_pr3.json", metavar="PATH",
        help="committed benchmark file whose server.columns_per_s is the "
             "no-tracing reference",
    )
    fleet = parser.add_argument_group("fleet mode")
    fleet.add_argument(
        "--fleet", action="store_true",
        help="measure the client-side balancer over N serve processes, a "
             "mid-run hot swap, and pipelining (evidence for "
             "BENCH_pr10.json)",
    )
    fleet.add_argument(
        "--processes", default="1,2,4", metavar="N,N,...",
        help="fleet sizes to measure (default 1,2,4)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.trace_overhead:
        return run_trace_overhead(args)
    if args.fleet:
        return run_fleet(args)
    return run_full(args)


if __name__ == "__main__":
    sys.exit(main())
