#!/usr/bin/env python
"""Microbenchmarks for the PR-7 kernel frontier.

Measures, on this machine:

* Conv1D forward+backward — the retired strided-einsum kernel vs the
  im2col GEMM kernel, at float64 and float32.
* End-to-end CharCNN training batches (the ``charcnn.batch`` span), with
  the einsum kernel monkeypatched back in for an honest before/after on
  the same commit.
* Levenshtein distance matrices — exact many-vs-many vs the banded,
  early-exit kernel at several caps (correctness asserted within the cap).
* NameStatsKNN.distance_matrix with and without ``name_cap``.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py [--smoke] [--out FILE]

``--smoke`` shrinks every problem so the whole script runs in seconds
(CI); ``--out`` writes the numbers as JSON (used to land BENCH_pr7.json).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.ml.distances import (
    levenshtein_many_vs_many,
    levenshtein_many_vs_many_banded,
)
from repro.ml.neighbors import NameStatsKNN
from repro.nn import charcnn as charcnn_mod
from repro.nn.charcnn import CharCNNClassifier
from repro.nn.layers import Conv1D, Layer


class EinsumConv1D(Layer):
    """The pre-PR-7 strided-einsum Conv1D, kept verbatim as the baseline.

    Copied from the retired implementation (git history) so before/after
    numbers come from one commit; float64-only, like the original.
    """

    def __init__(self, in_channels, out_channels, kernel_size, rng,
                 dtype=np.float64):
        super().__init__()
        scale = np.sqrt(2.0 / (kernel_size * in_channels))
        self.weight = rng.normal(
            0.0, scale, size=(kernel_size, in_channels, out_channels)
        ).astype(dtype)
        self.bias = np.zeros(out_channels, dtype=dtype)
        self.kernel_size = kernel_size
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]

    def _windows(self, x):
        batch, seq, channels = x.shape
        out_seq = seq - self.kernel_size + 1
        stride_b, stride_s, stride_c = x.strides
        return np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_seq, self.kernel_size, channels),
            strides=(stride_b, stride_s, stride_s, stride_c),
            writeable=False,
        )

    def forward(self, x, training=False):
        if x.shape[1] < self.kernel_size:
            pad = self.kernel_size - x.shape[1]
            x = np.pad(x, ((0, 0), (0, pad), (0, 0)))
        self._x = x
        windows = self._windows(x)
        self._windows_cache = windows
        return (
            np.einsum("bokc,kcf->bof", windows, self.weight, optimize=True)
            + self.bias
        )

    def backward(self, grad_out):
        windows = self._windows_cache
        self.grads[0] += np.einsum(
            "bokc,bof->kcf", windows, grad_out, optimize=True
        )
        self.grads[1] += grad_out.sum(axis=(0, 1))
        grad_x = np.zeros_like(self._x)
        contribution = np.einsum(
            "bof,kcf->bokc", grad_out, self.weight, optimize=True
        )
        for k in range(self.kernel_size):
            grad_x[:, k : k + grad_out.shape[1], :] += contribution[:, :, k, :]
        return grad_x


def _time(fn, repeats, warmup=1):
    """Best-of-N wall seconds (best-of is robust to scheduler noise)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_conv_layer(smoke):
    batch, seq, channels, filters, kernel = (
        (16, 30, 16, 32, 3) if smoke else (64, 120, 32, 128, 3)
    )
    repeats = 3 if smoke else 10
    rng = np.random.default_rng(0)
    results = {}
    for name, cls, dtype in (
        ("einsum_f64", EinsumConv1D, np.float64),
        ("im2col_f64", Conv1D, np.float64),
        ("im2col_f32", Conv1D, np.float32),
    ):
        layer = cls(channels, filters, kernel, np.random.default_rng(7),
                    dtype=dtype)
        x = rng.standard_normal((batch, seq, channels)).astype(dtype)
        out_seq = seq - kernel + 1
        g = rng.standard_normal((batch, out_seq, filters)).astype(dtype)

        def step(layer=layer, x=x, g=g):
            layer.zero_grad()
            layer.forward(x, training=True)
            layer.backward(g)

        results[name] = _time(step, repeats)
    results["speedup_f64"] = results["einsum_f64"] / results["im2col_f64"]
    results["speedup_f32"] = results["einsum_f64"] / results["im2col_f32"]
    results["shape"] = {
        "batch": batch, "seq": seq, "channels": channels,
        "filters": filters, "kernel": kernel,
    }
    return results


def _make_training_set(rng, n, stats_dim=12, n_classes=5):
    """The paper's CNN input shape: three text fields (attribute name plus
    two sample values) and a stats matrix, shaped [field][example]."""
    words = ["total", "amount", "customer_id", "zip", "email", "notes",
             "created_at", "ratio", "flags", "city_name"]
    names = [
        f"{words[rng.integers(len(words))]}_{rng.integers(100)}"
        for _ in range(n)
    ]
    sample1 = [f"{rng.normal():.4f}" for _ in range(n)]
    sample2 = [
        "".join(rng.choice(list("abcdefgh 0123"), size=rng.integers(4, 20)))
        for _ in range(n)
    ]
    stats = rng.standard_normal((n, stats_dim))
    y = [f"class_{rng.integers(n_classes)}" for _ in range(n)]
    return [names, sample1, sample2], stats, y


def bench_charcnn_batch(smoke):
    """Mean ``charcnn.batch`` span: einsum-f64 (old) vs im2col f64/f32."""
    from repro.obs import telemetry

    n, epochs = (120, 2) if smoke else (600, 3)
    rng = np.random.default_rng(5)
    texts, stats, y = _make_training_set(rng, n)
    results = {}
    was_enabled = telemetry.enabled
    if not was_enabled:
        telemetry.enable(log_level="error")
    for name, conv_cls, dtype in (
        ("einsum_f64", EinsumConv1D, "float64"),
        ("im2col_f64", Conv1D, "float64"),
        ("im2col_f32", Conv1D, "float32"),
    ):
        original = charcnn_mod.Conv1D
        charcnn_mod.Conv1D = conv_cls
        try:
            clf = CharCNNClassifier(
                epochs=epochs, random_state=11, dtype=dtype
            )
            before = len(telemetry.spans)
            start = time.perf_counter()
            clf.fit(texts, stats, y)
            wall = time.perf_counter() - start
            batch_spans = [
                s for s in telemetry.spans[before:]
                if s.name == "charcnn.batch"
            ]
        finally:
            charcnn_mod.Conv1D = original
        # median span: robust to the first-batch warmup (buffer allocation,
        # BLAS thread spin-up) and scheduler noise
        results[name] = {
            "fit_wall_s": wall,
            "batch_span_median_s": (
                float(np.median([s.wall_s for s in batch_spans]))
                if batch_spans else None
            ),
            "n_batches": len(batch_spans),
        }
    if not was_enabled:
        telemetry.disable()
    for variant in ("im2col_f64", "im2col_f32"):
        old = results["einsum_f64"]["batch_span_median_s"]
        new = results[variant]["batch_span_median_s"]
        if old and new:
            results[f"speedup_{variant.split('_')[1]}"] = old / new
    results["config"] = {"n_examples": n, "epochs": epochs}
    return results


def _random_names(rng, n, lo=3, hi=24):
    alphabet = list("abcdefghijklmnopqrstuvwxyz_0123456789")
    return [
        "".join(rng.choice(alphabet, size=rng.integers(lo, hi)))
        for _ in range(n)
    ]


def bench_levenshtein(smoke):
    nq, nc = (40, 80) if smoke else (200, 400)
    repeats = 2 if smoke else 3
    rng = np.random.default_rng(13)
    queries = _random_names(rng, nq)
    corpus = _random_names(rng, nc)
    exact = levenshtein_many_vs_many(queries, corpus)
    results = {
        "n_queries": nq, "n_corpus": nc,
        "exact_s": _time(
            lambda: levenshtein_many_vs_many(queries, corpus), repeats
        ),
        "caps": {},
    }
    for cap in (2, 5, 10):
        banded = levenshtein_many_vs_many_banded(queries, corpus, cap)
        within = exact <= cap
        assert np.array_equal(banded[within], exact[within]), (
            f"banded kernel diverged from exact within cap={cap}"
        )
        assert np.all(banded[~within] == cap + 1), (
            f"banded kernel failed to clip beyond cap={cap}"
        )
        results["caps"][str(cap)] = {
            "banded_s": _time(
                lambda cap=cap: levenshtein_many_vs_many_banded(
                    queries, corpus, cap
                ),
                repeats,
            ),
            "pct_within_cap": float(within.mean()),
        }
        results["caps"][str(cap)]["speedup"] = (
            results["exact_s"] / results["caps"][str(cap)]["banded_s"]
        )
    return results


def bench_knn_matrix(smoke):
    n_train, n_query, cap = (80, 40, 5) if smoke else (400, 200, 5)
    repeats = 2 if smoke else 3
    rng = np.random.default_rng(23)
    names = _random_names(rng, n_train)
    stats = rng.standard_normal((n_train, 10))
    y = [f"class_{rng.integers(4)}" for _ in range(n_train)]
    q_names = _random_names(rng, n_query)
    q_stats = rng.standard_normal((n_query, 10))

    exact = NameStatsKNN().fit(names, stats, y)
    banded = NameStatsKNN(name_cap=cap).fit(names, stats, y)
    results = {
        "n_train": n_train, "n_queries": n_query, "name_cap": cap,
        "exact_s": _time(
            lambda: exact.distance_matrix(q_names, q_stats), repeats
        ),
        "banded_s": _time(
            lambda: banded.distance_matrix(q_names, q_stats), repeats
        ),
    }
    results["speedup"] = results["exact_s"] / results["banded_s"]
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny problem sizes so the whole run takes seconds (CI)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the results as JSON",
    )
    args = parser.parse_args(argv)

    report = {"smoke": args.smoke}
    print("== Conv1D layer (forward+backward, best-of-N) ==")
    report["conv_layer"] = bench_conv_layer(args.smoke)
    c = report["conv_layer"]
    print(f"  einsum  f64: {c['einsum_f64'] * 1e3:8.2f} ms")
    print(f"  im2col  f64: {c['im2col_f64'] * 1e3:8.2f} ms  "
          f"({c['speedup_f64']:.2f}x)")
    print(f"  im2col  f32: {c['im2col_f32'] * 1e3:8.2f} ms  "
          f"({c['speedup_f32']:.2f}x)")

    print("== CharCNN end-to-end (charcnn.batch span median) ==")
    report["charcnn_batch"] = bench_charcnn_batch(args.smoke)
    b = report["charcnn_batch"]
    for name in ("einsum_f64", "im2col_f64", "im2col_f32"):
        med = b[name]["batch_span_median_s"]
        med_ms = f"{med * 1e3:8.2f} ms" if med is not None else "   (n/a)"
        print(f"  {name}: {med_ms}  over {b[name]['n_batches']} batches")
    for key in ("speedup_f64", "speedup_f32"):
        if key in b:
            print(f"  {key}: {b[key]:.2f}x")

    print("== Levenshtein distance matrix ==")
    report["levenshtein"] = bench_levenshtein(args.smoke)
    lv = report["levenshtein"]
    print(f"  exact ({lv['n_queries']}x{lv['n_corpus']}): "
          f"{lv['exact_s'] * 1e3:8.2f} ms")
    for cap, row in lv["caps"].items():
        print(f"  banded cap={cap}: {row['banded_s'] * 1e3:8.2f} ms  "
              f"({row['speedup']:.2f}x, {row['pct_within_cap']:.0%} within)")

    print("== NameStatsKNN.distance_matrix ==")
    report["knn_matrix"] = bench_knn_matrix(args.smoke)
    k = report["knn_matrix"]
    print(f"  exact:  {k['exact_s'] * 1e3:8.2f} ms")
    print(f"  banded (cap={k['name_cap']}): {k['banded_s'] * 1e3:8.2f} ms  "
          f"({k['speedup']:.2f}x)")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
