"""Pull-claim work queue over a shared ``--run-dir``: leases, heartbeats,
steal-on-stale, and a merging coordinator.

PR 4/5 made ``--run-dir`` a *passive* checkpoint directory: a supervising
parent forked workers and recorded their results.  This module promotes the
same directory into the **coordination substrate** for multiple independent
worker processes — on one host or on many hosts sharing a filesystem — with
no supervisor at all:

* ``repro-bench work --run-dir DIR`` runs a pull-mode worker loop: scan the
  queue's tasks (one per monolithic experiment, one per shard of every
  :class:`~repro.benchmark.sharding.Shardable` experiment), claim the next
  unclaimed one, run it, durably record the result exactly as PR 5's engine
  does, release, repeat.
* ``repro-bench merge --run-dir DIR`` waits for every task to complete (or
  terminally fail), folds shard payloads through the registered merges with
  the existing checksum/parent validation, and prints output byte-identical
  to a serial run.

The protocol uses only three filesystem primitives — ``O_EXCL`` create,
``utime``, ``unlink`` — so it works on any POSIX filesystem (and NFS, where
exclusive create is atomic on v3+):

**Claims.**  A task's lease lives at
``<run-dir>/leases/<task-stem>.a<attempt>.lease``.  Claiming attempt *N* is
one ``O_EXCL`` create of that path: exactly one of any number of racing
workers wins; losers move on to the next task.  The lease body records the
owner id, pid, host, attempt, and claim time.

**Heartbeats.**  The winner's heartbeat thread (the same machinery PR 4
gave the engine's forked workers) refreshes the lease file's mtime every
``heartbeat_s``.  A lease whose mtime is older than the stale window is the
signature of a dead or wedged owner.

**Steal-on-stale.**  A worker that finds a stale lease claims the *next*
attempt — one ``O_EXCL`` create of ``….a<N+1>.lease``; again exactly one
stealer wins.  The attempt number is therefore monotone per task and doubles
as a **fencing token**: before recording a result, an owner re-checks that
its lease file still exists and that no higher-attempt lease has appeared
(:meth:`Lease.is_current`).  A zombie — an owner that stalled long enough
to be stolen from, then woke up and tried to record — fails that check and
its late write is rejected and counted as ``checkpoint.stale_attempt``.

**Completion.**  A task is complete when its checkpoint record exists
(``<run-dir>/experiments/<name>.json`` or
``<run-dir>/shards/<experiment>/<shard>.json``); records are written
atomically, so existence is an all-or-nothing signal.  A deterministic
in-task exception is *not* retried (same contract as the engine): the
worker records it under ``<run-dir>/failures/`` and the task is terminal.

The in-process ``--jobs`` engine (:mod:`repro.benchmark.parallel`) consumes
this same protocol whenever it has a run dir: it claims a lease before
forking each worker (the lease file doubles as the worker's heartbeat
file), defers tasks a peer holds, and steals stale ones — so
``repro-bench all --jobs N --run-dir D`` and any number of concurrent
``repro-bench work --run-dir D`` processes cooperate on one queue.

Fault points: ``queue.claim``, ``queue.steal``, and ``queue.release`` let a
chaos plan strike at each protocol edge (see docs/robustness.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Callable, Iterable, NamedTuple

from repro.benchmark.checkpoint import RunCheckpoint
from repro.faults import faults
from repro.obs import telemetry
from repro.obs.export import write_json

#: Bumped if the spec/lease layout changes incompatibly.
SCHEMA = 1

#: Default window after which a lease with an un-refreshed mtime may be
#: stolen.  Matches the engine's minimum stale window: a worker heartbeats
#: every second, so 30 s of silence means it is dead or wedged, not busy.
DEFAULT_STALE_S = 30.0
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_POLL_S = 0.5

_LEASE_RE = re.compile(r"^(?P<stem>.+)\.a(?P<attempt>\d+)\.lease$")


def task_stem(key: str) -> str:
    """Filesystem-safe, collision-resistant stem for a task key.

    Same construction as the checkpoint layer's sanitizer: readable prefix
    plus a short digest of the raw key, so distinct keys never alias.
    """
    stem = re.sub(r"[^A-Za-z0-9._-]", "_", key)
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:8]
    return f"{stem}-{digest}"


def default_owner() -> str:
    """A globally-unique worker identity: host, pid, and a random tag."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


class QueueTask(NamedTuple):
    """One claimable unit: a whole experiment, or one shard of one."""

    key: str  # "table18" or "table15::mushrooms" — unique across the run
    experiment: str
    shard: str | None


def expand_tasks(names: Iterable[str], context) -> list[QueueTask]:
    """Experiment names → canonical task list (shardables decompose)."""
    from repro.benchmark.sharding import get_shardable

    tasks: list[QueueTask] = []
    for name in names:
        shardable = get_shardable(name)
        if shardable is None:
            tasks.append(QueueTask(name, name, None))
            continue
        for shard_id in shardable.shard_ids(context):
            tasks.append(QueueTask(f"{name}::{shard_id}", name, shard_id))
    return tasks


class QueueError(RuntimeError):
    """A work-queue directory that cannot be used (bad/conflicting spec)."""


class Lease:
    """A held claim on one task: the ``O_EXCL``-created lease file.

    The file's mtime is the owner's heartbeat; its ``a<attempt>`` filename
    component is the fencing token.  :meth:`is_current` is the fence check
    callers pass to the checkpoint layer before recording results.
    """

    def __init__(self, queue: "WorkQueue", task: QueueTask, path: Path,
                 attempt: int, stolen_from: dict | None = None):
        self.queue = queue
        self.task = task
        self.path = path
        self.attempt = attempt
        self.stolen_from = stolen_from
        self.claimed_at = time.time()
        self._stop: threading.Event | None = None

    @property
    def stolen(self) -> bool:
        return self.stolen_from is not None

    def touch(self) -> None:
        """Refresh the heartbeat (lease file mtime)."""
        try:
            os.utime(self.path)
        except OSError:
            pass

    def start_heartbeat(self, interval_s: float) -> None:
        """Refresh the lease mtime from a daemon thread until released."""
        if self._stop is not None:
            return
        stop = threading.Event()
        self._stop = stop

        def beat() -> None:
            while not stop.wait(interval_s):
                try:
                    os.utime(self.path)
                except OSError:
                    return  # released (or stolen + cleaned): stop beating

        threading.Thread(target=beat, daemon=True, name="lease-heartbeat")\
            .start()

    def stop_heartbeat(self) -> None:
        if self._stop is not None:
            self._stop.set()
            self._stop = None

    def is_current(self) -> bool:
        """Fencing check: this lease still owns the task.

        False once the lease file is gone or any higher-attempt lease
        exists — i.e. a peer declared this owner dead and stole the task.
        A result write gated on this check can never clobber the stealer's
        world view with a zombie's stale attempt.
        """
        if not self.path.exists():
            return False
        top = self.queue._top_attempt(self.task)
        return top is not None and top[0] == self.attempt

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "task": self.task.key,
            "experiment": self.task.experiment,
            "shard": self.task.shard,
            "owner": self.queue.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "attempt": self.attempt,
            "claimed_at": self.claimed_at,
            "stolen_from": self.stolen_from,
        }


class WorkQueue:
    """Shared-directory task queue speaking the lease/steal protocol."""

    def __init__(
        self,
        run_dir: str | os.PathLike,
        *,
        owner: str | None = None,
        stale_after_s: float = DEFAULT_STALE_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ):
        self.run_dir = Path(run_dir)
        self.owner = owner or default_owner()
        self.stale_after_s = stale_after_s
        self.heartbeat_s = heartbeat_s
        self.checkpoint = RunCheckpoint(self.run_dir)

    # -- directories ---------------------------------------------------------
    @property
    def leases_dir(self) -> Path:
        return self.run_dir / "leases"

    @property
    def failures_dir(self) -> Path:
        return self.run_dir / "failures"

    @property
    def workers_dir(self) -> Path:
        return self.run_dir / "workers"

    @property
    def spec_path(self) -> Path:
        return self.run_dir / "queue.json"

    def lease_path(self, task: QueueTask, attempt: int) -> Path:
        return self.leases_dir / f"{task_stem(task.key)}.a{attempt}.lease"

    def failure_path(self, task: QueueTask) -> Path:
        return self.failures_dir / f"{task_stem(task.key)}.json"

    # -- run spec ------------------------------------------------------------
    def publish_spec(self, spec: dict) -> dict:
        """Install the run spec, or validate against the one already there.

        The first worker to arrive publishes (atomically: full temp file +
        ``os.link``, so a reader can never observe a torn spec); later
        workers and the coordinator must agree on the coordination-relevant
        fields — two workers with different seeds silently merging into one
        run dir is exactly the split-brain this rejects.
        """
        spec = {"schema": SCHEMA, **spec}
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if not self.spec_path.exists():
            tmp = self.spec_path.with_suffix(f".tmp-{uuid.uuid4().hex[:8]}")
            tmp.write_text(
                json.dumps(spec, indent=2, sort_keys=True), encoding="utf-8"
            )
            try:
                os.link(tmp, self.spec_path)
                telemetry.info(
                    "queue.spec_published", run_dir=str(self.run_dir),
                    owner=self.owner,
                )
            except FileExistsError:
                pass  # a peer won the publish race; validate theirs below
            finally:
                tmp.unlink(missing_ok=True)
        existing = self.load_spec()
        for field in ("schema", "experiments", "scale", "seed"):
            if existing.get(field) != spec.get(field):
                raise QueueError(
                    f"run dir {self.run_dir} already coordinates a different "
                    f"run: {field}={existing.get(field)!r} there vs "
                    f"{spec.get(field)!r} here (use a fresh --run-dir, or "
                    f"matching parameters)"
                )
        return existing

    def load_spec(self) -> dict:
        try:
            with open(self.spec_path, encoding="utf-8") as handle:
                spec = json.load(handle)
        except FileNotFoundError:
            raise QueueError(
                f"{self.spec_path} does not exist — no worker has published "
                f"a run spec for this directory yet"
            ) from None
        except (OSError, ValueError) as exc:
            raise QueueError(f"cannot read run spec {self.spec_path}: {exc}")
        if spec.get("schema") != SCHEMA:
            raise QueueError(
                f"{self.spec_path} has spec schema "
                f"{spec.get('schema')!r} (expected {SCHEMA})"
            )
        return spec

    # -- task state ----------------------------------------------------------
    def is_completed(self, task: QueueTask) -> bool:
        """Cheap durable-completion probe (record existence; writes are
        atomic, so existence is all-or-nothing)."""
        if task.shard is None:
            return self.checkpoint.path(task.experiment).is_file()
        return self.checkpoint.shard_path(task.experiment, task.shard).is_file()

    def is_failed(self, task: QueueTask) -> bool:
        return self.failure_path(task).is_file()

    def _task_leases(self, task: QueueTask) -> list[tuple[int, Path]]:
        """(attempt, path) of every lease file for the task, sorted."""
        stem = task_stem(task.key)
        out: list[tuple[int, Path]] = []
        try:
            entries = list(self.leases_dir.iterdir())
        except OSError:
            return out
        for path in entries:
            match = _LEASE_RE.match(path.name)
            if match is not None and match.group("stem") == stem:
                out.append((int(match.group("attempt")), path))
        out.sort()
        return out

    def _top_attempt(self, task: QueueTask) -> tuple[int, Path] | None:
        leases = self._task_leases(task)
        return leases[-1] if leases else None

    def _lease_age_s(self, path: Path) -> float | None:
        try:
            return time.time() - path.stat().st_mtime
        except OSError:
            return None  # vanished: released or stolen-and-cleaned

    def _read_lease(self, path: Path) -> dict | None:
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- the protocol --------------------------------------------------------
    def try_claim(self, task: QueueTask, *, steal: bool = True) -> Lease | None:
        """Claim the task, stealing a stale lease if allowed.

        Returns the held :class:`Lease`, or None when the task is already
        completed/failed, freshly leased by a live peer, or lost to a racer.
        """
        if self.is_completed(task) or self.is_failed(task):
            return None
        top = self._top_attempt(task)
        if top is None:
            return self._create_lease(task, attempt=0, stolen_from=None)
        attempt, path = top
        age = self._lease_age_s(path)
        if age is None:
            # The top lease vanished between scan and stat: the owner
            # released it (completed or failed) or a stealer cleaned up.
            # Re-scan on the next pass rather than racing blind.
            return None
        if age <= self.stale_after_s:
            return None  # live peer owns it
        if not steal:
            return None
        previous = self._read_lease(path)
        faults.point(
            "queue.steal", task=task.key, attempt=attempt + 1,
            owner=self.owner,
        )
        lease = self._create_lease(
            task, attempt=attempt + 1,
            stolen_from=previous or {"attempt": attempt},
        )
        if lease is not None:
            telemetry.count("queue.stolen")
            telemetry.warning(
                "queue.lease_stolen", task=task.key, attempt=lease.attempt,
                stale_s=round(age, 1),
                previous_owner=(previous or {}).get("owner"),
            )
            # Dead owners' lease files are bookkeeping debris once a higher
            # attempt exists; removing them keeps scans O(live tasks).  The
            # zombie's fence no longer sees itself as top either way.
            for _, old in self._task_leases(task):
                if old != lease.path:
                    old.unlink(missing_ok=True)
        return lease

    def _create_lease(
        self, task: QueueTask, attempt: int, stolen_from: dict | None
    ) -> Lease | None:
        path = self.lease_path(task, attempt)
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        faults.point(
            "queue.claim", task=task.key, attempt=attempt, owner=self.owner
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            telemetry.count("queue.claim_lost")
            return None
        lease = Lease(self, task, path, attempt, stolen_from=stolen_from)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(lease.to_dict(), handle)
        except OSError:
            path.unlink(missing_ok=True)
            raise
        telemetry.count("queue.claimed")
        telemetry.info(
            "queue.claimed", task=task.key, attempt=attempt, owner=self.owner
        )
        return lease

    def release(self, lease: Lease, *, completed: bool) -> None:
        """Give the task up: stop heartbeating and remove the lease file.

        With ``completed`` (a durable record or failure record exists) the
        task is terminal; otherwise it immediately becomes claimable again
        at attempt 0 — appropriate when the *supervisor* (not the task)
        decided to give up, e.g. the engine retiring a killed child.
        """
        lease.stop_heartbeat()
        faults.point(
            "queue.release", task=lease.task.key, attempt=lease.attempt,
            completed=completed, owner=self.owner,
        )
        lease.path.unlink(missing_ok=True)
        telemetry.count("queue.released")

    def record_failure(self, lease: Lease, error: str, tb: str) -> None:
        """Durably mark the task terminally failed (deterministic error)."""
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        write_json(str(self.failure_path(lease.task)), {
            "schema": SCHEMA,
            "task": lease.task.key,
            "experiment": lease.task.experiment,
            "shard": lease.task.shard,
            "error": error,
            "traceback": tb,
            "owner": self.owner,
            "attempt": lease.attempt,
        })
        telemetry.count("queue.task_failed")

    def failures(self) -> list[dict]:
        """Every valid terminal-failure record in the run dir."""
        out: list[dict] = []
        if not self.failures_dir.is_dir():
            return out
        for path in sorted(self.failures_dir.glob("*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                continue
            if stored.get("schema") == SCHEMA:
                out.append(stored)
        return out

    def stale_leases(self) -> list[dict]:
        """Top-attempt leases whose heartbeat is past the stale window."""
        out: list[dict] = []
        seen: set[str] = set()
        try:
            entries = sorted(self.leases_dir.iterdir(), reverse=True)
        except OSError:
            return out
        for path in entries:
            match = _LEASE_RE.match(path.name)
            if match is None or match.group("stem") in seen:
                continue
            seen.add(match.group("stem"))
            age = self._lease_age_s(path)
            if age is not None and age > self.stale_after_s:
                info = self._read_lease(path) or {}
                info["stale_s"] = round(age, 1)
                out.append(info)
        return out

    def worker_summaries(self) -> list[dict]:
        """Every worker's self-reported summary (claims/steals/results)."""
        out: list[dict] = []
        if not self.workers_dir.is_dir():
            return out
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                continue
            out.append(stored)
        return out


# ---------------------------------------------------------------------------
# The pull-mode worker loop (repro-bench work)
# ---------------------------------------------------------------------------


class QueueWorker:
    """One unsupervised peer: claim → run → record (fenced) → release."""

    def __init__(
        self,
        queue: WorkQueue,
        context,
        *,
        poll_s: float = DEFAULT_POLL_S,
        max_tasks: int | None = None,
        on_task: Callable[[QueueTask, dict], None] | None = None,
    ):
        self.queue = queue
        self.context = context
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.on_task = on_task
        self.summary = {
            "schema": SCHEMA,
            "owner": queue.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "started_at": time.time(),
            "claims": 0,
            "steals": 0,
            "completed": 0,
            "failed": 0,
            "stale_writes_rejected": 0,
            "wall_s": 0.0,
            "tasks": [],
        }

    def _write_summary(self) -> None:
        self.queue.workers_dir.mkdir(parents=True, exist_ok=True)
        path = self.queue.workers_dir / f"{task_stem(self.queue.owner)}.json"
        try:
            write_json(str(path), self.summary)
        except OSError as exc:
            telemetry.warning("queue.summary_write_failed", error=str(exc))

    def _run_task(self, task: QueueTask, lease: Lease) -> dict:
        """Execute one claimed task and (fenced) record its result."""
        from repro.benchmark.runner import run_experiment
        from repro.benchmark.sharding import get_shardable

        faults.point(
            "worker.run", experiment=task.experiment, shard=task.shard,
            attempt=lease.attempt, pid=os.getpid(),
        )
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        meta = {
            "pid": os.getpid(),
            "attempt": lease.attempt,
            "owner": self.queue.owner,
        }
        if task.shard is None:
            with telemetry.span("queue.task", experiment=task.experiment):
                output = run_experiment(task.experiment, self.context)
            record = {
                "name": task.experiment,
                "output": output,
                "wall_s": time.perf_counter() - wall0,
                "cpu_s": time.process_time() - cpu0,
                **meta,
            }
            accepted = self.queue.checkpoint.record(
                record, fence=lease.is_current
            )
        else:
            shardable = get_shardable(task.experiment)
            if shardable is None:
                raise ValueError(
                    f"experiment {task.experiment!r} is not shardable"
                )
            with telemetry.span(
                "queue.task", experiment=task.experiment, shard=task.shard
            ):
                payload = shardable.run_shard(self.context, task.shard)
            record = {
                "wall_s": time.perf_counter() - wall0,
                "cpu_s": time.process_time() - cpu0,
                **meta,
            }
            accepted = self.queue.checkpoint.record_shard(
                task.experiment, task.shard, payload,
                meta=dict(record), fence=lease.is_current,
            )
        record["task"] = task.key
        record["accepted"] = accepted
        if not accepted:
            self.summary["stale_writes_rejected"] += 1
        return record

    def run(self) -> int:
        """Drain the queue; 0 when every task completed, 1 on failures.

        The loop keeps polling while peers still hold live leases, so a
        worker whose peers all crash eventually steals and finishes their
        tasks — the queue drains as long as *any* worker survives.
        """
        queue = self.queue
        tasks = expand_tasks(
            queue.load_spec()["experiments"], self.context
        )
        self._write_summary()
        done = 0
        while True:
            outstanding = [
                t for t in tasks
                if not (queue.is_completed(t) or queue.is_failed(t))
            ]
            if not outstanding:
                break
            if self.max_tasks is not None and done >= self.max_tasks:
                break
            claimed = None
            for task in outstanding:
                claimed = queue.try_claim(task)
                if claimed is not None:
                    break
            if claimed is None:
                time.sleep(self.poll_s)
                continue
            lease, task = claimed, claimed.task
            self.summary["claims"] += 1
            if lease.stolen:
                self.summary["steals"] += 1
            lease.start_heartbeat(queue.heartbeat_s)
            try:
                record = self._run_task(task, lease)
            except Exception as exc:  # deterministic: terminal, not retried
                import traceback as _tb

                error = f"{type(exc).__name__}: {exc}"
                queue.record_failure(lease, error, _tb.format_exc())
                queue.release(lease, completed=True)
                self.summary["failed"] += 1
                self.summary["tasks"].append({
                    "task": task.key, "attempt": lease.attempt,
                    "failed": True, "error": error,
                })
                telemetry.warning(
                    "queue.task_failed", task=task.key, error=error
                )
            else:
                queue.release(lease, completed=True)
                done += 1
                self.summary["completed"] += 1
                self.summary["wall_s"] += record.get("wall_s") or 0.0
                self.summary["tasks"].append({
                    "task": task.key, "attempt": lease.attempt,
                    "stolen": lease.stolen,
                    "wall_s": record.get("wall_s"),
                    "accepted": record.get("accepted", True),
                })
                telemetry.info(
                    "queue.task_done", task=task.key,
                    attempt=lease.attempt, stolen=lease.stolen,
                )
            self._write_summary()
        self.summary["finished_at"] = time.time()
        self._write_summary()
        return 1 if self.summary["failed"] or queue.failures() else 0


# ---------------------------------------------------------------------------
# The merging coordinator (repro-bench merge)
# ---------------------------------------------------------------------------


class MergeTimeout(RuntimeError):
    """The queue did not drain within the coordinator's deadline."""


def wait_for_completion(
    queue: WorkQueue,
    tasks: list[QueueTask],
    *,
    timeout_s: float | None = None,
    poll_s: float = DEFAULT_POLL_S,
) -> None:
    """Block until every task is terminal (completed or failed).

    Raises :class:`MergeTimeout` with a diagnosis — outstanding tasks and
    any stale leases — when the deadline passes first.  The coordinator
    never runs tasks itself: with no live workers left, waiting longer
    cannot help, and the error says exactly which shards are stranded.
    """
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    while True:
        outstanding = [
            t for t in tasks
            if not (queue.is_completed(t) or queue.is_failed(t))
        ]
        if not outstanding:
            return
        if deadline is not None and time.monotonic() > deadline:
            stale = queue.stale_leases()
            detail = ", ".join(t.key for t in outstanding[:8])
            if len(outstanding) > 8:
                detail += f", … ({len(outstanding)} total)"
            raise MergeTimeout(
                f"{len(outstanding)} task(s) still incomplete after "
                f"{timeout_s:.0f}s: {detail}"
                + (f"; {len(stale)} stale lease(s) with no worker to steal "
                   f"them — start another `repro-bench work` on this run dir"
                   if stale else "")
            )
        time.sleep(poll_s)


def merge_results(queue: WorkQueue, context, names: list[str]) -> list[dict]:
    """Fold the drained queue back into per-experiment records.

    Shard payloads are reloaded through the checkpoint layer's validated
    reader (sha256 + parent-experiment attribution), then merged by the
    experiment's registered pure merge — byte-identical to a serial run by
    the PR 5 parity contract.  Results land in
    ``<run-dir>/experiments/<name>.json`` like any engine run, so the run
    dir's final shape is indistinguishable from a supervised one.
    """
    from repro.benchmark.sharding import get_shardable

    failures_by_exp: dict[str, list[dict]] = {}
    for failure in queue.failures():
        failures_by_exp.setdefault(failure["experiment"], []).append(failure)

    records: list[dict] = []
    for name in names:
        if name in failures_by_exp:
            first = failures_by_exp[name][0]
            records.append({
                "name": name,
                "failed": True,
                "error": first["error"],
                "traceback": first.get("traceback", ""),
                "attempts": first.get("attempt", 0) + 1,
            })
            continue
        existing = queue.checkpoint.completed()
        shardable = get_shardable(name)
        if shardable is None or name in existing:
            stored = existing.get(name)
            if stored is None:
                records.append({
                    "name": name,
                    "failed": True,
                    "error": f"no completion record for {name!r} in "
                             f"{queue.run_dir}",
                    "traceback": "",
                    "attempts": 0,
                })
                continue
            records.append({**stored, "resumed": False})
            continue
        shard_records = queue.checkpoint.completed_shard_records(name)
        shard_ids = shardable.shard_ids(context)
        missing = [sid for sid in shard_ids if sid not in shard_records]
        if missing:
            records.append({
                "name": name,
                "failed": True,
                "error": f"{len(missing)} shard record(s) missing or invalid "
                         f"for {name!r}: {', '.join(missing[:5])}",
                "traceback": "",
                "attempts": 0,
            })
            continue
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        with telemetry.span(
            "queue.merge", experiment=name, n_shards=len(shard_ids)
        ):
            output = shardable.merge(
                context,
                {sid: rec["payload"] for sid, rec in shard_records.items()},
            )
        record = {
            "name": name,
            "output": output,
            "wall_s": sum(
                rec["meta"].get("wall_s") or 0.0
                for rec in shard_records.values()
            ) + (time.perf_counter() - wall0),
            "cpu_s": sum(
                rec["meta"].get("cpu_s") or 0.0
                for rec in shard_records.values()
            ) + (time.process_time() - cpu0),
            "pid": os.getpid(),
            "attempt": 0,
            "attempts": 1 + max(
                (rec["meta"].get("attempt") or 0)
                for rec in shard_records.values()
            ),
            "sharded": True,
            "n_shards": len(shard_ids),
        }
        queue.checkpoint.record(record)
        records.append(record)
    return records


def queue_report(queue: WorkQueue) -> dict:
    """Aggregate the run's coordination story for manifests and stdout."""
    workers = queue.worker_summaries()
    return {
        "run_dir": str(queue.run_dir),
        "n_workers": len(workers),
        "claims": sum(w.get("claims", 0) for w in workers),
        "steals": sum(w.get("steals", 0) for w in workers),
        "completed": sum(w.get("completed", 0) for w in workers),
        "failed": sum(w.get("failed", 0) for w in workers),
        "stale_writes_rejected": sum(
            w.get("stale_writes_rejected", 0) for w in workers
        ),
        "workers": [
            {
                "owner": w.get("owner"),
                "host": w.get("host"),
                "pid": w.get("pid"),
                "claims": w.get("claims", 0),
                "steals": w.get("steals", 0),
                "completed": w.get("completed", 0),
                "failed": w.get("failed", 0),
                "wall_s": w.get("wall_s", 0.0),
                "finished": "finished_at" in w,
            }
            for w in workers
        ],
    }


def render_queue_report(report: dict) -> str:
    lines = [
        f"queue: {report['n_workers']} worker(s), "
        f"{report['completed']} task(s) completed, "
        f"{report['claims']} claim(s), {report['steals']} steal(s)"
        + (f", {report['failed']} failed" if report["failed"] else "")
        + (f", {report['stale_writes_rejected']} stale write(s) rejected"
           if report["stale_writes_rejected"] else "")
    ]
    for worker in report["workers"]:
        state = "finished" if worker["finished"] else "did not finish"
        lines.append(
            f"  worker {worker['owner']}: {worker['completed']} completed, "
            f"{worker['steals']} stolen, {worker['wall_s']:.1f}s task time "
            f"({state})"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    sys.exit("use `repro-bench work` / `repro-bench merge`")
