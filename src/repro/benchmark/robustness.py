"""Experiment E10 — Figure 9 / Table 16: robustness to sample perturbation.

Monte Carlo study: every held-out column is re-sampled ``n_runs`` times (new
random distinct sample values → new base features), and we count how often
each model's prediction matches its prediction on the unperturbed column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.featurize import profile_column

#: Table 16's percentiles over the per-column stability counts.
TABLE16_PERCENTILES = (50, 20, 10, 5, 1, 0.1, 0.01)


@dataclass
class RobustnessResult:
    """stability[model] = per-column % of runs with unchanged prediction."""

    stability: dict[str, np.ndarray] = field(default_factory=dict)
    n_runs: int = 0

    def percentile_rows(
        self, percentiles=TABLE16_PERCENTILES
    ) -> list[list[object]]:
        rows = []
        for pct in percentiles:
            row: list[object] = [pct]
            for model, values in self.stability.items():
                row.append(float(np.percentile(values, pct)))
            rows.append(row)
        return rows

    def cdf(self, model: str) -> tuple[np.ndarray, np.ndarray]:
        """(sorted stability %, cumulative fraction) — Figure 9."""
        xs = np.sort(self.stability[model])
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys


def run_robustness(
    context: BenchmarkContext,
    models: tuple[str, ...] = ("logreg", "rf"),
    n_runs: int = 100,
    max_columns: int | None = 200,
    seed: int = 1234,
) -> RobustnessResult:
    """Perturb held-out columns and measure prediction stability."""
    test = context.test
    profiles = test.profiles
    if max_columns is not None and len(profiles) > max_columns:
        rng = np.random.default_rng(seed)
        keep = sorted(rng.choice(len(profiles), size=max_columns, replace=False))
        profiles = [profiles[i] for i in keep]
    columns = [context.raw_column(p) for p in profiles]

    fitted = {name: context.model(name) for name in models}
    base_predictions = {
        name: model.predict(profiles) for name, model in fitted.items()
    }

    unchanged = {name: np.zeros(len(profiles)) for name in models}
    rng = np.random.default_rng(seed)
    for _run in range(n_runs):
        perturbed = [
            profile_column(column, source_file=p.source_file, rng=rng)
            for column, p in zip(columns, profiles)
        ]
        for name, model in fitted.items():
            predictions = model.predict(perturbed)
            for i, (pred, base) in enumerate(
                zip(predictions, base_predictions[name])
            ):
                if pred == base:
                    unchanged[name][i] += 1.0

    result = RobustnessResult(n_runs=n_runs)
    for name in models:
        result.stability[name] = 100.0 * unchanged[name] / n_runs
    return result


def render_table16(result: RobustnessResult) -> str:
    models = list(result.stability)
    rows = result.percentile_rows()
    return format_table(
        ["nth percentile", *models],
        rows,
        title=(
            f"\n== Table 16: % of {result.n_runs} perturbation runs with "
            "unchanged prediction =="
        ),
    )
