"""Experiment harness regenerating every table and figure of the paper."""

from repro.benchmark.context import BenchmarkContext, DEFAULT_N_EXAMPLES
from repro.benchmark.runner import EXPERIMENTS, run_experiment

__all__ = [
    "BenchmarkContext",
    "DEFAULT_N_EXAMPLES",
    "EXPERIMENTS",
    "run_experiment",
]
