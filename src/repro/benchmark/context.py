"""Shared benchmark context: corpus, splits, raw columns, fitted models.

Experiments share one corpus and one 80:20 split (the paper's methodology,
Section 4.1).  Heavy artifacts (the corpus, fitted models, the Sherlock
simulator) are built lazily and cached on the context so a benchmark session
that regenerates several tables pays each cost once.
"""

from __future__ import annotations

import numpy as np

from repro.cache import ArtifactCache, set_active_cache
from repro.core.featurize import LabeledDataset
from repro.core.models import (
    CNNModel,
    KNNModel,
    LogRegModel,
    RandomForestModel,
    SVMModel,
    TypeInferenceModel,
)
from repro.datagen.corpus import LabeledCorpus, generate_corpus
from repro.ml.model_selection import train_test_split
from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tools import (
    AutoGluonTool,
    PandasTool,
    RuleBaselineTool,
    SherlockTool,
    TFDVTool,
    TransmogrifAITool,
)
from repro.types import FeatureType

#: Default corpus size for benchmarks; pass scale="paper" for all 9,921.
DEFAULT_N_EXAMPLES = 2400


class BenchmarkContext:
    """Lazily-built shared state for the experiment suite."""

    def __init__(
        self,
        n_examples: int = DEFAULT_N_EXAMPLES,
        seed: int = 0,
        rf_estimators: int = 50,
        cnn_epochs: int = 10,
        cnn_dtype: str = "float64",
        knn_name_cap: int | None = None,
        cache: "ArtifactCache | None" = None,
        stream: bool = False,
    ):
        self.n_examples = n_examples
        self.seed = seed
        self.rf_estimators = rf_estimators
        self.cnn_epochs = cnn_epochs
        self.cnn_dtype = cnn_dtype
        self.knn_name_cap = knn_name_cap
        self.cache = cache
        self.stream = stream
        set_active_cache(cache)
        self._corpus: LabeledCorpus | None = None
        self._split: tuple[LabeledDataset, LabeledDataset] | None = None
        self._models: dict[str, TypeInferenceModel] = {}
        self._sherlock: SherlockTool | None = None
        self._column_index: dict[tuple[str, str], Column] | None = None

    def _data_params(self) -> dict:
        """The code-relevant parameters addressing corpus/split artifacts."""
        params = {"n_examples": self.n_examples, "seed": self.seed}
        if self.stream:
            # Only present when set, so existing cached artifacts keep
            # their addresses for the (default) batch-featurized corpus.
            params["stream"] = True
        return params

    # -- data ------------------------------------------------------------------
    @property
    def corpus(self) -> LabeledCorpus:
        if self._corpus is None:
            with telemetry.span(
                "context.corpus", n_examples=self.n_examples, seed=self.seed
            ):
                build = lambda: generate_corpus(  # noqa: E731
                    n_examples=self.n_examples, seed=self.seed,
                    stream=self.stream,
                )
                if self.cache is not None:
                    self._corpus = self.cache.fetch(
                        "corpus", self._data_params(), build
                    )
                else:
                    self._corpus = build()
            telemetry.info(
                "context.corpus_built", n_examples=self.n_examples,
                seed=self.seed,
            )
        return self._corpus

    @property
    def dataset(self) -> LabeledDataset:
        return self.corpus.dataset

    def _split_indices(self) -> tuple[np.ndarray, np.ndarray]:
        labels = [label.value for label in self.dataset.labels]
        index = np.arange(len(self.dataset))
        return train_test_split(
            index, test_size=0.2, random_state=self.seed, stratify=labels
        )

    def _ensure_split(self) -> tuple[LabeledDataset, LabeledDataset]:
        if self._split is None:
            with telemetry.span("context.split", n_examples=len(self.dataset)):
                if self.cache is not None:
                    params = {**self._data_params(), "test_size": 0.2}
                    train_idx, test_idx = self.cache.fetch(
                        "split", params, self._split_indices
                    )
                else:
                    train_idx, test_idx = self._split_indices()
                self._split = (
                    self.dataset.subset(train_idx),
                    self.dataset.subset(test_idx),
                )
        return self._split

    @property
    def train(self) -> LabeledDataset:
        return self._ensure_split()[0]

    @property
    def test(self) -> LabeledDataset:
        return self._ensure_split()[1]

    def _column_lookup(self) -> dict[tuple[str, str], Column]:
        """(file name, column name) → raw Column, built once per context."""
        if self._column_index is None:
            self._column_index = {
                (table.name, column.name): column
                for table in self.corpus.files
                for column in table
            }
        return self._column_index

    def raw_column(self, profile) -> Column:
        """The raw column a profile was featurized from."""
        try:
            return self._column_lookup()[(profile.source_file, profile.name)]
        except KeyError:
            raise KeyError(
                f"no raw column for {profile.source_file}/{profile.name}"
            ) from None

    def raw_columns(self, dataset: LabeledDataset) -> list[Column]:
        by_key = self._column_lookup()
        return [by_key[(p.source_file, p.name)] for p in dataset.profiles]

    # -- models ------------------------------------------------------------------
    def model(self, name: str, feature_set=("stats", "name")) -> TypeInferenceModel:
        """A fitted type-inference model, cached by (name, feature set)."""
        key = f"{name}:{','.join(feature_set)}"
        if key not in self._models:
            with telemetry.span(
                "context.fit", model=name, features=",".join(feature_set),
                n_train=len(self.train),
            ) as sp:
                if self.cache is not None:
                    params = {
                        **self._data_params(),
                        "model": name,
                        "features": list(feature_set),
                        "rf_estimators": self.rf_estimators,
                        "cnn_epochs": self.cnn_epochs,
                        "cnn_dtype": self.cnn_dtype,
                        "knn_name_cap": self.knn_name_cap,
                    }
                    model = self.cache.fetch(
                        "model", params, lambda: self._fit_model(name, feature_set)
                    )
                else:
                    model = self._fit_model(name, feature_set)
            self._models[key] = model
            telemetry.info("context.model_fit", model=key, wall_s=sp.wall_s)
        else:
            telemetry.count("context.model_cache_hits")
        return self._models[key]

    def _fit_model(self, name: str, feature_set) -> TypeInferenceModel:
        """Actually fit a model (the cache-miss path); counted as a fit."""
        model = self._build_model(name, feature_set)
        model.fit(self.train)
        telemetry.count("context.model_fits")
        return model

    def _build_model(self, name: str, feature_set) -> TypeInferenceModel:
        if name == "rf":
            return RandomForestModel(
                n_estimators=self.rf_estimators, feature_set=feature_set,
                random_state=self.seed,
            )
        if name == "logreg":
            return LogRegModel(feature_set=feature_set)
        if name == "svm":
            return SVMModel(feature_set=feature_set)
        if name == "cnn":
            return CNNModel(
                feature_set=feature_set, epochs=self.cnn_epochs,
                random_state=self.seed, dtype=self.cnn_dtype,
            )
        if name == "knn":
            return KNNModel(name_cap=self.knn_name_cap)
        raise ValueError(f"unknown model name: {name!r}")

    @property
    def our_rf(self) -> TypeInferenceModel:
        """The paper's best model ("OurRF"): RF on stats + name bigrams."""
        return self.model("rf", ("stats", "name"))

    # -- tools ------------------------------------------------------------------
    def tools(self) -> dict[str, object]:
        """Fresh instances of the four industrial tools + rule baseline."""
        return {
            "tfdv": TFDVTool(),
            "pandas": PandasTool(),
            "transmogrifai": TransmogrifAITool(),
            "autogluon": AutoGluonTool(),
            "rules": RuleBaselineTool(),
        }

    @property
    def sherlock(self) -> SherlockTool:
        if self._sherlock is None:
            self._sherlock = SherlockTool()
        return self._sherlock

    # -- predictions ---------------------------------------------------------
    def tool_predictions(
        self, dataset: LabeledDataset
    ) -> dict[str, list[FeatureType]]:
        """Predictions of every rule/syntax tool + Sherlock on a dataset."""
        columns = self.raw_columns(dataset)
        out: dict[str, list[FeatureType]] = {}
        for name, tool in self.tools().items():
            with telemetry.span(
                "context.tool_predict", tool=name, n_columns=len(columns)
            ):
                out[name] = [tool.infer_column(column) for column in columns]
        with telemetry.span(
            "context.tool_predict", tool="sherlock",
            n_columns=len(dataset.profiles),
        ):
            out["sherlock"] = self.sherlock.infer_profiles(dataset.profiles)
        return out
