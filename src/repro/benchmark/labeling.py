"""Experiment E16 — Section 2.4 / Appendix C: labeling-process simulations.

(1) The bootstrap: train a Random Forest on 500 seed labels, measure its
5-fold CV accuracy (the paper saw ~74%), and use it to group the remaining
unlabeled examples by predicted class — the cognitive-load reduction trick.

(2) The crowdsourcing trial: simulate noisy annotators on a 5-class
collapsed vocabulary and measure label agreement / majority-vote quality,
mirroring why the FigureEight effort was abandoned.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.core.feature_sets import FeatureSetBuilder
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_val_score
from repro.types import FeatureType

#: Appendix C's collapsed 5-class crowdsourcing vocabulary.
CROWD_CLASSES = {
    FeatureType.NUMERIC: "Numeric",
    FeatureType.CATEGORICAL: "Categorical",
    FeatureType.DATETIME: "Needs-Extraction",
    FeatureType.SENTENCE: "Needs-Extraction",
    FeatureType.URL: "Needs-Extraction",
    FeatureType.EMBEDDED_NUMBER: "Needs-Extraction",
    FeatureType.LIST: "Needs-Extraction",
    FeatureType.NOT_GENERALIZABLE: "Not-Generalizable",
    FeatureType.CONTEXT_SPECIFIC: "Context-Specific",
}


@dataclass(frozen=True)
class BootstrapResult:
    seed_size: int
    cv_accuracy: float
    group_sizes: dict[str, int]  # predicted-class group sizes over the rest


def run_labeling_bootstrap(
    context: BenchmarkContext, seed_size: int = 500
) -> BootstrapResult:
    dataset = context.dataset
    seed_size = min(seed_size, len(dataset) // 2)
    rng = np.random.default_rng(context.seed)
    order = rng.permutation(len(dataset))
    seed_idx = order[:seed_size]
    rest_idx = order[seed_size:]

    builder = FeatureSetBuilder(parts=("stats", "name"))
    seed_split = dataset.subset(seed_idx)
    X_seed = builder.transform(seed_split.profiles)
    y_seed = [label.value for label in seed_split.labels]

    forest = RandomForestClassifier(n_estimators=100, max_depth=25,
                                    random_state=context.seed)
    cv_accuracy = float(
        np.mean(cross_val_score(forest, X_seed, y_seed, cv=5,
                                random_state=context.seed))
    )

    forest.fit(X_seed, y_seed)
    rest = dataset.subset(rest_idx)
    predictions = forest.predict(builder.transform(rest.profiles))
    group_sizes = dict(Counter(predictions))
    return BootstrapResult(
        seed_size=seed_size, cv_accuracy=cv_accuracy, group_sizes=group_sizes
    )


@dataclass(frozen=True)
class CrowdsourcingResult:
    n_workers: int
    worker_accuracy: float
    majority_vote_accuracy: float
    pct_examples_with_3plus_labels: float


def run_crowdsourcing_simulation(
    context: BenchmarkContext,
    n_workers: int = 5,
    worker_accuracy: float = 0.55,
    n_examples: int = 400,
) -> CrowdsourcingResult:
    """Noisy annotators over the collapsed 5-class vocabulary."""
    dataset = context.dataset
    rng = np.random.default_rng(context.seed + 99)
    index = rng.choice(len(dataset), size=min(n_examples, len(dataset)),
                       replace=False)
    truth = [CROWD_CLASSES[dataset.profiles[int(i)].label] for i in index]
    vocabulary = sorted(set(CROWD_CLASSES.values()))

    majority_correct = 0
    many_labels = 0
    for true_label in truth:
        votes = []
        for _worker in range(n_workers):
            if rng.random() < worker_accuracy:
                votes.append(true_label)
            else:
                votes.append(vocabulary[int(rng.integers(len(vocabulary)))])
        counts = Counter(votes)
        if len(counts) >= 3:
            many_labels += 1
        if counts.most_common(1)[0][0] == true_label:
            majority_correct += 1
    return CrowdsourcingResult(
        n_workers=n_workers,
        worker_accuracy=worker_accuracy,
        majority_vote_accuracy=majority_correct / len(truth),
        pct_examples_with_3plus_labels=many_labels / len(truth),
    )
