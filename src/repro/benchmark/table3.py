"""Experiment E3 — Table 3 / Section 4.4: error analysis of the best RF.

Lists the held-out test columns the Random Forest gets wrong, with the
signals a human would inspect (sample value, totals, %distinct, %NaN), and
aggregates the confusion patterns the paper narrates (Numeric vs
Context-Specific integers, Categorical vs Sentence, ...).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.types import FeatureType


@dataclass(frozen=True)
class ErrorExample:
    """One misclassified column, in Table 3's layout."""

    attribute_name: str
    sample_value: str
    total_values: int
    pct_distinct: float
    pct_nans: float
    label: FeatureType
    prediction: FeatureType


@dataclass
class Table3Result:
    examples: list[ErrorExample]
    confusion_pairs: Counter  # (label, prediction) -> count
    test_size: int

    @property
    def error_rate(self) -> float:
        return len(self.examples) / self.test_size if self.test_size else 0.0


def run_table3(context: BenchmarkContext, max_examples: int = 50) -> Table3Result:
    """Collect the RF's held-out errors with their inspection signals."""
    test = context.test
    predictions = context.our_rf.predict(test.profiles)
    examples = []
    pairs: Counter = Counter()
    for profile, prediction in zip(test.profiles, predictions):
        if prediction == profile.label:
            continue
        pairs[(profile.label, prediction)] += 1
        examples.append(
            ErrorExample(
                attribute_name=profile.name,
                sample_value=profile.sample(0),
                total_values=int(profile.stats["total_values"]),
                pct_distinct=100.0 * profile.stats["pct_distinct"],
                pct_nans=100.0 * profile.stats["pct_nans"],
                label=profile.label,
                prediction=prediction,
            )
        )
    examples.sort(key=lambda e: (e.label.value, e.prediction.value))
    return Table3Result(
        examples=examples[:max_examples],
        confusion_pairs=pairs,
        test_size=len(test),
    )


def run_datatype_confusion(context: BenchmarkContext) -> dict:
    """Predicted feature type × raw syntactic datatype counts (§4.4).

    The paper's appendix crosses OurRF's predictions with the raw datatype
    of the column values — e.g. showing that misclassified Numerics are
    mostly integers, not floats.  Returns ``{(feature type, syntactic type):
    count}`` over the held-out test set.
    """
    from repro.tabular.dtypes import column_syntactic_type

    test = context.test
    predictions = context.our_rf.predict(test.profiles)
    columns = context.raw_columns(test)
    counts: Counter = Counter()
    for prediction, column in zip(predictions, columns):
        syntactic = column_syntactic_type(list(column.cells))
        counts[(prediction, syntactic)] += 1
    return dict(counts)


def render_datatype_confusion(counts: dict) -> str:
    """Render the prediction × raw-datatype cross table."""
    from repro.tabular.dtypes import SyntacticType

    syntactic_order = list(SyntacticType)
    rows = []
    for feature_type in FeatureType:
        row: list[object] = [feature_type.short]
        total = 0
        for syntactic in syntactic_order:
            count = counts.get((feature_type, syntactic), 0)
            row.append(count)
            total += count
        if total:
            rows.append(row)
    return format_table(
        ["predicted \\ raw dtype", *[s.value for s in syntactic_order]],
        rows,
        title="\n== Predicted feature type vs raw syntactic datatype ==",
    )


def render_table3(result: Table3Result) -> str:
    rows = [
        [
            e.attribute_name,
            e.sample_value[:24],
            e.total_values,
            f"{e.pct_distinct:.2f}",
            f"{e.pct_nans:.1f}",
            e.label.short,
            e.prediction.short,
        ]
        for e in result.examples
    ]
    table = format_table(
        ["Attribute Name", "Sample Value", "Total", "%Distinct", "%NaNs",
         "Label", "RF Prediction"],
        rows,
        title="\n== Errors made by RandomForest (held-out test) ==",
    )
    pair_rows = [
        [label.short, prediction.short, count]
        for (label, prediction), count in result.confusion_pairs.most_common(12)
    ]
    pair_table = format_table(
        ["Label", "Predicted", "Count"],
        pair_rows,
        title="\n== Most common confusion pairs ==",
    )
    return f"{table}\n{pair_table}\nerror rate: {result.error_rate:.3f}"
