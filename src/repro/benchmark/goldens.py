"""Golden-prediction regression gate over the canonical corpus.

``repro-bench goldens record`` freezes the per-column predictions of every
model on the canonical corpus into a committed JSON file;
``repro-bench goldens check`` re-runs the models and fails on unexplained
drift.  This converts the ad-hoc "byte-identical output" claims each perf
PR re-proves into a standing, cheap gate — and it is the precondition for
aggressive kernel refactors (float32 CharCNN, banded Levenshtein) where
tiny numeric drift must be *seen and triaged*, not discovered downstream.

Drift is scored two ways:

* **exact match** — the fraction of columns whose prediction is unchanged;
  float64 kernels and the banded k-NN path are expected to stay at 1.0.
* **confusion-aware similarity** — deliberate numeric relaxations (float32)
  may legitimately flip a handful of near-tie columns.  Each drifted column
  scores the *affinity* of the (golden, new) class pair under the model's
  recorded confusion matrix: pairs the model already confuses against the
  ground truth are "nearby" (a CA↔NU flip on an integer categorical), while
  drift between classes the model never confused scores 0.  The per-model
  similarity score is the mean over columns (exact columns score 1), and
  the check fails when it dips under the budget (``--similarity-floor``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.benchmark.context import BenchmarkContext
from repro.obs import telemetry

GOLDEN_SCHEMA_VERSION = 1

#: Every model family the paper trains on the corpus.
DEFAULT_MODELS = ("rf", "logreg", "svm", "cnn", "knn")

#: Default committed-goldens location for a given corpus address.
GOLDENS_DIR = "benchmarks/goldens"


def default_golden_path(n_examples: int, seed: int) -> str:
    return os.path.join(GOLDENS_DIR, f"corpus-s{n_examples}-seed{seed}.json")


class GoldenMismatchError(RuntimeError):
    """Raised when a golden file cannot be compared to the requested run."""


def _confusion(truths: list[str], predictions: list[str]) -> dict[str, dict[str, int]]:
    counts: dict[str, dict[str, int]] = {}
    for truth, pred in zip(truths, predictions):
        row = counts.setdefault(truth, {})
        row[pred] = row.get(pred, 0) + 1
    return counts


def class_affinity(confusion: dict[str, dict[str, int]], a: str, b: str) -> float:
    """How interchangeable classes ``a`` and ``b`` are under a confusion
    matrix: the fraction of their combined mass the model already mixes.

    1.0 would mean the model never separates them; 0.0 means it never
    confuses one for the other (so drift between them is suspicious).
    """
    if a == b:
        return 1.0
    ab = confusion.get(a, {}).get(b, 0)
    ba = confusion.get(b, {}).get(a, 0)
    aa = confusion.get(a, {}).get(a, 0)
    bb = confusion.get(b, {}).get(b, 0)
    total = ab + ba + aa + bb
    if total == 0:
        return 0.0
    return (ab + ba) / total


def record_goldens(
    context: BenchmarkContext, models: tuple[str, ...] = DEFAULT_MODELS
) -> dict:
    """Predictions of every model on every column of the canonical corpus.

    Models are fit on the canonical 80:20 train split (the context's usual
    protocol) and predict the *whole* corpus, so the gate covers train and
    test columns alike.  The recorded confusion matrix (vs ground truth)
    is what ``check`` later uses to score drift affinity.
    """
    profiles = context.dataset.profiles
    truths = [label.value for label in context.dataset.labels]
    payload: dict = {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "corpus": {"n_examples": context.n_examples, "seed": context.seed},
        "columns": [
            {"file": p.source_file, "column": p.name, "truth": truth}
            for p, truth in zip(profiles, truths)
        ],
        "models": {},
    }
    for name in models:
        with telemetry.span(
            "goldens.record", model=name, n_columns=len(profiles)
        ):
            model = context.model(name)
            predictions = [p.value for p in model.predict(profiles)]
        n_correct = sum(p == t for p, t in zip(predictions, truths))
        payload["models"][name] = {
            "predictions": predictions,
            "accuracy": n_correct / len(truths),
            "confusion": _confusion(truths, predictions),
        }
    return payload


def write_goldens(path: str, payload: dict) -> None:
    """Deterministic, diff-friendly JSON (sorted keys, trailing newline)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_goldens(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise GoldenMismatchError(f"cannot read goldens {path!r}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema_version") != GOLDEN_SCHEMA_VERSION
    ):
        raise GoldenMismatchError(
            f"{path!r} is not a schema-v{GOLDEN_SCHEMA_VERSION} goldens file"
        )
    return payload


@dataclass
class DriftedColumn:
    file: str
    column: str
    golden: str
    new: str
    truth: str
    affinity: float

    def describe(self) -> str:
        return (
            f"{self.file}/{self.column}: golden {self.golden!r} -> new "
            f"{self.new!r} (truth {self.truth!r}, affinity {self.affinity:.3f})"
        )


@dataclass
class ModelCheck:
    model: str
    n_columns: int
    n_exact: int
    similarity: float
    accuracy_golden: float
    accuracy_new: float
    drifted: list[DriftedColumn] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return self.n_exact == self.n_columns


@dataclass
class GoldenCheckReport:
    path: str
    corpus: dict
    models: list[ModelCheck]
    similarity_floor: float
    strict: bool

    @property
    def failures(self) -> list[ModelCheck]:
        out = []
        for check in self.models:
            if check.similarity < self.similarity_floor:
                out.append(check)
            elif self.strict and not check.exact:
                out.append(check)
        return out

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"golden check vs {self.path} "
            f"(corpus n={self.corpus['n_examples']} seed={self.corpus['seed']}, "
            f"{len(self.models)} model(s), similarity floor "
            f"{self.similarity_floor:.4f}"
            + (", strict)" if self.strict else ")")
        ]
        for check in self.models:
            failed = check in self.failures
            status = "FAIL" if failed else ("OK" if check.exact else "DRIFT-OK")
            lines.append(
                f"  {check.model:<8} {check.n_exact}/{check.n_columns} exact  "
                f"similarity {check.similarity:.4f}  "
                f"accuracy {check.accuracy_golden:.4f} -> "
                f"{check.accuracy_new:.4f}  {status}"
            )
            for drift in check.drifted:
                lines.append(f"    {drift.describe()}")
        if self.ok:
            lines.append("goldens: PASS")
        else:
            names = ", ".join(c.model for c in self.failures)
            lines.append(f"goldens: FAIL ({names})")
        return "\n".join(lines)


def check_goldens(
    context: BenchmarkContext,
    golden: dict,
    models: tuple[str, ...] | None = None,
    similarity_floor: float = 0.995,
    strict: bool = False,
    path: str = "<goldens>",
) -> GoldenCheckReport:
    """Re-run the recorded models and diff their predictions per column."""
    recorded_corpus = golden.get("corpus", {})
    requested = {"n_examples": context.n_examples, "seed": context.seed}
    if recorded_corpus != requested:
        raise GoldenMismatchError(
            f"goldens were recorded on corpus {recorded_corpus}, "
            f"but the check is running on {requested}"
        )
    available = golden.get("models", {})
    names = tuple(models) if models is not None else tuple(sorted(available))
    missing = [name for name in names if name not in available]
    if missing:
        raise GoldenMismatchError(
            f"goldens have no recording for model(s): {', '.join(missing)}"
        )
    profiles = context.dataset.profiles
    columns = golden["columns"]
    if len(columns) != len(profiles):
        raise GoldenMismatchError(
            f"goldens cover {len(columns)} columns but the corpus "
            f"has {len(profiles)}"
        )
    for record, profile in zip(columns, profiles):
        if record["file"] != profile.source_file or record["column"] != profile.name:
            raise GoldenMismatchError(
                f"column order mismatch at {record['file']}/{record['column']} "
                f"vs {profile.source_file}/{profile.name}"
            )
    truths = [label.value for label in context.dataset.labels]
    checks = []
    for name in names:
        recorded = available[name]
        with telemetry.span(
            "goldens.check", model=name, n_columns=len(profiles)
        ):
            model = context.model(name)
            predictions = [p.value for p in model.predict(profiles)]
        confusion = recorded["confusion"]
        drifted = []
        similarity_sum = 0.0
        for record, golden_pred, new_pred, truth in zip(
            columns, recorded["predictions"], predictions, truths
        ):
            if golden_pred == new_pred:
                similarity_sum += 1.0
                continue
            affinity = class_affinity(confusion, golden_pred, new_pred)
            similarity_sum += affinity
            drifted.append(
                DriftedColumn(
                    file=record["file"], column=record["column"],
                    golden=golden_pred, new=new_pred, truth=truth,
                    affinity=affinity,
                )
            )
        n_correct = sum(p == t for p, t in zip(predictions, truths))
        checks.append(
            ModelCheck(
                model=name,
                n_columns=len(profiles),
                n_exact=len(profiles) - len(drifted),
                similarity=similarity_sum / len(profiles),
                accuracy_golden=recorded["accuracy"],
                accuracy_new=n_correct / len(truths),
                drifted=drifted,
            )
        )
        telemetry.count("goldens.drifted_columns", len(drifted))
    return GoldenCheckReport(
        path=path,
        corpus=recorded_corpus,
        models=checks,
        similarity_floor=similarity_floor,
        strict=strict,
    )
