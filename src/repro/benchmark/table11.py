"""Experiment E7 — Table 11: extending the vocabulary with semantic types.

Adds a tenth class (*Country* or *State*) to the label vocabulary: relabels
the corpus's matching Categorical examples, augments train/test with weakly
labeled examples from the (simulated) Sherlock data repository, retrains the
Random Forest on (X_stats, X2_sample1), and reports the new class's
precision / recall / F1 / binarized accuracy alongside 10-class accuracy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.feature_sets import FeatureSetBuilder
from repro.core.featurize import ColumnProfile, LabeledDataset
from repro.datagen import lexicon
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score, binarized_metrics
from repro.tools.sherlock.generator import sample_columns_of_type
from repro.types import FeatureType


class ExtendedType(enum.Enum):
    """The tenth classes of the Table 11 experiment."""

    COUNTRY = "Country"
    STATE = "State"


_DOMAINS = {
    ExtendedType.COUNTRY: frozenset(lexicon.COUNTRIES),
    ExtendedType.STATE: frozenset(lexicon.US_STATES) | frozenset(lexicon.STATE_CODES),
}

_SHERLOCK_TYPE = {
    ExtendedType.COUNTRY: "country",
    ExtendedType.STATE: "state",
}


@dataclass(frozen=True)
class Table11Row:
    extended_type: ExtendedType
    n_extra_train: int
    ten_class_accuracy: float
    precision: float
    recall: float
    f1: float
    binarized_accuracy: float
    n_train_examples: int
    n_test_examples: int


def _is_extended(profile: ColumnProfile, domain: frozenset[str]) -> bool:
    samples = [s for s in profile.samples if s]
    return bool(samples) and all(s in domain for s in samples)


def _labels_with_extension(
    dataset: LabeledDataset, extended: ExtendedType
) -> list[str]:
    """Relabel matching Categorical examples to the tenth class."""
    domain = _DOMAINS[extended]
    out = []
    for profile in dataset.profiles:
        if profile.label is FeatureType.CATEGORICAL and _is_extended(
            profile, domain
        ):
            out.append(extended.value)
        else:
            out.append(profile.label.value)
    return out


def run_table11(
    context: BenchmarkContext,
    extra_train_counts: tuple[int, ...] = (100, 200),
    extra_test: int = 100,
) -> list[Table11Row]:
    rows = []
    builder_parts = ("stats", "sample1")
    for extended in ExtendedType:
        sherlock_name = _SHERLOCK_TYPE[extended]
        test_extra = sample_columns_of_type(
            sherlock_name, extra_test, seed=context.seed + 1
        )
        test_profiles = list(context.test.profiles) + test_extra
        test_labels = _labels_with_extension(context.test, extended)
        test_labels += [extended.value] * len(test_extra)

        for n_extra in extra_train_counts:
            train_extra = sample_columns_of_type(
                sherlock_name, n_extra, seed=context.seed + 2
            )
            train_profiles = list(context.train.profiles) + train_extra
            train_labels = _labels_with_extension(context.train, extended)
            train_labels += [extended.value] * len(train_extra)

            builder = FeatureSetBuilder(parts=builder_parts)
            X_train = builder.transform(train_profiles)
            X_test = builder.transform(test_profiles)
            forest = RandomForestClassifier(
                n_estimators=context.rf_estimators,
                max_depth=25,
                random_state=context.seed,
            )
            forest.fit(X_train, train_labels)
            predictions = forest.predict(X_test)

            metrics = binarized_metrics(test_labels, predictions, extended.value)
            rows.append(
                Table11Row(
                    extended_type=extended,
                    n_extra_train=n_extra,
                    ten_class_accuracy=accuracy_score(test_labels, predictions),
                    precision=metrics.precision,
                    recall=metrics.recall,
                    f1=metrics.f1,
                    binarized_accuracy=metrics.accuracy,
                    n_train_examples=train_labels.count(extended.value),
                    n_test_examples=test_labels.count(extended.value),
                )
            )
    return rows


def render_table11(rows: list[Table11Row]) -> str:
    body = [
        [
            row.extended_type.value,
            f"N={row.n_extra_train}",
            row.ten_class_accuracy,
            row.precision,
            row.recall,
            row.f1,
            row.binarized_accuracy,
            row.n_train_examples,
            row.n_test_examples,
        ]
        for row in rows
    ]
    return format_table(
        ["type", "extra labels", "10-class acc", "precision", "recall", "F1",
         "binarized acc", "#train", "#test"],
        body,
        title="\n== Table 11: vocabulary extension with Country / State ==",
    )
