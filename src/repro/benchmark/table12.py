"""Experiment E8 — Table 12: ablation of the type-specific stats features.

Drops the three custom boolean probes (list / URL / datetime checks) from
X_stats one at a time, retrains Logistic Regression and Random Forest on
[X_stats, X2_name, X2_sample1], and reports 9-class accuracy plus
precision/recall/F1 of the three affected classes.  The paper finds the
drops marginal — evidence the featurization is robust.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.models import LogRegModel, RandomForestModel
from repro.core.stats import (
    DATETIME_FEATURE_INDEX,
    LIST_FEATURE_INDEX,
    URL_FEATURE_INDEX,
)
from repro.ml.metrics import binarized_metrics
from repro.types import FeatureType

#: The ablation variants: full feature set, then minus each custom probe.
ABLATIONS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("full", ()),
    ("minus list feature", (LIST_FEATURE_INDEX,)),
    ("minus url feature", (URL_FEATURE_INDEX,)),
    ("minus datetime feature", (DATETIME_FEATURE_INDEX,)),
)

_TRACKED_CLASSES = (FeatureType.DATETIME, FeatureType.URL, FeatureType.LIST)

_FEATURE_SET = ("stats", "name", "sample1")


@dataclass(frozen=True)
class Table12Row:
    model: str
    ablation: str
    nine_class_accuracy: float
    class_f1: dict[FeatureType, float]
    class_precision: dict[FeatureType, float]
    class_recall: dict[FeatureType, float]


def run_table12(context: BenchmarkContext) -> list[Table12Row]:
    rows = []
    for model_name in ("logreg", "rf"):
        for ablation_name, dropped in ABLATIONS:
            if model_name == "logreg":
                model = LogRegModel(
                    feature_set=_FEATURE_SET, drop_stat_indices=dropped
                )
            else:
                model = RandomForestModel(
                    n_estimators=context.rf_estimators,
                    feature_set=_FEATURE_SET,
                    drop_stat_indices=dropped,
                    random_state=context.seed,
                )
            model.fit(context.train)
            predictions = model.predict(context.test.profiles)
            truth = context.test.labels
            f1, precision, recall = {}, {}, {}
            for feature_type in _TRACKED_CLASSES:
                metrics = binarized_metrics(truth, predictions, feature_type)
                f1[feature_type] = metrics.f1
                precision[feature_type] = metrics.precision
                recall[feature_type] = metrics.recall
            accuracy = sum(
                1 for p, t in zip(predictions, truth) if p == t
            ) / len(truth)
            rows.append(
                Table12Row(
                    model=model_name,
                    ablation=ablation_name,
                    nine_class_accuracy=accuracy,
                    class_f1=f1,
                    class_precision=precision,
                    class_recall=recall,
                )
            )
    return rows


def render_table12(rows: list[Table12Row]) -> str:
    body = []
    for row in rows:
        body.append(
            [
                row.model,
                row.ablation,
                row.nine_class_accuracy,
                row.class_precision[FeatureType.DATETIME],
                row.class_recall[FeatureType.DATETIME],
                row.class_precision[FeatureType.URL],
                row.class_recall[FeatureType.URL],
                row.class_precision[FeatureType.LIST],
                row.class_recall[FeatureType.LIST],
            ]
        )
    return format_table(
        ["model", "ablation", "9-class acc", "DT prec", "DT rec",
         "URL prec", "URL rec", "LST prec", "LST rec"],
        body,
        title="\n== Table 12: ablation of type-specific stats features ==",
    )
