"""Experiment — Tables 13/14 (Appendix I.4 Part C): Sherlock complementarity.

Shows that Sherlock can be layered on top of our feature-type model to
recover fine-grained semantic types: take the test columns whose true
semantic type is unambiguous (Country / State / Gender), check how many our
Random Forest calls Categorical, and measure Sherlock's semantic-type recall
both standalone and gated behind OurRF's Categorical predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.featurize import ColumnProfile
from repro.datagen import lexicon
from repro.tools.sherlock.generator import sample_columns_of_type
from repro.types import FeatureType

#: The semantic types whose ground truth we can identify unambiguously.
TABLE14_TYPES = ("country", "state", "gender")

_DOMAINS = {
    "country": frozenset(lexicon.COUNTRIES),
    "state": frozenset(lexicon.US_STATES) | frozenset(lexicon.STATE_CODES),
    "gender": frozenset({"Male", "Female", "M", "F"}),
}


@dataclass(frozen=True)
class Table14Row:
    semantic_type: str
    n_examples: int
    sherlock_standalone_correct: int
    ourrf_categorical: int
    sherlock_given_categorical_correct: int

    @property
    def standalone_recall(self) -> float:
        return (
            self.sherlock_standalone_correct / self.n_examples
            if self.n_examples
            else 0.0
        )

    @property
    def gated_recall(self) -> float:
        return (
            self.sherlock_given_categorical_correct / self.n_examples
            if self.n_examples
            else 0.0
        )


def _test_examples(
    context: BenchmarkContext, semantic_type: str, minimum: int = 12
) -> list[ColumnProfile]:
    """Held-out columns of this semantic type; padded from Sherlock data."""
    domain = _DOMAINS[semantic_type]
    found = [
        profile
        for profile in context.test.profiles
        if profile.label is FeatureType.CATEGORICAL
        and profile.samples
        and all(s in domain for s in profile.samples)
    ]
    if len(found) < minimum:
        found = found + sample_columns_of_type(
            semantic_type, minimum - len(found), seed=context.seed + 5
        )
    return found


def run_table14(context: BenchmarkContext) -> list[Table14Row]:
    sherlock = context.sherlock
    our_rf = context.our_rf
    rows = []
    for semantic_type in TABLE14_TYPES:
        profiles = _test_examples(context, semantic_type)
        semantic_predictions = sherlock.model.predict(profiles)
        standalone = sum(
            1 for p in semantic_predictions if p == semantic_type
        )
        rf_predictions = our_rf.predict(profiles)
        categorical_mask = [
            p is FeatureType.CATEGORICAL for p in rf_predictions
        ]
        gated = sum(
            1
            for semantic, is_cat in zip(semantic_predictions, categorical_mask)
            if is_cat and semantic == semantic_type
        )
        rows.append(
            Table14Row(
                semantic_type=semantic_type,
                n_examples=len(profiles),
                sherlock_standalone_correct=standalone,
                ourrf_categorical=sum(categorical_mask),
                sherlock_given_categorical_correct=gated,
            )
        )
    return rows


def render_table14(rows: list[Table14Row]) -> str:
    body = [
        [
            row.semantic_type,
            row.n_examples,
            row.sherlock_standalone_correct,
            f"{100 * row.standalone_recall:.1f}%",
            row.ourrf_categorical,
            row.sherlock_given_categorical_correct,
            f"{100 * row.gated_recall:.1f}%",
        ]
        for row in rows
    ]
    return format_table(
        ["semantic type", "#examples", "sherlock correct", "recall",
         "OurRF said CA", "correct given CA", "gated recall"],
        body,
        title="\n== Table 14: Sherlock on top of OurRF's Categorical calls ==",
    )
