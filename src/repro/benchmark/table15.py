"""Experiment E9 — Table 15: double representation of integer columns.

Routes integer columns to BOTH numeric and one-hot representations — for
the tools unconditionally, for NewRF only when the type-inference confidence
falls below the 0.4 threshold — and compares against truth and the
exclusive-representation baselines on the classification datasets.

Sharding: the experiment decomposes per dataset
(:class:`Table15Shards`) — each shard generates its dataset, evaluates
every approach under both downstream models (all evaluations seed their
RNGs locally, so the cells are order-independent), and
:func:`merge_table15` folds the per-dataset score maps back into the
table rows.  ``run_table15`` runs the same shard/merge code serially, so
sharded and serial output are identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.benchmark.sharding import Shardable
from repro.core.featurize import profile_table
from repro.core.newrf import NewRF, Representation
from repro.datagen.downstream import DOWNSTREAM_SPECS, make_dataset
from repro.downstream.featurize import TypeAssignment
from repro.downstream.harness import evaluate_assignment
from repro.downstream.suite import tool_assignments, truth_assignments
from repro.tabular.dtypes import is_integer_literal
from repro.tools import AutoGluonTool, PandasTool, TFDVTool
from repro.types import FeatureType


def _is_integer_column(column) -> bool:
    sample = column.head_distinct(5)
    return bool(sample) and all(is_integer_literal(s) for s in sample)


def doubled_tool_assignments(dataset, tool) -> TypeAssignment:
    """Tool assignment with every integer column double-represented."""
    base = tool_assignments(dataset, tool)
    out: TypeAssignment = {}
    for name, feature_type in base.items():
        if feature_type in (
            FeatureType.NUMERIC,
            FeatureType.CATEGORICAL,
        ) and _is_integer_column(dataset.table[name]):
            out[name] = Representation(feature_type, double=True)
        else:
            out[name] = feature_type
    return out


def newrf_assignments(dataset, newrf: NewRF) -> TypeAssignment:
    profiles = profile_table(dataset.table)
    representations = newrf.predict(profiles)
    return {p.name: rep for p, rep in zip(profiles, representations)}


@dataclass(frozen=True)
class Table15Row:
    approach: str
    model_kind: str
    underperform_truth: int
    underperform_exclusive_baseline: int
    outperform_exclusive_baseline: int
    best_tool_count: int


#: Tool column order is load-bearing: it fixes the approach row order.
TABLE15_TOOLS = ("pandas", "tfdv", "autogluon")


def _make_tools() -> dict:
    return {"pandas": PandasTool(), "tfdv": TFDVTool(), "autogluon": AutoGluonTool()}


def classification_specs(dataset_names: tuple[str, ...] | None = None) -> list:
    """The classification dataset specs, optionally filtered, in suite order.

    The per-dataset generation seed is ``seed + index`` *within this
    filtered list*, so filtering changes the seeds (as it always has).
    """
    specs = [s for s in DOWNSTREAM_SPECS if s.task == "classification"]
    if dataset_names is not None:
        wanted = set(dataset_names)
        specs = [s for s in specs if s.name in wanted]
    return specs


def run_table15_shard(
    context: BenchmarkContext,
    shard_id: str,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """One Table 15 cell: every approach's score on one dataset.

    Returns ``{model_kind: {approach: score}}``.  Every
    ``evaluate_assignment`` call seeds its RNGs locally, so the payload is
    identical whether this runs serially, in a forked worker, or out of
    order relative to its sibling shards.
    """
    specs = classification_specs(dataset_names)
    index = next(
        (i for i, s in enumerate(specs) if s.name == shard_id), None
    )
    if index is None:
        raise ValueError(f"unknown table15 shard {shard_id!r}")
    dataset = make_dataset(specs[index], seed=seed + index)

    tools = _make_tools()
    newrf = NewRF(context.our_rf)
    payload: dict[str, dict[str, float]] = {}
    for model_kind in ("linear", "forest"):
        scores: dict[str, float] = {}
        scores["truth"] = evaluate_assignment(
            dataset, truth_assignments(dataset), model_kind, seed=seed
        ).value
        for name, tool in tools.items():
            scores[f"{name}:exclusive"] = evaluate_assignment(
                dataset, tool_assignments(dataset, tool), model_kind, seed=seed
            ).value
            scores[f"{name}:double"] = evaluate_assignment(
                dataset, doubled_tool_assignments(dataset, tool),
                model_kind, seed=seed,
            ).value
        scores["newrf"] = evaluate_assignment(
            dataset, newrf_assignments(dataset, newrf), model_kind, seed=seed
        ).value
        payload[model_kind] = scores
    return payload


def merge_table15(
    shards: Mapping[str, Mapping[str, Mapping[str, float]]],
    dataset_names: tuple[str, ...] | None = None,
) -> list[Table15Row]:
    """Fold per-dataset shard payloads into the Table 15 rows.

    Pure function of the payload values — iteration follows the canonical
    spec order, never the mapping's insertion order.
    """
    specs = classification_specs(dataset_names)
    names = [s.name for s in specs]
    missing = [n for n in names if n not in shards]
    if missing:
        raise ValueError(f"table15 merge missing shard(s): {missing}")

    rows = []
    for model_kind in ("linear", "forest"):
        scores: dict[str, dict[str, float]] = {}
        for name in names:
            for approach, value in shards[name][model_kind].items():
                scores.setdefault(approach, {})[name] = value

        approaches = [f"{name}:double" for name in TABLE15_TOOLS] + ["newrf"]
        for approach in approaches:
            under_truth = under_base = over_base = best = 0
            baseline_key = (
                approach.replace(":double", ":exclusive")
                if approach != "newrf"
                else None
            )
            for name in names:
                value = scores[approach][name]
                truth_value = scores["truth"][name]
                if value < truth_value - 0.5:
                    under_truth += 1
                if baseline_key is not None:
                    baseline_value = scores[baseline_key][name]
                    if value < baseline_value - 0.5:
                        under_base += 1
                    elif value > baseline_value + 0.5:
                        over_base += 1
                rivals = [scores[a][name] for a in approaches]
                if value >= max(rivals) - 1e-12:
                    best += 1
            rows.append(
                Table15Row(
                    approach=approach,
                    model_kind=model_kind,
                    underperform_truth=under_truth,
                    underperform_exclusive_baseline=under_base,
                    outperform_exclusive_baseline=over_base,
                    best_tool_count=best,
                )
            )
    return rows


def run_table15(
    context: BenchmarkContext,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[Table15Row]:
    """Serial path: every shard in canonical order, then the shared merge."""
    shards = {
        spec.name: run_table15_shard(context, spec.name, dataset_names, seed)
        for spec in classification_specs(dataset_names)
    }
    return merge_table15(shards, dataset_names)


class Table15Shards(Shardable):
    """Shard Table 15 per classification dataset (default runner arguments)."""

    name = "table15"

    def __init__(
        self,
        dataset_names: tuple[str, ...] | None = None,
        seed: int = 0,
    ):
        self.dataset_names = dataset_names
        self.seed = seed

    def shard_ids(self, context: BenchmarkContext) -> list[str]:
        return [s.name for s in classification_specs(self.dataset_names)]

    def run_shard(self, context: BenchmarkContext, shard_id: str):
        return run_table15_shard(
            context, shard_id, self.dataset_names, self.seed
        )

    def merge(self, context: BenchmarkContext, shards: Mapping[str, object]) -> str:
        return render_table15(merge_table15(shards, self.dataset_names))


def render_table15(rows: list[Table15Row]) -> str:
    body = [
        [
            row.model_kind,
            row.approach,
            row.underperform_truth,
            row.underperform_exclusive_baseline,
            row.outperform_exclusive_baseline,
            row.best_tool_count,
        ]
        for row in rows
    ]
    return format_table(
        ["downstream model", "approach", "under truth", "under own baseline",
         "over own baseline", "best tool"],
        body,
        title="\n== Table 15: double representation of integer columns ==",
    )
