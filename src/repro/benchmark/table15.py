"""Experiment E9 — Table 15: double representation of integer columns.

Routes integer columns to BOTH numeric and one-hot representations — for
the tools unconditionally, for NewRF only when the type-inference confidence
falls below the 0.4 threshold — and compares against truth and the
exclusive-representation baselines on the classification datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.featurize import profile_table
from repro.core.newrf import NewRF, Representation
from repro.datagen.downstream import DOWNSTREAM_SPECS, make_dataset
from repro.downstream.featurize import TypeAssignment
from repro.downstream.harness import evaluate_assignment
from repro.downstream.suite import tool_assignments, truth_assignments
from repro.tabular.dtypes import is_integer_literal
from repro.tools import AutoGluonTool, PandasTool, TFDVTool
from repro.types import FeatureType


def _is_integer_column(column) -> bool:
    sample = column.head_distinct(5)
    return bool(sample) and all(is_integer_literal(s) for s in sample)


def doubled_tool_assignments(dataset, tool) -> TypeAssignment:
    """Tool assignment with every integer column double-represented."""
    base = tool_assignments(dataset, tool)
    out: TypeAssignment = {}
    for name, feature_type in base.items():
        if feature_type in (
            FeatureType.NUMERIC,
            FeatureType.CATEGORICAL,
        ) and _is_integer_column(dataset.table[name]):
            out[name] = Representation(feature_type, double=True)
        else:
            out[name] = feature_type
    return out


def newrf_assignments(dataset, newrf: NewRF) -> TypeAssignment:
    profiles = profile_table(dataset.table)
    representations = newrf.predict(profiles)
    return {p.name: rep for p, rep in zip(profiles, representations)}


@dataclass(frozen=True)
class Table15Row:
    approach: str
    model_kind: str
    underperform_truth: int
    underperform_exclusive_baseline: int
    outperform_exclusive_baseline: int
    best_tool_count: int


def run_table15(
    context: BenchmarkContext,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[Table15Row]:
    specs = [s for s in DOWNSTREAM_SPECS if s.task == "classification"]
    if dataset_names is not None:
        wanted = set(dataset_names)
        specs = [s for s in specs if s.name in wanted]
    datasets = [make_dataset(spec, seed=seed + i) for i, spec in enumerate(specs)]

    tools = {"pandas": PandasTool(), "tfdv": TFDVTool(), "autogluon": AutoGluonTool()}
    newrf = NewRF(context.our_rf)

    rows = []
    for model_kind in ("linear", "forest"):
        scores: dict[str, dict[str, float]] = {}
        for dataset in datasets:
            truth_score = evaluate_assignment(
                dataset, truth_assignments(dataset), model_kind, seed=seed
            )
            scores.setdefault("truth", {})[dataset.name] = truth_score.value
            for name, tool in tools.items():
                exclusive = evaluate_assignment(
                    dataset, tool_assignments(dataset, tool), model_kind, seed=seed
                )
                doubled = evaluate_assignment(
                    dataset, doubled_tool_assignments(dataset, tool),
                    model_kind, seed=seed,
                )
                scores.setdefault(f"{name}:exclusive", {})[dataset.name] = (
                    exclusive.value
                )
                scores.setdefault(f"{name}:double", {})[dataset.name] = doubled.value
            newrf_score = evaluate_assignment(
                dataset, newrf_assignments(dataset, newrf), model_kind, seed=seed
            )
            scores.setdefault("newrf", {})[dataset.name] = newrf_score.value

        approaches = [f"{name}:double" for name in tools] + ["newrf"]
        for approach in approaches:
            under_truth = under_base = over_base = best = 0
            baseline_key = (
                approach.replace(":double", ":exclusive")
                if approach != "newrf"
                else None
            )
            for dataset in datasets:
                value = scores[approach][dataset.name]
                truth_value = scores["truth"][dataset.name]
                if value < truth_value - 0.5:
                    under_truth += 1
                if baseline_key is not None:
                    baseline_value = scores[baseline_key][dataset.name]
                    if value < baseline_value - 0.5:
                        under_base += 1
                    elif value > baseline_value + 0.5:
                        over_base += 1
                rivals = [scores[a][dataset.name] for a in approaches]
                if value >= max(rivals) - 1e-12:
                    best += 1
            rows.append(
                Table15Row(
                    approach=approach,
                    model_kind=model_kind,
                    underperform_truth=under_truth,
                    underperform_exclusive_baseline=under_base,
                    outperform_exclusive_baseline=over_base,
                    best_tool_count=best,
                )
            )
    return rows


def render_table15(rows: list[Table15Row]) -> str:
    body = [
        [
            row.model_kind,
            row.approach,
            row.underperform_truth,
            row.underperform_exclusive_baseline,
            row.outperform_exclusive_baseline,
            row.best_tool_count,
        ]
        for row in rows
    ]
    return format_table(
        ["downstream model", "approach", "under truth", "under own baseline",
         "over own baseline", "best tool"],
        body,
        title="\n== Table 15: double representation of integer columns ==",
    )
