"""Experiment E2 — Tables 2 and 9: feature-set ablation of the ML models.

Sweeps the nine feature-set combinations for the classical models and the
CNN, and the two k-NN-compatible sets (stats-only, name-only, stats+name),
reporting train / validation / held-out-test 9-class accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.feature_sets import TABLE2_FEATURE_SETS, feature_set_label
from repro.core.models import KNNModel
from repro.ml.model_selection import train_test_split

#: Models swept over all nine feature sets.
TABLE2_MODELS = ("logreg", "svm", "rf", "cnn")

#: k-NN supports only the distance-compatible sets (paper leaves the rest "-").
KNN_FEATURE_SETS = (("stats",), ("name",), ("stats", "name"))


@dataclass
class Table2Result:
    """accuracy[model][feature-set label] -> {train, validation, test}."""

    accuracy: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def best_feature_set(self, model: str) -> tuple[str, float]:
        cells = self.accuracy[model]
        label = max(cells, key=lambda key: cells[key]["test"])
        return label, cells[label]["test"]


def _knn_for(feature_set: tuple[str, ...]) -> KNNModel:
    return KNNModel(
        use_stats="stats" in feature_set, use_name="name" in feature_set
    )


def run_table2(
    context: BenchmarkContext,
    models: tuple[str, ...] = TABLE2_MODELS,
    feature_sets: tuple[tuple[str, ...], ...] = TABLE2_FEATURE_SETS,
) -> Table2Result:
    """Train every (model, feature set) pair; report train/val/test accuracy."""
    result = Table2Result()
    labels = [label.value for label in context.train.labels]
    index = np.arange(len(context.train))
    fit_idx, val_idx = train_test_split(
        index, test_size=0.25, random_state=context.seed, stratify=labels
    )
    fit_split = context.train.subset(fit_idx)
    val_split = context.train.subset(val_idx)

    for model_name in models:
        result.accuracy[model_name] = {}
        for feature_set in feature_sets:
            model = context._build_model(model_name, feature_set)
            model.fit(fit_split)
            result.accuracy[model_name][feature_set_label(feature_set)] = {
                "train": model.score(fit_split),
                "validation": model.score(val_split),
                "test": model.score(context.test),
            }

    result.accuracy["knn"] = {}
    for feature_set in KNN_FEATURE_SETS:
        model = _knn_for(feature_set)
        model.fit(fit_split)
        result.accuracy["knn"][feature_set_label(feature_set)] = {
            "train": model.score(fit_split),
            "validation": model.score(val_split),
            "test": model.score(context.test),
        }
    return result


def render_table2(result: Table2Result, split: str = "test") -> str:
    """Render one split (Table 2 = test; Table 9 adds train/validation)."""
    feature_labels: list[str] = []
    for model_cells in result.accuracy.values():
        for label in model_cells:
            if label not in feature_labels:
                feature_labels.append(label)
    rows = []
    for model_name, cells in result.accuracy.items():
        row: list[object] = [model_name]
        for label in feature_labels:
            cell = cells.get(label)
            row.append(None if cell is None else cell[split])
        rows.append(row)
    return format_table(
        ["model", *feature_labels],
        rows,
        title=f"\n== 9-class {split} accuracy by feature set ==",
    )
