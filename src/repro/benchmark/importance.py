"""Feature-block importance analysis (paper Section 6.2).

"We found that descriptive stats and attribute names are most useful for
prediction, while raw attribute values have only marginal utility."  We
quantify that with block permutation importance: shuffle all columns of one
feature block (stats / name bigrams / sample bigrams) at once and measure
the held-out accuracy drop of a Random Forest trained on the full set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.feature_sets import FeatureSetBuilder
from repro.core.stats import N_STATS
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score

_FEATURE_SET = ("stats", "name", "sample1")


@dataclass(frozen=True)
class BlockImportance:
    block: str
    baseline_accuracy: float
    permuted_accuracy: float

    @property
    def drop(self) -> float:
        return self.baseline_accuracy - self.permuted_accuracy


def run_block_importance(
    context: BenchmarkContext, n_repeats: int = 3
) -> list[BlockImportance]:
    """Permute each feature block on the test matrix; report accuracy drops."""
    builder = FeatureSetBuilder(parts=_FEATURE_SET)
    X_train = builder.transform(context.train.profiles)
    X_test = builder.transform(context.test.profiles)
    y_train = [label.value for label in context.train.labels]
    y_test = [label.value for label in context.test.labels]

    forest = RandomForestClassifier(
        n_estimators=context.rf_estimators, max_depth=25,
        random_state=context.seed,
    )
    forest.fit(X_train, y_train)
    baseline = accuracy_score(y_test, forest.predict(X_test))

    blocks = {
        "stats": (0, N_STATS),
        "name_bigrams": (N_STATS, N_STATS + builder.hash_dim),
        "sample1_bigrams": (
            N_STATS + builder.hash_dim,
            N_STATS + 2 * builder.hash_dim,
        ),
    }
    rng = np.random.default_rng(context.seed)
    out = []
    for block, (start, stop) in blocks.items():
        accuracies = []
        for _ in range(n_repeats):
            permuted = X_test.copy()
            order = rng.permutation(permuted.shape[0])
            permuted[:, start:stop] = permuted[order, start:stop]
            accuracies.append(
                accuracy_score(y_test, forest.predict(permuted))
            )
        out.append(
            BlockImportance(
                block=block,
                baseline_accuracy=baseline,
                permuted_accuracy=float(np.mean(accuracies)),
            )
        )
    return out


def render_block_importance(rows: list[BlockImportance]) -> str:
    body = [
        [row.block, row.baseline_accuracy, row.permuted_accuracy, row.drop]
        for row in sorted(rows, key=lambda r: -r.drop)
    ]
    return format_table(
        ["feature block", "baseline acc", "permuted acc", "drop"],
        body,
        title="\n== Feature-block permutation importance (RF, stats+name+sample1) ==",
    )
