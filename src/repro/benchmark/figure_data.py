"""Export the paper's figure series as CSV data files.

The benches render ASCII summaries; users who want to re-plot Figures 8, 9,
and 10 with their own tooling can dump the exact (x, y) CDF series here.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.benchmark.datastats import DataStatsResult
from repro.benchmark.downstream_exp import (
    DOWNSTREAM_APPROACHES,
    DownstreamExperimentResult,
)
from repro.benchmark.robustness import RobustnessResult
from repro.types import ALL_FEATURE_TYPES


def _write_series(path: Path, header: list[str], rows) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_figure8(
    result: DownstreamExperimentResult, directory: str | os.PathLike
) -> list[Path]:
    """One CSV per (approach, model kind): drop-vs-truth CDF points."""
    root = Path(directory)
    written = []
    for kind in ("linear", "forest"):
        for approach in DOWNSTREAM_APPROACHES:
            xs, ys = result.delta_cdf(approach, kind)
            path = root / f"figure8_{kind}_{approach}.csv"
            _write_series(
                path,
                ["drop_vs_truth", "cumulative_fraction"],
                zip(xs.tolist(), ys.tolist()),
            )
            written.append(path)
    return written


def export_figure9(
    result: RobustnessResult, directory: str | os.PathLike
) -> list[Path]:
    """One CSV per model: prediction-stability CDF points."""
    root = Path(directory)
    written = []
    for model in result.stability:
        xs, ys = result.cdf(model)
        path = root / f"figure9_{model}.csv"
        _write_series(
            path,
            ["pct_predictions_unchanged", "cumulative_fraction"],
            zip(xs.tolist(), ys.tolist()),
        )
        written.append(path)
    return written


def export_figure10(
    result: DataStatsResult, directory: str | os.PathLike
) -> list[Path]:
    """One CSV per descriptive stat: per-class CDF curves, long format."""
    root = Path(directory)
    written = []
    stats = next(iter(result.values.values())).keys()
    for stat in stats:
        rows = []
        for feature_type in ALL_FEATURE_TYPES:
            xs, ys = result.cdf(feature_type, stat)
            rows.extend(
                (feature_type.value, float(x), float(y))
                for x, y in zip(xs, ys)
            )
        path = root / f"figure10_{stat}.csv"
        _write_series(path, ["class", stat, "cumulative_fraction"], rows)
        written.append(path)
    return written
