"""Experiments E4/E5/E14 — Tables 4, 5 and Figure 8: the downstream suite.

Builds the 30 downstream datasets, infers types with Pandas / TFDV /
AutoGluon / OurRF, trains linear and forest downstream models under each
assignment, and reports per-dataset deltas vs the true types (Table 5),
the coverage/accuracy and under/match/outperform summaries (Table 4), and
the CDFs of performance deltas (Figure 8).

Sharding: the suite decomposes per dataset (:class:`DownstreamShards`) —
each shard generates one dataset, infers every approach's assignment once
(reused for both scoring and the Table 4A coverage/accuracy counts, where
the monolithic path used to infer twice), and evaluates both downstream
models.  :func:`merge_downstream` rebuilds the
:class:`DownstreamExperimentResult` from the per-dataset payloads in
canonical suite order, so sharded output is byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.benchmark.sharding import Shardable
from repro.datagen.downstream import DOWNSTREAM_SPECS, DownstreamDataset, make_dataset
from repro.downstream.harness import FOREST, LINEAR, evaluate_assignment
from repro.downstream.suite import (
    InferenceAccuracy,
    SuiteResult,
    TruthComparison,
    compare_to_truth,
    model_assignments,
    tool_assignments,
    truth_assignments,
)
from repro.tools import AutoGluonTool, PandasTool, TFDVTool

#: Table 4/5 approaches, in paper order (plus truth).
DOWNSTREAM_APPROACHES = ("pandas", "tfdv", "autogluon", "ourrf")


@dataclass
class DownstreamExperimentResult:
    suite: SuiteResult
    inference: list[InferenceAccuracy]
    comparisons: dict[str, list[TruthComparison]]  # by model kind
    datasets: list[DownstreamDataset] = field(default_factory=list)

    def deltas_vs_truth(self, approach: str, model_kind: str) -> np.ndarray:
        """Signed deltas vs truth across datasets (Figure 8's raw series)."""
        truth_scores = self.suite.scores["truth"][model_kind]
        return np.array(
            [
                self.suite.delta_vs_truth(approach, model_kind, name)
                for name in truth_scores
            ]
        )

    def delta_cdf(
        self, approach: str, model_kind: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sorted drop magnitudes, cumulative fraction) — Figure 8."""
        drops = np.maximum(0.0, -self.deltas_vs_truth(approach, model_kind))
        xs = np.sort(drops)
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys


def downstream_specs(dataset_names: tuple[str, ...] | None = None) -> tuple:
    """The suite specs, optionally filtered, in canonical suite order."""
    specs = DOWNSTREAM_SPECS
    if dataset_names is not None:
        wanted = set(dataset_names)
        specs = tuple(s for s in specs if s.name in wanted)
    return tuple(specs)


def _shard_impl(
    context: BenchmarkContext,
    shard_id: str,
    dataset_names: tuple[str, ...] | None,
    seed: int,
) -> tuple[dict, DownstreamDataset]:
    """One suite cell: (payload, the generated dataset).

    The payload holds every approach's scores for both model kinds plus
    the per-dataset Table 4A coverage/accuracy counts.  Assignments are
    inferred once and reused for scoring and coverage — the tools and the
    trained model are deterministic, so this matches inferring twice.
    """
    specs = downstream_specs(dataset_names)
    index = next((i for i, s in enumerate(specs) if s.name == shard_id), None)
    if index is None:
        raise ValueError(f"unknown downstream shard {shard_id!r}")
    dataset = make_dataset(specs[index], seed=seed + index)

    our_rf = context.our_rf
    tools = {"pandas": PandasTool(), "tfdv": TFDVTool(), "autogluon": AutoGluonTool()}
    assignments = {
        "truth": truth_assignments(dataset),
        "pandas": tool_assignments(dataset, tools["pandas"]),
        "tfdv": tool_assignments(dataset, tools["tfdv"]),
        "autogluon": tool_assignments(dataset, tools["autogluon"]),
        "ourrf": model_assignments(dataset, our_rf),
    }

    scores: dict[str, dict[str, object]] = {}
    for model_kind in (LINEAR, FOREST):
        for approach, assignment in assignments.items():
            scores.setdefault(approach, {})[model_kind] = evaluate_assignment(
                dataset, assignment, model_kind=model_kind, seed=seed
            )

    inference: dict[str, tuple[int, int, int]] = {}
    for approach in DOWNSTREAM_APPROACHES:
        assignment = assignments[approach]
        tool = tools.get(approach)
        covered = correct = total = 0
        for column, truth in dataset.true_types.items():
            total += 1
            if tool is not None and not tool.covers_column(dataset.table[column]):
                continue
            covered += 1
            if assignment.get(column) == truth:
                correct += 1
        inference[approach] = (covered, total, correct)

    return {"scores": scores, "inference": inference}, dataset


def run_downstream_shard(
    context: BenchmarkContext,
    shard_id: str,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> dict:
    """Compute one dataset's payload (the picklable sub-task body)."""
    payload, _ = _shard_impl(context, shard_id, dataset_names, seed)
    return payload


def merge_downstream(
    shards: Mapping[str, dict],
    dataset_names: tuple[str, ...] | None = None,
    datasets: list[DownstreamDataset] | None = None,
) -> DownstreamExperimentResult:
    """Rebuild the experiment result from per-dataset payloads.

    Iterates the canonical spec order (never the mapping's insertion
    order), so the result — and everything rendered from it — is
    independent of shard completion order.
    """
    specs = downstream_specs(dataset_names)
    missing = [s.name for s in specs if s.name not in shards]
    if missing:
        raise ValueError(f"downstream merge missing shard(s): {missing}")

    suite = SuiteResult()
    for spec in specs:
        payload = shards[spec.name]
        for model_kind in (LINEAR, FOREST):
            for approach in ("truth", *DOWNSTREAM_APPROACHES):
                suite.add(approach, payload["scores"][approach][model_kind])

    inference = []
    for approach in DOWNSTREAM_APPROACHES:
        covered = total = correct = 0
        for spec in specs:
            c, t, r = shards[spec.name]["inference"][approach]
            covered += c
            total += t
            correct += r
        inference.append(InferenceAccuracy(approach, covered, total, correct))

    comparisons = {
        kind: compare_to_truth(suite, list(DOWNSTREAM_APPROACHES), kind)
        for kind in ("linear", "forest")
    }
    return DownstreamExperimentResult(
        suite=suite, inference=inference, comparisons=comparisons,
        datasets=list(datasets or []),
    )


def run_downstream_experiment(
    context: BenchmarkContext,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> DownstreamExperimentResult:
    """Run the full downstream comparison (or a named subset of datasets).

    Serial path: every shard in canonical order, then the shared merge.
    """
    shards: dict[str, dict] = {}
    datasets: list[DownstreamDataset] = []
    for spec in downstream_specs(dataset_names):
        payload, dataset = _shard_impl(context, spec.name, dataset_names, seed)
        shards[spec.name] = payload
        datasets.append(dataset)
    return merge_downstream(shards, dataset_names, datasets=datasets)


def render_downstream(result: DownstreamExperimentResult) -> str:
    """The experiment's full rendered output (Tables 4, 5 and Figure 8)."""
    return "\n".join(
        [render_table4(result), render_table5(result), render_figure8(result)]
    )


class DownstreamShards(Shardable):
    """Shard the downstream suite per dataset (default runner arguments)."""

    name = "downstream"

    def __init__(
        self,
        dataset_names: tuple[str, ...] | None = None,
        seed: int = 0,
    ):
        self.dataset_names = dataset_names
        self.seed = seed

    def shard_ids(self, context: BenchmarkContext) -> list[str]:
        return [s.name for s in downstream_specs(self.dataset_names)]

    def run_shard(self, context: BenchmarkContext, shard_id: str):
        return run_downstream_shard(
            context, shard_id, self.dataset_names, self.seed
        )

    def merge(self, context: BenchmarkContext, shards: Mapping[str, object]) -> str:
        return render_downstream(merge_downstream(shards, self.dataset_names))


def render_table4(result: DownstreamExperimentResult) -> str:
    coverage_rows = [
        [row.approach, row.covered, row.total, f"{100 * row.accuracy:.1f}%"]
        for row in result.inference
    ]
    blocks = [
        format_table(
            ["approach", "column coverage", "total columns",
             "accuracy given coverage"],
            coverage_rows,
            title="\n== Table 4(A): type inference on the downstream suite ==",
        )
    ]
    for kind, rows in result.comparisons.items():
        body = [
            [r.approach, r.underperform, r.match, r.outperform, r.best_tool_count]
            for r in rows
        ]
        blocks.append(
            format_table(
                ["approach", "underperform truth", "match truth",
                 "outperform truth", "best tool count"],
                body,
                title=f"\n== Table 4(B): vs truth, downstream {kind} model ==",
            )
        )
    return "\n".join(blocks)


def render_table5(result: DownstreamExperimentResult) -> str:
    blocks = []
    for kind in ("linear", "forest"):
        rows = []
        truth_scores = result.suite.scores["truth"][kind]
        for name, truth in truth_scores.items():
            row: list[object] = [name, f"{truth.value:.2f}"]
            for approach in DOWNSTREAM_APPROACHES:
                delta = result.suite.delta_vs_truth(approach, kind, name)
                row.append(f"{delta:+.2f}")
            rows.append(row)
        blocks.append(
            format_table(
                ["dataset", "truth", *DOWNSTREAM_APPROACHES],
                rows,
                title=(
                    f"\n== Table 5: downstream {kind} model "
                    "(deltas vs truth; classification in accuracy points, "
                    "regression deltas sign-flipped so negative = worse) =="
                ),
            )
        )
    return "\n".join(blocks)


def render_figure8(result: DownstreamExperimentResult) -> str:
    """Figure 8 as quantile series of the drop-vs-truth CDFs."""
    quantiles = (0.25, 0.5, 0.75, 0.9)
    blocks = []
    for kind in ("linear", "forest"):
        rows = []
        for approach in DOWNSTREAM_APPROACHES:
            xs, _ys = result.delta_cdf(approach, kind)
            row: list[object] = [approach]
            row.extend(float(np.quantile(xs, q)) for q in quantiles)
            rows.append(row)
        blocks.append(
            format_table(
                ["approach", *[f"p{int(100 * q)} drop" for q in quantiles]],
                rows,
                title=f"\n== Figure 8: CDF of drop vs truth ({kind} model) ==",
            )
        )
    return "\n".join(blocks)
