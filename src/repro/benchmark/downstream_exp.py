"""Experiments E4/E5/E14 — Tables 4, 5 and Figure 8: the downstream suite.

Builds the 30 downstream datasets, infers types with Pandas / TFDV /
AutoGluon / OurRF, trains linear and forest downstream models under each
assignment, and reports per-dataset deltas vs the true types (Table 5),
the coverage/accuracy and under/match/outperform summaries (Table 4), and
the CDFs of performance deltas (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.datagen.downstream import DOWNSTREAM_SPECS, DownstreamDataset, make_dataset
from repro.downstream.suite import (
    InferenceAccuracy,
    SuiteResult,
    TruthComparison,
    compare_to_truth,
    inference_accuracy_on_suite,
    model_assignments,
    run_suite,
    tool_assignments,
    truth_assignments,
)
from repro.tools import AutoGluonTool, PandasTool, TFDVTool

#: Table 4/5 approaches, in paper order (plus truth).
DOWNSTREAM_APPROACHES = ("pandas", "tfdv", "autogluon", "ourrf")


@dataclass
class DownstreamExperimentResult:
    suite: SuiteResult
    inference: list[InferenceAccuracy]
    comparisons: dict[str, list[TruthComparison]]  # by model kind
    datasets: list[DownstreamDataset] = field(default_factory=list)

    def deltas_vs_truth(self, approach: str, model_kind: str) -> np.ndarray:
        """Signed deltas vs truth across datasets (Figure 8's raw series)."""
        truth_scores = self.suite.scores["truth"][model_kind]
        return np.array(
            [
                self.suite.delta_vs_truth(approach, model_kind, name)
                for name in truth_scores
            ]
        )

    def delta_cdf(
        self, approach: str, model_kind: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sorted drop magnitudes, cumulative fraction) — Figure 8."""
        drops = np.maximum(0.0, -self.deltas_vs_truth(approach, model_kind))
        xs = np.sort(drops)
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys


def run_downstream_experiment(
    context: BenchmarkContext,
    dataset_names: tuple[str, ...] | None = None,
    seed: int = 0,
) -> DownstreamExperimentResult:
    """Run the full downstream comparison (or a named subset of datasets)."""
    specs = DOWNSTREAM_SPECS
    if dataset_names is not None:
        wanted = set(dataset_names)
        specs = tuple(s for s in specs if s.name in wanted)
    datasets = [make_dataset(spec, seed=seed + i) for i, spec in enumerate(specs)]

    our_rf = context.our_rf
    tools = {"pandas": PandasTool(), "tfdv": TFDVTool(), "autogluon": AutoGluonTool()}
    approaches = {
        "truth": truth_assignments,
        "pandas": lambda ds: tool_assignments(ds, tools["pandas"]),
        "tfdv": lambda ds: tool_assignments(ds, tools["tfdv"]),
        "autogluon": lambda ds: tool_assignments(ds, tools["autogluon"]),
        "ourrf": lambda ds: model_assignments(ds, our_rf),
    }

    suite = run_suite(datasets, approaches, seed=seed)

    inference = [
        inference_accuracy_on_suite(
            datasets,
            name,
            approaches[name],
            coverage_fn=(
                (lambda ds, col, t=tools[name]: t.covers_column(ds.table[col]))
                if name in tools
                else None
            ),
        )
        for name in DOWNSTREAM_APPROACHES
    ]
    comparisons = {
        kind: compare_to_truth(suite, list(DOWNSTREAM_APPROACHES), kind)
        for kind in ("linear", "forest")
    }
    return DownstreamExperimentResult(
        suite=suite, inference=inference, comparisons=comparisons, datasets=datasets
    )


def render_table4(result: DownstreamExperimentResult) -> str:
    coverage_rows = [
        [row.approach, row.covered, row.total, f"{100 * row.accuracy:.1f}%"]
        for row in result.inference
    ]
    blocks = [
        format_table(
            ["approach", "column coverage", "total columns",
             "accuracy given coverage"],
            coverage_rows,
            title="\n== Table 4(A): type inference on the downstream suite ==",
        )
    ]
    for kind, rows in result.comparisons.items():
        body = [
            [r.approach, r.underperform, r.match, r.outperform, r.best_tool_count]
            for r in rows
        ]
        blocks.append(
            format_table(
                ["approach", "underperform truth", "match truth",
                 "outperform truth", "best tool count"],
                body,
                title=f"\n== Table 4(B): vs truth, downstream {kind} model ==",
            )
        )
    return "\n".join(blocks)


def render_table5(result: DownstreamExperimentResult) -> str:
    blocks = []
    for kind in ("linear", "forest"):
        rows = []
        truth_scores = result.suite.scores["truth"][kind]
        for name, truth in truth_scores.items():
            row: list[object] = [name, f"{truth.value:.2f}"]
            for approach in DOWNSTREAM_APPROACHES:
                delta = result.suite.delta_vs_truth(approach, kind, name)
                row.append(f"{delta:+.2f}")
            rows.append(row)
        blocks.append(
            format_table(
                ["dataset", "truth", *DOWNSTREAM_APPROACHES],
                rows,
                title=(
                    f"\n== Table 5: downstream {kind} model "
                    "(deltas vs truth; classification in accuracy points, "
                    "regression deltas sign-flipped so negative = worse) =="
                ),
            )
        )
    return "\n".join(blocks)


def render_figure8(result: DownstreamExperimentResult) -> str:
    """Figure 8 as quantile series of the drop-vs-truth CDFs."""
    quantiles = (0.25, 0.5, 0.75, 0.9)
    blocks = []
    for kind in ("linear", "forest"):
        rows = []
        for approach in DOWNSTREAM_APPROACHES:
            xs, _ys = result.delta_cdf(approach, kind)
            row: list[object] = [approach]
            row.extend(float(np.quantile(xs, q)) for q in quantiles)
            rows.append(row)
        blocks.append(
            format_table(
                ["approach", *[f"p{int(100 * q)} drop" for q in quantiles]],
                rows,
                title=f"\n== Figure 8: CDF of drop vs truth ({kind} model) ==",
            )
        )
    return "\n".join(blocks)
