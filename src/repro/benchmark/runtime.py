"""Experiment E13 — Figure 7: per-column prediction runtime breakdown.

Measures the online phase per column: base featurization, model-specific
feature extraction (classical models only), and inference, averaged over the
held-out test columns.  The paper reports all models under 0.2 s/column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.featurize import profile_column
from repro.core.models import _ClassicalModel


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Per-column average seconds for each online-phase stage."""

    model: str
    base_featurization: float
    feature_extraction: float
    inference: float

    @property
    def total(self) -> float:
        return self.base_featurization + self.feature_extraction + self.inference


def run_runtimes(
    context: BenchmarkContext,
    models: tuple[str, ...] = ("logreg", "svm", "rf", "cnn", "knn"),
    max_columns: int = 100,
) -> list[RuntimeBreakdown]:
    test = context.test
    profiles = test.profiles[:max_columns]
    columns = [context.raw_column(p) for p in profiles]
    n = len(columns)

    start = time.perf_counter()
    fresh_profiles = [profile_column(c) for c in columns]
    base_time = (time.perf_counter() - start) / n

    breakdowns = []
    for name in models:
        model = context.model(name)
        extraction_time = 0.0
        if isinstance(model, _ClassicalModel):
            start = time.perf_counter()
            X = model._matrix(fresh_profiles, fit=False)
            extraction_time = (time.perf_counter() - start) / n
            start = time.perf_counter()
            model.estimator.predict(X)
            inference_time = (time.perf_counter() - start) / n
        else:
            start = time.perf_counter()
            model.predict(fresh_profiles)
            inference_time = (time.perf_counter() - start) / n
        breakdowns.append(
            RuntimeBreakdown(
                model=name,
                base_featurization=base_time,
                feature_extraction=extraction_time,
                inference=inference_time,
            )
        )
    return breakdowns


def render_figure7(breakdowns: list[RuntimeBreakdown]) -> str:
    rows = [
        [
            b.model,
            f"{1e3 * b.base_featurization:.2f}",
            f"{1e3 * b.feature_extraction:.2f}",
            f"{1e3 * b.inference:.2f}",
            f"{1e3 * b.total:.2f}",
        ]
        for b in breakdowns
    ]
    return format_table(
        ["model", "base featurization (ms)", "feature extraction (ms)",
         "inference (ms)", "total (ms/column)"],
        rows,
        title="\n== Figure 7: online prediction runtime per column ==",
    )
