"""Shardable experiments: decompose heavy experiments into sub-tasks.

PR 2's parallel engine schedules whole experiments, so warm-cache wall time
is dominated by the monolithic heavy experiments (``table15``,
``downstream``, ``tuning``) — one worker grinds through 16–30 independent
(dataset × model × fold) cells while the other workers idle.  These suites
are embarrassingly parallel at the cell grain: every cell seeds its own
RNGs, so the cells can run anywhere in any order as long as the merge is
deterministic.

A :class:`Shardable` declares that decomposition:

* :meth:`~Shardable.shard_ids` — the canonical, ordered list of sub-task
  ids (one per cell; stable across runs for a given seed/scale);
* :meth:`~Shardable.run_shard` — compute one cell; the returned payload
  must be picklable (it crosses the worker pipe and is checkpointed under
  ``--run-dir``);
* :meth:`~Shardable.merge` — fold the ``{shard_id: payload}`` mapping back
  into the experiment's rendered output.  Merge MUST be a pure function of
  the payload *values* (never of completion order), so sharded output is
  byte-identical to a serial run at any ``--jobs``.

Tracing: shard workers are forked after the runner installs the run's
:class:`~repro.obs.context.TraceContext` as the process default, so every
``parallel.shard`` span (and everything beneath it) carries the run's
trace_id; the engine pipes those spans back and merges them into the
parent tracer, the run manifest, and ``--trace-out``.

The serial experiment entry points (``run_table15``,
``run_downstream_experiment``, ``run_tuning``) are themselves implemented
as "run every shard in canonical order, then merge", so the serial and
sharded paths share one code path and parity holds by construction —
``tests/test_shard_parity.py`` locks this down differentially.

Registration is lazy (module path + attribute) so importing this module
does not pull in the heavy experiment modules; the registry is consulted
by :mod:`repro.benchmark.parallel` when expanding the task DAG and by the
CLI's ``--shard-heavy/--no-shard-heavy`` flag.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.benchmark.context import BenchmarkContext


class Shardable(ABC):
    """One heavy experiment's decomposition into seeded sub-tasks."""

    #: The experiment's registry name (must match ``EXPERIMENTS``).
    name: str

    @abstractmethod
    def shard_ids(self, context: "BenchmarkContext") -> list[str]:
        """Canonical ordered sub-task ids for this context."""

    @abstractmethod
    def run_shard(self, context: "BenchmarkContext", shard_id: str):
        """Compute one sub-task; the payload must be picklable."""

    @abstractmethod
    def merge(
        self, context: "BenchmarkContext", shards: Mapping[str, object]
    ) -> str:
        """Deterministically fold shard payloads into the rendered output."""


#: experiment name → (module, attribute) of its Shardable class.  Lazy so
#: that consulting the registry never imports an experiment module.
_SHARDABLE_FACTORIES: dict[str, tuple[str, str]] = {
    "table15": ("repro.benchmark.table15", "Table15Shards"),
    "downstream": ("repro.benchmark.downstream_exp", "DownstreamShards"),
    "tuning": ("repro.benchmark.tuning_exp", "TuningShards"),
}


def is_shardable(name: str) -> bool:
    """True when the named experiment declares a shard decomposition."""
    return name in _SHARDABLE_FACTORIES


def shardable_names() -> list[str]:
    return list(_SHARDABLE_FACTORIES)


@lru_cache(maxsize=None)
def get_shardable(name: str) -> Shardable | None:
    """The Shardable instance for an experiment, or None if monolithic."""
    try:
        module_name, attribute = _SHARDABLE_FACTORIES[name]
    except KeyError:
        return None
    module = importlib.import_module(module_name)
    shardable = getattr(module, attribute)()
    if shardable.name != name:
        raise ValueError(
            f"shardable {module_name}.{attribute} declares name "
            f"{shardable.name!r}, registered as {name!r}"
        )
    return shardable
