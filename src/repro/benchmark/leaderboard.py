"""Leaderboard (paper Section 6.1): 9-class accuracy + per-class metrics.

The public repository hosts a competition leaderboard over the labeled
dataset; this module produces the same artifact as a JSON-serializable
structure, ranked by 9-class test accuracy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.table1 import run_table1
from repro.core.vocabulary import TABLE1_CLASSES


@dataclass
class LeaderboardEntry:
    approach: str
    nine_class_accuracy: float
    per_class: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class Leaderboard:
    entries: list[LeaderboardEntry] = field(default_factory=list)

    def ranked(self) -> list[LeaderboardEntry]:
        return sorted(
            self.entries, key=lambda e: e.nine_class_accuracy, reverse=True
        )

    def to_json(self) -> str:
        return json.dumps(
            [asdict(entry) for entry in self.ranked()], indent=2
        )

    def winner(self) -> LeaderboardEntry:
        if not self.entries:
            raise ValueError("leaderboard is empty")
        return self.ranked()[0]


def build_leaderboard(context: BenchmarkContext) -> Leaderboard:
    """Score every approach on the held-out test set and rank them."""
    table1 = run_table1(context)
    board = Leaderboard()
    for approach, accuracy in table1.nine_class.items():
        per_class = {}
        for feature_type in TABLE1_CLASSES:
            cell = table1.cell(approach, feature_type)
            if cell is None:
                continue
            per_class[feature_type.value] = {
                "precision": cell.precision,
                "recall": cell.recall,
                "f1": cell.f1,
                "binarized_accuracy": cell.accuracy,
            }
        board.entries.append(
            LeaderboardEntry(
                approach=approach,
                nine_class_accuracy=accuracy,
                per_class=per_class,
            )
        )
    return board
