"""Experiment registry and CLI: ``repro-bench <experiment> [--scale N]``.

Each experiment regenerates one of the paper's tables or figures and prints
the same rows/series.  ``repro-bench all`` runs everything.

Observability: ``--log-level``, ``--metrics-out PATH``, and
``--manifest PATH`` enable the :mod:`repro.obs` telemetry layer, so
``repro-bench all --manifest run.json`` emits a machine-readable record of an
entire reproduction run (per-experiment wall time, per-stage span breakdown,
counter values).  With the flags omitted, telemetry stays in no-op mode and
output is identical to previous releases.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from typing import Callable, Iterator

from repro.benchmark.checkpoint import RunCheckpoint
from repro.benchmark.context import BenchmarkContext
from repro.benchmark.sharding import is_shardable
from repro.cache import ArtifactCache
from repro.faults import add_fault_flags, configure_faults, faults
from repro.obs import (
    TRACEPARENT_ENV,
    RunManifest,
    TraceContext,
    Tracer,
    add_observability_flags,
    configure_telemetry,
    set_process_context,
    telemetry,
)
from repro.obs.export import write_json, write_spans_jsonl


def _table1(context: BenchmarkContext) -> str:
    from repro.benchmark.table1 import render_table1, run_table1

    return render_table1(run_table1(context))


def _table2(context: BenchmarkContext) -> str:
    from repro.benchmark.table2 import render_table2, run_table2

    result = run_table2(context)
    return "\n".join(
        render_table2(result, split) for split in ("train", "validation", "test")
    )


def _table3(context: BenchmarkContext) -> str:
    from repro.benchmark.table3 import (
        render_datatype_confusion,
        render_table3,
        run_datatype_confusion,
        run_table3,
    )

    parts = [
        render_table3(run_table3(context, max_examples=20)),
        render_datatype_confusion(run_datatype_confusion(context)),
    ]
    return "\n".join(parts)


def _downstream(context: BenchmarkContext) -> str:
    from repro.benchmark.downstream_exp import (
        render_downstream,
        run_downstream_experiment,
    )

    return render_downstream(run_downstream_experiment(context))


def _table7(context: BenchmarkContext) -> str:
    from repro.benchmark.table7 import render_table7, run_table7

    return render_table7(run_table7(context))


def _table11(context: BenchmarkContext) -> str:
    from repro.benchmark.table11 import render_table11, run_table11

    return render_table11(run_table11(context))


def _table12(context: BenchmarkContext) -> str:
    from repro.benchmark.table12 import render_table12, run_table12

    return render_table12(run_table12(context))


def _table15(context: BenchmarkContext) -> str:
    from repro.benchmark.table15 import render_table15, run_table15

    return render_table15(run_table15(context))


def _table14(context: BenchmarkContext) -> str:
    from repro.benchmark.table14 import render_table14, run_table14

    return render_table14(run_table14(context))


def _figure9(context: BenchmarkContext) -> str:
    from repro.benchmark.robustness import render_table16, run_robustness

    return render_table16(run_robustness(context, n_runs=25, max_columns=100))


def _table17(context: BenchmarkContext) -> str:
    from repro.benchmark.table17 import render_table17, run_table17

    return render_table17(run_table17(context))


def _table18(context: BenchmarkContext) -> str:
    from repro.benchmark.datastats import render_table18, run_datastats

    return render_table18(run_datastats(context))


def _figure7(context: BenchmarkContext) -> str:
    from repro.benchmark.runtime import render_figure7, run_runtimes

    return render_figure7(run_runtimes(context))


def _labeling(context: BenchmarkContext) -> str:
    from repro.benchmark.labeling import (
        run_crowdsourcing_simulation,
        run_labeling_bootstrap,
    )

    bootstrap = run_labeling_bootstrap(context)
    crowd = run_crowdsourcing_simulation(context)
    return (
        f"labeling bootstrap: seed={bootstrap.seed_size} "
        f"5-fold CV accuracy={bootstrap.cv_accuracy:.3f}\n"
        f"predicted-class group sizes: {bootstrap.group_sizes}\n"
        f"crowdsourcing sim: worker acc={crowd.worker_accuracy:.2f} -> "
        f"majority vote acc={crowd.majority_vote_accuracy:.3f}, "
        f"{100 * crowd.pct_examples_with_3plus_labels:.0f}% of examples got "
        "3+ distinct labels"
    )


def _tuning(context: BenchmarkContext) -> str:
    from repro.benchmark.tuning_exp import render_tuning, run_tuning

    return render_tuning(run_tuning(context))


def _leaderboard(context: BenchmarkContext) -> str:
    from repro.benchmark.leaderboard import build_leaderboard

    return build_leaderboard(context).to_json()


EXPERIMENTS: dict[str, Callable[[BenchmarkContext], str]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "downstream": _downstream,  # tables 4 & 5 + figure 8
    "table7": _table7,
    "table11": _table11,
    "table12": _table12,
    "table14": _table14,
    "table15": _table15,
    "figure9": _figure9,  # + table 16
    "table17": _table17,
    "table18": _table18,  # + figure 10
    "figure7": _figure7,
    "labeling": _labeling,
    "tuning": _tuning,  # nested-CV grid search (Section 4.1 protocol)
    "leaderboard": _leaderboard,
}


def run_experiment(name: str, context: BenchmarkContext) -> str:
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return experiment(context)


def parse_size(text: str) -> int:
    """'500M' / '2G' / '750k' / plain bytes → int bytes."""
    text = text.strip()
    multipliers = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
    suffix = text[-1:].lower()
    if suffix in multipliers:
        return int(float(text[:-1]) * multipliers[suffix])
    return int(text)


def _cache_main(argv: list[str]) -> int:
    """``repro-bench cache prune --max-bytes 500M [--cache-dir PATH]``.

    Keeps long-lived deployments (cron'd benchmarks, ``repro-serve`` nodes
    training through a cache) from growing the artifact dir unboundedly:
    least-recently-*used* entries are evicted first (reads bump mtime).
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench cache",
        description="Manage the content-addressed artifact cache.",
    )
    parser.add_argument("action", choices=["prune"])
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--max-bytes", required=True, metavar="SIZE", type=parse_size,
        help="evict LRU entries until the cache fits SIZE "
             "(suffixes k/M/G/T accepted)",
    )
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        parser.error("no cache directory: pass --cache-dir or set "
                     "$REPRO_CACHE_DIR")
    report = ArtifactCache(cache_dir).prune(args.max_bytes)
    print(
        f"pruned {report['removed']} of {report['entries_before']} entries "
        f"({report['bytes_removed']} bytes) from {report['root']}; "
        f"{report['bytes_after']} bytes in {report['entries_after']} "
        f"entries remain (limit {report['max_bytes']})"
    )
    return 0


def _goldens_main(argv: list[str]) -> int:
    """``repro-bench goldens record|check`` — the golden-prediction gate.

    ``record`` fits every requested model on the canonical corpus and
    freezes its per-column predictions (plus confusion matrix) into a
    committed JSON file; ``check`` re-runs the models and fails (exit 1)
    on drift below the similarity budget — or on *any* drift with
    ``--strict``.  See :mod:`repro.benchmark.goldens` for how float32
    drift is triaged via confusion-aware affinity.
    """
    from repro.benchmark.goldens import (
        DEFAULT_MODELS,
        GoldenMismatchError,
        check_goldens,
        default_golden_path,
        load_goldens,
        record_goldens,
        write_goldens,
    )

    parser = argparse.ArgumentParser(
        prog="repro-bench goldens",
        description="Record/check per-column golden predictions on the "
                    "canonical corpus.",
    )
    parser.add_argument("action", choices=["record", "check"])
    parser.add_argument(
        "--path", default=None, metavar="FILE",
        help="golden JSON file (default: "
             "benchmarks/goldens/corpus-s{scale}-seed{seed}.json)",
    )
    parser.add_argument(
        "--models", default=None, metavar="NAMES",
        help="comma-separated model names (default: record all of "
             f"{','.join(DEFAULT_MODELS)}; check whatever was recorded)",
    )
    parser.add_argument(
        "--scale", type=int, default=300,
        help="labeled-corpus size (default 300: the committed CI corpus)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed artifact cache directory (default: "
             "$REPRO_CACHE_DIR if set, else caching is off)",
    )
    parser.add_argument(
        "--similarity-floor", type=float, default=0.995, metavar="X",
        help="fail check when a model's confusion-aware similarity drops "
             "below X (default: 0.995)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail check on any drifted column, regardless of similarity",
    )
    parser.add_argument(
        "--cnn-dtype", choices=["float32", "float64"], default="float64",
        help="numeric dtype for the CharCNN path (default: float64)",
    )
    parser.add_argument(
        "--knn-name-cap", type=int, default=None, metavar="CAP",
        help="route the k-NN name distance through the banded kernel "
             "with this cap (default: exact kernel)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="featurize the corpus through the repro.sketch streaming "
             "kernel; check drift against goldens recorded from the batch "
             "kernel (use with the default non-strict similarity floor: "
             "mean/std carry a documented ulp-level delta)",
    )
    args = parser.parse_args(argv)

    models = None
    if args.models:
        models = tuple(n.strip() for n in args.models.split(",") if n.strip())
    path = args.path or default_golden_path(args.scale, args.seed)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache = ArtifactCache(cache_dir) if cache_dir else None
    context = BenchmarkContext(
        n_examples=args.scale, seed=args.seed, cache=cache,
        cnn_dtype=args.cnn_dtype, knn_name_cap=args.knn_name_cap,
        stream=args.stream,
    )

    if args.action == "record":
        payload = record_goldens(context, models or DEFAULT_MODELS)
        write_goldens(path, payload)
        recorded = payload["models"]
        print(
            f"recorded goldens for {len(recorded)} model(s) over "
            f"{len(payload['columns'])} columns -> {path}"
        )
        for name in sorted(recorded):
            print(f"  {name:<8} accuracy {recorded[name]['accuracy']:.4f}")
        return 0

    try:
        golden = load_goldens(path)
        report = check_goldens(
            context, golden, models=models,
            similarity_floor=args.similarity_floor, strict=args.strict,
            path=path,
        )
    except GoldenMismatchError as exc:
        print(f"goldens: ERROR: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _add_queue_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the ``work`` and ``merge`` queue subcommands."""
    parser.add_argument(
        "--run-dir", required=True, metavar="DIR",
        help="shared coordination directory (the work queue): leases, "
             "checkpoints, and the published run spec all live here",
    )
    parser.add_argument(
        "--experiments", default="all", metavar="NAMES",
        help="experiment name, comma-separated list, or 'all' (default). "
             "The first worker publishes this as the run spec; later "
             "workers must agree or they exit with status 2",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="labeled-corpus size (default 2400; must match across workers)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed artifact cache directory (default: "
             "$REPRO_CACHE_DIR if set, else caching is off); point all "
             "workers at one cache to share warm artifacts",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache even if --cache-dir/"
             "$REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--stale-after", type=float, default=None, metavar="SECONDS",
        help="steal a lease whose heartbeat is older than SECONDS "
             "(default: 30; raise it on slow shared filesystems)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease heartbeat refresh interval (default: 1)",
    )
    parser.add_argument(
        "--poll", type=float, default=None, metavar="SECONDS",
        help="queue re-scan interval while waiting (default: 0.5)",
    )


def _make_queue(args) -> "object":
    from repro.benchmark import queue as q

    kwargs = {}
    if args.stale_after is not None:
        kwargs["stale_after_s"] = args.stale_after
    if args.heartbeat is not None:
        kwargs["heartbeat_s"] = args.heartbeat
    if getattr(args, "owner", None):
        kwargs["owner"] = args.owner
    return q.WorkQueue(args.run_dir, **kwargs)


def _queue_context(args, spec: dict) -> BenchmarkContext:
    """Build the benchmark context from the *published* spec, so every
    worker and the coordinator compute over identical parameters."""
    kwargs = {"seed": spec.get("seed", 0)}
    if spec.get("scale") is not None:
        kwargs["n_examples"] = spec["scale"]
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache = ArtifactCache(cache_dir) if cache_dir else None
    return BenchmarkContext(**kwargs, cache=cache)


def _resolve_names(parser: argparse.ArgumentParser, text: str) -> list[str]:
    if text == "all":
        return list(EXPERIMENTS)
    names = [n.strip() for n in text.split(",") if n.strip()]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown or not names:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown) or text!r}; "
            f"available: {', '.join([*EXPERIMENTS, 'all'])}"
        )
    return names


def _work_main(argv: list[str]) -> int:
    """``repro-bench work --run-dir DIR`` — one unsupervised queue worker.

    Start any number of these (on one host or many sharing a filesystem);
    they claim tasks with O_EXCL leases, heartbeat while running, steal
    from dead peers, and drain the queue together.  See
    :mod:`repro.benchmark.queue` and docs/robustness.md.
    """
    from repro.benchmark import queue as q

    parser = argparse.ArgumentParser(
        prog="repro-bench work",
        description="Pull-claim worker loop over a shared --run-dir queue.",
    )
    _add_queue_flags(parser)
    parser.add_argument(
        "--owner", default=None, metavar="ID",
        help="worker identity recorded in leases and summaries "
             "(default: host:pid:random — always unique)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after completing N tasks instead of draining the queue",
    )
    robust = parser.add_argument_group("robustness")
    add_fault_flags(robust)
    add_observability_flags(parser)
    args = parser.parse_args(argv)
    names = _resolve_names(parser, args.experiments)

    observing = configure_telemetry(args)
    fault_plan = configure_faults(args)
    run_context = None
    inherited = None
    if observing:
        inherited = TraceContext.from_traceparent(
            os.environ.get(TRACEPARENT_ENV)
        )
        run_context = set_process_context(inherited or TraceContext.generate())

    queue = _make_queue(args)
    try:
        spec = queue.publish_spec({
            "experiments": names,
            "scale": args.scale,
            "seed": args.seed,
        })
    except q.QueueError as exc:
        print(f"work: ERROR: {exc}", file=sys.stderr)
        return 2
    context = _queue_context(args, spec)

    manifest = RunManifest(
        command="repro-bench work",
        argv=list(argv),
        seed=spec.get("seed", 0),
        scale=spec.get("scale"),
        jobs=1,
        cache_dir=args.cache_dir or os.environ.get("REPRO_CACHE_DIR"),
    )
    if run_context is not None:
        manifest.trace_id = run_context.trace_id
    if fault_plan is not None:
        manifest.extra["fault_plan"] = fault_plan.source

    telemetry.info(
        "queue.worker_start", run_dir=args.run_dir, owner=queue.owner,
        experiments=len(names),
    )
    worker = q.QueueWorker(
        queue, context,
        poll_s=args.poll if args.poll is not None else q.DEFAULT_POLL_S,
        max_tasks=args.max_tasks,
    )
    status = worker.run()
    summary = worker.summary
    print(
        f"worker {queue.owner}: {summary['completed']} task(s) completed "
        f"({summary['steals']} stolen), {summary['failed']} failed, "
        f"{summary['wall_s']:.1f}s task time"
    )

    if observing:
        manifest.extra["queue_worker"] = {
            k: summary[k] for k in (
                "owner", "claims", "steals", "completed", "failed",
                "stale_writes_rejected", "wall_s",
            )
        }
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.trace_out:
            write_spans_jsonl(args.trace_out, telemetry.spans)
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)
    if run_context is not None and inherited is None:
        set_process_context(None)
    return status


def _merge_main(argv: list[str]) -> int:
    """``repro-bench merge --run-dir DIR`` — the merging coordinator.

    Waits for the queue to drain (every task durably completed or
    terminally failed), folds shard records through the registered merges
    with the existing checksum/parent validation, and prints the run in
    canonical order — byte-identical to a serial ``repro-bench``.
    """
    from repro.benchmark import queue as q

    parser = argparse.ArgumentParser(
        prog="repro-bench merge",
        description="Wait for a --run-dir work queue to drain, then merge "
                    "and print results byte-identical to a serial run.",
    )
    _add_queue_flags(parser)
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit 3) when tasks remain incomplete after SECONDS "
             "(default: wait forever)",
    )
    add_observability_flags(parser)
    args = parser.parse_args(argv)

    observing = configure_telemetry(args)
    run_context = None
    inherited = None
    if observing:
        inherited = TraceContext.from_traceparent(
            os.environ.get(TRACEPARENT_ENV)
        )
        run_context = set_process_context(inherited or TraceContext.generate())

    queue = _make_queue(args)
    try:
        if args.experiments != "all" or args.scale is not None:
            # Explicit parameters: validate them against the published spec
            # (same split-brain rejection workers get).
            spec = queue.publish_spec({
                "experiments": _resolve_names(parser, args.experiments),
                "scale": args.scale,
                "seed": args.seed,
            })
        else:
            spec = queue.load_spec()
    except q.QueueError as exc:
        print(f"merge: ERROR: {exc}", file=sys.stderr)
        return 2
    names = spec["experiments"]
    context = _queue_context(args, spec)
    tasks = q.expand_tasks(names, context)

    manifest = RunManifest(
        command="repro-bench merge",
        argv=list(argv),
        seed=spec.get("seed", 0),
        scale=spec.get("scale"),
        jobs=1,
        cache_dir=args.cache_dir or os.environ.get("REPRO_CACHE_DIR"),
    )
    if run_context is not None:
        manifest.trace_id = run_context.trace_id

    telemetry.info(
        "queue.merge_start", run_dir=args.run_dir, tasks=len(tasks),
    )
    try:
        q.wait_for_completion(
            queue, tasks, timeout_s=args.timeout,
            poll_s=args.poll if args.poll is not None else q.DEFAULT_POLL_S,
        )
    except q.MergeTimeout as exc:
        print(f"merge: ERROR: {exc}", file=sys.stderr)
        return 3

    failures: list[dict] = []
    for record in q.merge_results(queue, context, names):
        name = record["name"]
        if record.get("failed"):
            print(f"\n######## {name} FAILED ########")
            print(record["error"])
            failures.append(record)
            manifest.add_experiment(
                name, wall_s=0.0, error=record["error"],
                attempts=record.get("attempts", 1),
            )
            continue
        print(f"\n######## {name} ({record['wall_s']:.1f}s) ########")
        print(record["output"])
        manifest.add_experiment(
            name, wall_s=record["wall_s"], cpu_s=record.get("cpu_s"),
            resumed=bool(record.get("resumed")),
        )

    report = q.queue_report(queue)
    print(file=sys.stderr)
    print(q.render_queue_report(report), file=sys.stderr)
    manifest.extra["queue"] = report
    if failures:
        print(
            f"\n{len(failures)} of {len(names)} experiment(s) failed:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure['name']}: {failure['error']}", file=sys.stderr)
        manifest.extra["failures"] = [
            {k: v for k, v in f.items() if k != "traceback"} for f in failures
        ]

    if observing:
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.trace_out:
            write_spans_jsonl(args.trace_out, telemetry.spans)
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)
    if run_context is not None and inherited is None:
        set_process_context(None)
    return 1 if failures else 0


def _iter_serial(
    names: list[str], context: BenchmarkContext
) -> Iterator[dict]:
    """In-process execution yielding the same record shape as
    :func:`~repro.benchmark.parallel.run_parallel` (including failure
    records), so the CLI consumes one stream either way.

    A local, always-on tracer times each experiment; the printed elapsed
    seconds and the manifest entries read the same span, so they agree.
    """
    timer = Tracer()
    for name in names:
        telemetry.info("experiment.start", experiment=name)
        try:
            with timer.span(f"experiment.{name}") as sp:
                faults.point(
                    "worker.run", experiment=name, attempt=0, pid=os.getpid()
                )
                output = run_experiment(name, context)
        except Exception as exc:
            telemetry.warning(
                "experiment.failed", experiment=name, error=str(exc)
            )
            yield {
                "name": name,
                "failed": True,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "attempts": 1,
            }
            continue
        yield {
            "name": name,
            "output": output,
            "wall_s": sp.wall_s,
            "cpu_s": sp.cpu_s,
            "pid": os.getpid(),
            "attempt": 0,
        }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # "cache", "goldens", "work", and "merge" are subcommand namespaces,
    # not experiments.
    if argv[:1] == ["cache"]:
        return _cache_main(argv[1:])
    if argv[:1] == ["goldens"]:
        return _goldens_main(argv[1:])
    if argv[:1] == ["work"]:
        return _work_main(argv[1:])
    if argv[:1] == ["merge"]:
        return _merge_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        metavar="experiment",
        help="which table/figure to regenerate: an experiment name, a "
             "comma-separated list of names, or 'all' "
             f"(available: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="labeled-corpus size (default 2400; paper scale is 9921)",
    )
    parser.add_argument("--seed", type=int, default=0)
    perf = parser.add_argument_group("performance")
    perf.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiments in N worker processes after a warm-up phase "
             "builds the shared artifacts (corpus, split, OurRF)",
    )
    perf.add_argument(
        "--shard-heavy", action=argparse.BooleanOptionalAction, default=True,
        help="with --jobs > 1, decompose the heavy experiments "
             "(table15, downstream, tuning) into per-cell sub-tasks "
             "scheduled across all workers and merged deterministically "
             "(default: on; --no-shard-heavy runs them monolithically)",
    )
    perf.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed artifact cache directory (default: "
             "$REPRO_CACHE_DIR if set, else caching is off)",
    )
    perf.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache even if --cache-dir/$REPRO_CACHE_DIR "
             "is set",
    )
    robust = parser.add_argument_group("robustness")
    robust.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="record per-experiment completion checkpoints under "
             "DIR/experiments/ (atomic writes; enables --resume)",
    )
    robust.add_argument(
        "--resume", action="store_true",
        help="skip experiments already checkpointed in --run-dir, replaying "
             "their stored output verbatim",
    )
    robust.add_argument(
        "--max-worker-restarts", type=int, default=1, metavar="N",
        help="restart a crashed/hung --jobs worker up to N times per "
             "experiment before reporting it failed (default: 1)",
    )
    robust.add_argument(
        "--worker-timeout", type=float, default=None, metavar="SECONDS",
        help="kill (and restart) a --jobs worker that runs longer than "
             "SECONDS on one experiment (default: no hard timeout; stale "
             "heartbeats still catch wedged workers)",
    )
    add_fault_flags(robust)
    add_observability_flags(parser)
    args = parser.parse_args(argv)

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        names = [n.strip() for n in args.experiment.split(",") if n.strip()]
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown or not names:
            parser.error(
                f"unknown experiment(s) {', '.join(unknown) or args.experiment!r}; "
                f"available: {', '.join([*EXPERIMENTS, 'all'])}"
            )
    if args.resume and not args.run_dir:
        parser.error("--resume requires --run-dir")

    observing = configure_telemetry(args)
    fault_plan = configure_faults(args)
    run_context = None
    if observing:
        # One trace names the whole run.  Installing it as the process
        # default (and in the environment) before any fork means every
        # worker's spans — and any exec'd child's — share this trace_id.
        # Inherit only an *environment* context (we are someone's child);
        # a previous in-process run's context is never reused.
        inherited = TraceContext.from_traceparent(
            os.environ.get(TRACEPARENT_ENV)
        )
        run_context = set_process_context(inherited or TraceContext.generate())
    else:
        inherited = None

    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["n_examples"] = args.scale
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache = ArtifactCache(cache_dir) if cache_dir else None
    context = BenchmarkContext(**kwargs, cache=cache)

    manifest = RunManifest(
        command="repro-bench",
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    if run_context is not None:
        manifest.trace_id = run_context.trace_id
    if fault_plan is not None:
        manifest.extra["fault_plan"] = fault_plan.source

    checkpoint = RunCheckpoint(args.run_dir) if args.run_dir else None
    completed: dict[str, dict] = {}
    if args.resume and checkpoint is not None:
        completed = {
            name: rec for name, rec in checkpoint.completed().items()
            if name in names
        }
        if completed:
            telemetry.info(
                "run.resumed", run_dir=args.run_dir,
                skipped=sorted(completed),
            )

    def iter_records() -> Iterator[dict]:
        """Resumed records replayed in place + fresh records as they finish,
        merged back into canonical experiment order."""
        fresh = [name for name in names if name not in completed]
        shardable_work = args.shard_heavy and any(
            is_shardable(name) for name in fresh
        )
        if args.jobs > 1 and (len(fresh) > 1 or shardable_work):
            from repro.benchmark.parallel import run_parallel

            trace_dir = None
            if observing and args.trace_out:
                trace_dir = args.trace_out + ".workers"
            elif observing and args.run_dir:
                trace_dir = os.path.join(args.run_dir, "traces")
            fresh_iter = run_parallel(
                fresh, context, jobs=args.jobs,
                max_restarts=args.max_worker_restarts,
                worker_timeout_s=args.worker_timeout,
                shard_heavy=args.shard_heavy,
                checkpoint=checkpoint,
                resume=args.resume,
                trace_dir=trace_dir,
            )
        else:
            fresh_iter = _iter_serial(fresh, context)
        for name in names:
            if name in completed:
                yield {**completed[name], "resumed": True}
            else:
                yield next(fresh_iter)

    workers: list[dict] = []
    failures: list[dict] = []
    for record in iter_records():
        name = record["name"]
        if record.get("failed"):
            print(f"\n######## {name} FAILED ########")
            print(record["error"])
            failures.append(record)
            manifest.add_experiment(
                name, wall_s=0.0, error=record["error"],
                attempts=record.get("attempts", 1),
            )
            telemetry.warning(
                "experiment.failed", experiment=name, error=record["error"]
            )
            continue
        # A resumed record reprints its stored output and wall time, so a
        # resumed run's stdout is byte-identical to an uninterrupted one.
        print(f"\n######## {name} ({record['wall_s']:.1f}s) ########")
        print(record["output"])
        manifest.add_experiment(
            name, wall_s=record["wall_s"], cpu_s=record.get("cpu_s"),
            pid=record.get("pid"), resumed=bool(record.get("resumed")),
        )
        telemetry.info(
            "experiment.done", experiment=name, wall_s=record["wall_s"],
            resumed=bool(record.get("resumed")),
        )
        if checkpoint is not None and not record.get("resumed"):
            checkpoint.record(record)
        workers.append(
            {k: v for k, v in record.items() if k != "output"}
        )
    if observing and args.jobs > 1:
        manifest.extra["workers"] = workers

    if failures:
        print(
            f"\n{len(failures)} of {len(names)} experiment(s) failed:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure['name']}: {failure['error']}", file=sys.stderr)
        first_with_tb = next(
            (f for f in failures if f.get("traceback")), None
        )
        if first_with_tb is not None:
            print(
                f"\nfirst failure ({first_with_tb['name']}) traceback:\n"
                f"{first_with_tb['traceback']}",
                file=sys.stderr, end="",
            )
        manifest.extra["failures"] = [
            {k: v for k, v in f.items() if k != "traceback"} for f in failures
        ]

    if observing:
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
            telemetry.info("metrics.written", path=args.metrics_out)
        if args.trace_out:
            n = write_spans_jsonl(args.trace_out, telemetry.spans)
            telemetry.info(
                "trace.written", path=args.trace_out, spans=n,
                dropped=telemetry.tracer.dropped,
            )
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)
            telemetry.info("manifest.written", path=args.manifest)
    if run_context is not None and inherited is None:
        # This run minted the process context; clear it (and the exported
        # env var) so a later in-process invocation starts its own trace.
        set_process_context(None)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
