"""Experiment E12 — Table 18 / Figure 10: descriptive stats by class.

Average / median / standard deviation / maximum of key descriptive stats per
feature type (Table 18), and their per-class CDFs (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.types import ALL_FEATURE_TYPES, FeatureType

#: The Table 18 stat columns (a readable subset of the 25).
TABLE18_STATS = (
    "mean_char_count",
    "mean_word_count",
    "mean_value",
    "pct_distinct",
    "pct_nans",
)


@dataclass
class DataStatsResult:
    """values[feature type][stat name] -> raw per-example values."""

    values: dict[FeatureType, dict[str, np.ndarray]] = field(default_factory=dict)

    def summary(
        self, feature_type: FeatureType, stat: str
    ) -> dict[str, float]:
        arr = self.values[feature_type][stat]
        return {
            "avg": float(arr.mean()),
            "median": float(np.median(arr)),
            "std": float(arr.std()),
            "max": float(arr.max()),
        }

    def cdf(
        self, feature_type: FeatureType, stat: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sorted values, cumulative fraction) — one Figure 10 curve."""
        xs = np.sort(self.values[feature_type][stat])
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys


def run_datastats(
    context: BenchmarkContext, stats: tuple[str, ...] = TABLE18_STATS
) -> DataStatsResult:
    result = DataStatsResult()
    dataset = context.dataset
    labels = dataset.labels
    for feature_type in ALL_FEATURE_TYPES:
        index = [i for i, label in enumerate(labels) if label is feature_type]
        per_stat = {}
        for stat in stats:
            per_stat[stat] = np.array(
                [dataset.profiles[i].stats[stat] for i in index]
            )
        result.values[feature_type] = per_stat
    return result


def render_table18(result: DataStatsResult) -> str:
    blocks = []
    for stat in TABLE18_STATS:
        rows = []
        for feature_type in ALL_FEATURE_TYPES:
            summary = result.summary(feature_type, stat)
            rows.append(
                [
                    feature_type.value,
                    summary["avg"],
                    summary["median"],
                    summary["std"],
                    summary["max"],
                ]
            )
        blocks.append(
            format_table(
                ["class", "avg", "median", "std dev", "max"],
                rows,
                title=f"\n== Table 18 / Figure 10: {stat} by class ==",
            )
        )
    return "\n".join(blocks)
