"""One-shot benchmark report: run a set of experiments, write markdown.

``python -m repro.benchmark.report --out REPORT.md`` regenerates the chosen
experiments against one shared context and writes a single document — the
"results" page of the public repository.
"""

from __future__ import annotations

import argparse
import sys

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.runner import EXPERIMENTS, run_experiment
from repro.obs import (
    RunManifest,
    Tracer,
    add_observability_flags,
    configure_telemetry,
    telemetry,
)
from repro.obs.export import write_json

#: Experiments cheap enough for the default report (heavier ones opt-in).
DEFAULT_EXPERIMENTS = (
    "table1",
    "table3",
    "table17",
    "table18",
    "figure7",
    "labeling",
    "leaderboard",
)


def build_report(
    context: BenchmarkContext, experiments=DEFAULT_EXPERIMENTS, manifest=None
) -> str:
    """Run the experiments and render one markdown report."""
    sections = [
        "# Benchmark report — ML feature type inference",
        "",
        f"- labeled corpus: {context.n_examples} columns "
        f"(seed {context.seed})",
        f"- Random Forest: {context.rf_estimators} trees; "
        f"CNN: {context.cnn_epochs} epochs",
        "",
    ]
    timer = Tracer()
    for name in experiments:
        with timer.span(f"experiment.{name}") as sp:
            body = run_experiment(name, context)
        elapsed = sp.wall_s
        if manifest is not None:
            manifest.add_experiment(name, wall_s=sp.wall_s, cpu_s=sp.cpu_s)
        sections.append(f"## {name} ({elapsed:.1f}s)")
        sections.append("")
        sections.append("```")
        sections.append(body.strip())
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report", description="Write a markdown benchmark report."
    )
    parser.add_argument("--out", default="REPORT.md")
    parser.add_argument("--scale", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--experiments", nargs="*", default=list(DEFAULT_EXPERIMENTS),
        choices=sorted(EXPERIMENTS),
    )
    add_observability_flags(parser)
    args = parser.parse_args(argv)

    observing = configure_telemetry(args)

    manifest = RunManifest(
        command="repro-report",
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=args.seed,
        scale=args.scale,
    )
    context = BenchmarkContext(n_examples=args.scale, seed=args.seed)
    report = build_report(context, tuple(args.experiments), manifest=manifest)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")

    if observing:
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
