"""Parallel experiment engine behind ``repro-bench all --jobs N``.

Experiments are independent given the shared artifacts (every experiment
seeds fresh RNGs from ``context.seed``), so they can run in worker
processes.  A warm-up phase first materializes the artifacts most
experiments share — the corpus, the 80:20 split, and the paper's RF — in
the parent process; forked workers inherit them copy-on-write, and with an
:class:`~repro.cache.ArtifactCache` enabled they are also persisted for
later runs.

Task DAG: the schedulable unit is a :class:`_TaskSpec` — either a whole
experiment or, for experiments registered in
:mod:`repro.benchmark.sharding`, one sub-task (shard) of it.  Sharding
(``shard_heavy=True``, the CLI's ``--shard-heavy``) expands each heavy
experiment into its seeded (dataset × model × fold) cells so they spread
across all workers instead of serializing inside one; a per-experiment
:class:`_Assembly` collects the shard payloads and runs the experiment's
declared merge in the parent.  Merges are pure functions of the payload
values, so the assembled output is byte-identical to a serial run
regardless of ``jobs`` or completion order.

Fault tolerance: each task gets its own forked :class:`Process` and result
pipe (not a ``Pool`` — a pool deadlocks when a worker is SIGKILLed
mid-task).  The parent detects workers that die (pipe EOF / process exit
without a result) or hang (``worker_timeout_s`` exceeded, or the worker's
heartbeat file going stale) and restarts them up to ``max_restarts`` times;
a task that still cannot finish fails its experiment with a *failure
record* — ``{"name", "failed": True, "error", "traceback", "attempts"}`` —
instead of hanging the run (remaining sub-tasks of a failed experiment are
cancelled).  Exceptions raised *inside* a task are deterministic and are
not retried; the worker reports them as a failure record directly.

Checkpointing: with a :class:`~repro.benchmark.checkpoint.RunCheckpoint`,
each completed shard is durably recorded (tagged with its parent
experiment) the moment it lands, and a resumed run replays those payloads
instead of recomputing them — only the missing cells rerun.

Output determinism: results are yielded in the canonical experiment order
regardless of completion order, so the rendered experiment text is
byte-identical to a serial run.

Cooperative mode: a resumed checkpointed run (``--run-dir D --resume``)
speaks the :mod:`repro.benchmark.queue` claim protocol — each task is
claimed with an O_EXCL lease before its worker forks (the lease file
doubles as the worker's heartbeat file), tasks a peer process holds are
*deferred* and adopted from the peer's checkpoint records when they land,
and stale peer leases are stolen.  Any mix of ``repro-bench all --jobs N
--run-dir D --resume`` engines and ``repro-bench work --run-dir D``
pull-workers therefore drains one queue together without duplicating
work.  A non-resume run asserts exclusive ownership of its run dir and
skips the protocol.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import re
import shutil
import tempfile
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Iterator, NamedTuple, Sequence

from repro.benchmark.context import BenchmarkContext
from repro.faults import faults
from repro.obs import current_context, telemetry
from repro.obs.export import spans_summary, spans_to_records, write_jsonl
from repro.obs.trace import SpanRecord

#: Set in the parent just before forking; workers read it after the fork.
_CONTEXT: BenchmarkContext | None = None

#: A worker is declared hung when its heartbeat file has not been touched
#: for this many heartbeat intervals — but never sooner than
#: ``_MIN_STALE_S``, so a busy worker that shares the machine with the
#: parent is not shot for mere slowness.
_STALE_INTERVALS = 10
_MIN_STALE_S = 30.0
#: Parent scheduling-loop poll interval.
_POLL_S = 0.2


class _TaskSpec(NamedTuple):
    """One schedulable unit: a whole experiment, or one shard of one."""

    key: str  # unique across the run ("table18" or "table15::mushrooms")
    experiment: str
    shard: str | None

    def safe_stem(self) -> str:
        """Filesystem-safe unique stem for heartbeat files."""
        stem = re.sub(r"[^A-Za-z0-9._-]", "_", self.key)
        digest = hashlib.sha1(self.key.encode("utf-8")).hexdigest()[:6]
        return f"{stem}.{digest}"


def _clean_stale_heartbeat_dirs(max_age_s: float = 3600.0) -> int:
    """Remove ``repro-bench-hb-*`` tempdirs orphaned by crashed runs.

    A live run touches its heartbeat files every second, so any such dir
    whose newest entry is over ``max_age_s`` old belongs to a run that is
    long gone.  (New runs with a ``--run-dir`` keep heartbeats *inside*
    the run dir instead, so these tempdirs only appear for dir-less runs.)
    """
    root = tempfile.gettempdir()
    removed = 0
    try:
        entries = os.listdir(root)
    except OSError:
        return 0
    now = time.time()
    for name in entries:
        if not name.startswith("repro-bench-hb-"):
            continue
        path = os.path.join(root, name)
        try:
            newest = os.stat(path).st_mtime
            for child in os.listdir(path):
                try:
                    newest = max(
                        newest, os.stat(os.path.join(path, child)).st_mtime
                    )
                except OSError:
                    pass
        except OSError:
            continue
        if now - newest > max_age_s:
            shutil.rmtree(path, ignore_errors=True)
            removed += 1
    if removed:
        telemetry.info("parallel.stale_heartbeat_dirs_removed", n=removed)
        telemetry.count("parallel.stale_heartbeat_dirs_removed", removed)
    return removed


def warm_up(context: BenchmarkContext) -> None:
    """Materialize the artifacts every worker needs before forking."""
    with telemetry.span("parallel.warmup"):
        context.corpus
        context.train  # builds the split
        context.our_rf
    telemetry.info("parallel.warmup_done", n_examples=context.n_examples)


def _run_one(name: str, attempt: int = 0) -> dict:
    from repro.benchmark.runner import run_experiment

    faults.point(
        "worker.run", experiment=name, attempt=attempt, pid=os.getpid()
    )
    span_base = len(telemetry.spans)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with telemetry.span("parallel.task", experiment=name):
        output = run_experiment(name, _CONTEXT)
    record = {
        "name": name,
        "output": output,
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "pid": os.getpid(),
        "attempt": attempt,
    }
    if telemetry.enabled:
        record["spans"] = spans_summary(telemetry.spans[span_base:])
        record["metrics"] = telemetry.metrics.snapshot()
        # Full span records (with trace/span ids) ride the result pipe back
        # so the parent can stitch every worker's spans into one trace.
        record["trace_records"] = spans_to_records(telemetry.spans[span_base:])
        ambient = current_context()
        if ambient is not None:
            record["trace_id"] = ambient.trace_id
    return record


def _run_shard(name: str, shard_id: str, attempt: int = 0) -> dict:
    """Run one sub-task of a shardable experiment (in a worker)."""
    from repro.benchmark.sharding import get_shardable

    faults.point(
        "worker.run", experiment=name, shard=shard_id, attempt=attempt,
        pid=os.getpid(),
    )
    shardable = get_shardable(name)
    if shardable is None:
        raise ValueError(f"experiment {name!r} is not shardable")
    span_base = len(telemetry.spans)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with telemetry.span("parallel.shard", experiment=name, shard=shard_id):
        payload = shardable.run_shard(_CONTEXT, shard_id)
    record = {
        "name": name,
        "shard": shard_id,
        "payload": payload,
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "pid": os.getpid(),
        "attempt": attempt,
    }
    if telemetry.enabled:
        record["trace_records"] = spans_to_records(telemetry.spans[span_base:])
        ambient = current_context()
        if ambient is not None:
            record["trace_id"] = ambient.trace_id
    return record


def _run_task(experiment: str, shard: str | None, attempt: int) -> dict:
    if shard is None:
        return _run_one(experiment, attempt)
    return _run_shard(experiment, shard, attempt)


def _exception_record(
    name: str, attempt: int, exc: BaseException, shard: str | None = None
) -> dict:
    record = {
        "name": name,
        "failed": True,
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
        "pid": os.getpid(),
        "attempt": attempt,
    }
    if shard is not None:
        record["shard"] = shard
    return record


def _worker_main(
    experiment: str,
    shard: str | None,
    attempt: int,
    conn,
    heartbeat_path: str,
    heartbeat_s: float,
    trace_path: str | None = None,
) -> None:
    """Forked worker entry point: run one task, pipe back one record.

    A daemon thread touches ``heartbeat_path`` every ``heartbeat_s`` so the
    parent can tell a long-running worker from a wedged one even when the
    main thread is stuck in a C extension (or an injected ``hang``).
    """
    stop = threading.Event()
    try:
        # Create-without-truncate: in cooperative (queue) mode the heartbeat
        # path is the task's *lease file*, whose JSON body must survive.
        open(heartbeat_path, "ab").close()
    except OSError:
        pass
    else:
        def beat() -> None:
            while not stop.wait(heartbeat_s):
                try:
                    os.utime(heartbeat_path)
                except OSError:
                    return

        threading.Thread(target=beat, daemon=True, name="heartbeat").start()
    try:
        record = _run_task(experiment, shard, attempt)
    except Exception as exc:  # deterministic failure: report, don't retry
        record = _exception_record(experiment, attempt, exc, shard=shard)
    stop.set()
    if trace_path is not None and record.get("trace_records"):
        # Per-worker span export: survives even if the parent dies before
        # ingesting the piped copy, and gives `repro-obs trace merge` its
        # multi-process input files.
        try:
            write_jsonl(trace_path, record["trace_records"])
        except OSError:
            pass
    try:
        conn.send(record)
    finally:
        conn.close()


class _Assembly:
    """One sharded experiment's collection point.

    Accumulates ``{shard_id: payload}`` (plus timing provenance) as shard
    tasks land, and produces the experiment's final record by running the
    declared merge once every cell is present — or a failure record if any
    cell permanently failed.
    """

    def __init__(self, name, shardable, shard_ids, preloaded):
        self.name = name
        self.shardable = shardable
        self.shard_ids = list(shard_ids)
        self.payloads: dict[str, object] = dict(preloaded)
        self.resumed_shards = len(preloaded)
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.max_attempts = 1
        self.failure: dict | None = None

    @property
    def ready(self) -> bool:
        return self.failure is None and all(
            shard in self.payloads for shard in self.shard_ids
        )

    def add(self, shard_id: str, record: dict) -> None:
        self.payloads[shard_id] = record["payload"]
        self.wall_s += record.get("wall_s") or 0.0
        self.cpu_s += record.get("cpu_s") or 0.0
        self.max_attempts = max(self.max_attempts, record.get("attempt", 0) + 1)

    def fail(self, shard_id: str, error: str, tb: str, attempts: int) -> dict:
        if self.failure is None:
            self.failure = {
                "name": self.name,
                "failed": True,
                "error": f"shard {shard_id!r}: {error}",
                "traceback": tb,
                "attempts": max(attempts, self.max_attempts),
            }
        return self.failure

    def finish(self, context: BenchmarkContext) -> dict:
        """The experiment's final record (merge runs in the parent)."""
        if self.failure is not None:
            return self.failure
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        with telemetry.span(
            "parallel.merge", experiment=self.name, n_shards=len(self.shard_ids)
        ):
            output = self.shardable.merge(context, self.payloads)
        return {
            "name": self.name,
            "output": output,
            "wall_s": self.wall_s + (time.perf_counter() - wall0),
            "cpu_s": self.cpu_s + (time.process_time() - cpu0),
            "pid": os.getpid(),
            "attempt": 0,
            "attempts": self.max_attempts,
            "sharded": True,
            "n_shards": len(self.shard_ids),
            "resumed_shards": self.resumed_shards,
        }


def _expand_specs(
    names: list[str],
    context: BenchmarkContext,
    checkpoint,
) -> tuple[list[_TaskSpec], dict[str, _Assembly]]:
    """Experiment names → task specs, sharding the registered heavies.

    With a checkpoint, already-recorded shard payloads are preloaded into
    the assemblies (validated against their parent experiment name) and
    their tasks are not scheduled at all.
    """
    from repro.benchmark.sharding import get_shardable

    specs: list[_TaskSpec] = []
    assemblies: dict[str, _Assembly] = {}
    for name in names:
        shardable = get_shardable(name)
        if shardable is None:
            specs.append(_TaskSpec(name, name, None))
            continue
        shard_ids = shardable.shard_ids(context)
        preloaded: dict[str, object] = {}
        if checkpoint is not None:
            done = checkpoint.completed_shards(name)
            preloaded = {sid: done[sid] for sid in shard_ids if sid in done}
            if preloaded:
                telemetry.info(
                    "parallel.shards_resumed", experiment=name,
                    n=len(preloaded),
                )
        assemblies[name] = _Assembly(name, shardable, shard_ids, preloaded)
        for shard_id in shard_ids:
            if shard_id not in preloaded:
                specs.append(
                    _TaskSpec(f"{name}::{shard_id}", name, shard_id)
                )
        telemetry.info(
            "parallel.sharded", experiment=name, n_shards=len(shard_ids),
            resumed=len(preloaded),
        )
    return specs, assemblies


class _Task:
    """One in-flight worker: its process, result pipe, and liveness state."""

    __slots__ = ("spec", "attempt", "process", "conn", "heartbeat",
                 "started", "record", "eof", "lease")

    def __init__(self, spec, attempt, process, conn, heartbeat, lease=None):
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.started = time.monotonic()
        self.record = None
        self.eof = False
        # In cooperative (queue) mode: the held claim on this task.  The
        # lease file *is* the heartbeat file — the forked worker's beat
        # thread refreshes its mtime, so peers see this task as live.
        self.lease = lease

    def heartbeat_stale(self, stale_after: float) -> bool:
        try:
            age = time.time() - os.stat(self.heartbeat).st_mtime
        except OSError:
            # No heartbeat file (worker died before creating it, or an
            # unwritable tmpdir): only the hard timeout applies.
            return False
        return age > stale_after


def run_parallel(
    names: Sequence[str],
    context: BenchmarkContext,
    jobs: int,
    *,
    max_restarts: int = 1,
    worker_timeout_s: float | None = None,
    heartbeat_s: float = 1.0,
    warm: bool = True,
    shard_heavy: bool = True,
    checkpoint=None,
    resume: bool = False,
    trace_dir: str | None = None,
) -> Iterator[dict]:
    """Run experiments in ``jobs`` worker processes, yielding result (or
    failure) records in the order of ``names`` as they become available.

    With ``shard_heavy`` (the default), experiments registered in
    :mod:`repro.benchmark.sharding` are decomposed into per-cell sub-tasks
    scheduled across the same workers and deterministically merged.  A
    ``checkpoint`` (:class:`~repro.benchmark.checkpoint.RunCheckpoint`)
    durably records each completed shard; with ``resume`` the recorded
    payloads are replayed instead of recomputed.

    Falls back to in-process serial execution when only one job is asked
    for, there is only one task to run, or the platform cannot fork; in
    that mode an experiment exception becomes a failure record but
    crashes/hangs are not survivable.
    """
    global _CONTEXT
    names = list(names)
    if warm:
        warm_up(context)
    _CONTEXT = context
    try:
        can_fork = "fork" in mp.get_all_start_methods()
        specs = [_TaskSpec(name, name, None) for name in names]
        assemblies: dict[str, _Assembly] = {}
        if jobs > 1 and can_fork and shard_heavy:
            specs, assemblies = _expand_specs(
                names, context, checkpoint if resume else None
            )
        if jobs <= 1 or not can_fork or (len(specs) <= 1 and not assemblies):
            for name in names:
                try:
                    record = _run_one(name)
                    # In-process: spans are already in the live tracer.
                    record.pop("trace_records", None)
                    yield record
                except Exception as exc:
                    telemetry.warning(
                        "experiment.failed", experiment=name, error=str(exc)
                    )
                    record = _exception_record(name, 0, exc)
                    record["attempts"] = 1
                    yield record
            return
        yield from _run_forked(
            names, specs, assemblies, jobs, max_restarts, worker_timeout_s,
            heartbeat_s, checkpoint, trace_dir,
            # The claim protocol rides the resume contract: a resumed run
            # cooperates with peer processes on the same run dir; a fresh
            # (non-resume) run owns its dir outright and recomputes.
            use_queue=checkpoint is not None and resume,
        )
    finally:
        _CONTEXT = None


def _run_forked(
    names: list[str],
    specs: list[_TaskSpec],
    assemblies: dict[str, _Assembly],
    jobs: int,
    max_restarts: int,
    worker_timeout_s: float | None,
    heartbeat_s: float,
    checkpoint,
    trace_dir: str | None = None,
    use_queue: bool = False,
) -> Iterator[dict]:
    ctx = mp.get_context("fork")
    stale_after = max(_MIN_STALE_S, _STALE_INTERVALS * heartbeat_s)
    _clean_stale_heartbeat_dirs()
    if checkpoint is not None:
        # Heartbeats live inside the run dir: a crashed run leaves them
        # where the next resume (or an operator) can see them, instead of
        # leaking anonymous tempdirs.
        heartbeat_dir = str(checkpoint.run_dir / "heartbeats")
        os.makedirs(heartbeat_dir, exist_ok=True)
        owns_heartbeat_dir = False
    else:
        heartbeat_dir = tempfile.mkdtemp(prefix="repro-bench-hb-")
        owns_heartbeat_dir = True
    queue = None
    if use_queue:
        from repro.benchmark.queue import WorkQueue

        queue = WorkQueue(
            checkpoint.run_dir,
            stale_after_s=stale_after, heartbeat_s=heartbeat_s,
        )
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    # pop() from the end → tasks start in canonical order.
    pending: list[tuple[_TaskSpec, int]] = [
        (spec, 0) for spec in reversed(specs)
    ]
    # Tasks a peer process currently holds: re-checked each poll, adopted
    # from the peer's durable records when they land, stolen when stale.
    deferred: list[tuple[_TaskSpec, int]] = []
    active: dict[object, _Task] = {}  # parent pipe end → task
    results: dict[str, dict] = {}  # experiment name → final record
    next_index = 0

    def finish_assembly(assembly: _Assembly) -> None:
        results[assembly.name] = assembly.finish(_CONTEXT)

    # Resume can leave an assembly fully populated before anything runs.
    for assembly in assemblies.values():
        if assembly.ready:
            finish_assembly(assembly)

    def spawn(spec: _TaskSpec, attempt: int) -> None:
        lease = None
        if queue is not None:
            from repro.benchmark.queue import QueueTask

            lease = queue.try_claim(
                QueueTask(spec.key, spec.experiment, spec.shard)
            )
            if lease is None:
                # Completed/failed/held elsewhere — a peer owns this task's
                # fate for now; adopt or steal from the deferred sweep.
                deferred.append((spec, attempt))
                return
            heartbeat = str(lease.path)
        else:
            heartbeat = os.path.join(
                heartbeat_dir, f"{spec.safe_stem()}.{attempt}.hb"
            )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        trace_path = (
            os.path.join(trace_dir, f"{spec.safe_stem()}.{attempt}.jsonl")
            if trace_dir is not None else None
        )
        process = ctx.Process(
            target=_worker_main,
            args=(spec.experiment, spec.shard, attempt, child_conn,
                  heartbeat, heartbeat_s, trace_path),
            name=f"repro-bench-{spec.key}",
        )
        process.start()
        child_conn.close()
        active[parent_conn] = _Task(
            spec, attempt, process, parent_conn, heartbeat, lease
        )

    def release_lease(task: _Task, completed: bool) -> None:
        if task.lease is not None:
            queue.release(task.lease, completed=completed)
            task.lease = None

    def reap(task: _Task, grace_s: float = 10.0) -> None:
        task.process.join(timeout=grace_s)
        if task.process.is_alive():
            task.process.kill()
            task.process.join(timeout=5.0)
        task.conn.close()
        if task.lease is None:
            try:
                os.unlink(task.heartbeat)
            except OSError:
                pass

    def fail_experiment(
        spec: _TaskSpec, error: str, tb: str, attempts: int
    ) -> None:
        """One task is permanently lost → its whole experiment fails."""
        if spec.experiment in results:
            return  # already failed via a sibling shard
        if spec.shard is None:
            results[spec.experiment] = {
                "name": spec.experiment,
                "failed": True,
                "error": error,
                "traceback": tb,
                "attempts": attempts,
            }
        else:
            results[spec.experiment] = assemblies[spec.experiment].fail(
                spec.shard, error, tb, attempts
            )
        # Cancel the failed experiment's not-yet-started sibling tasks.
        pending[:] = [
            (s, a) for (s, a) in pending if s.experiment != spec.experiment
        ]

    def complete(task: _Task) -> None:
        """A worker piped back a record: file it into results/assemblies."""
        spec = task.spec
        record = dict(task.record)
        record["attempts"] = task.attempt + 1
        # Adopt the worker's spans (ids intact) so the parent's tracer — and
        # therefore the manifest and any --trace-out export — holds the
        # whole multi-process trace.
        trace_records = record.pop("trace_records", None)
        if trace_records and telemetry.enabled:
            telemetry.tracer.ingest(
                [SpanRecord.from_dict(r) for r in trace_records]
            )
        fence = task.lease.is_current if task.lease is not None else None
        if spec.shard is None:
            results[spec.experiment] = record
            if task.lease is not None and not record.get("failed"):
                # Record durably *before* releasing the lease, so peers
                # never observe this task as unclaimed-and-unrecorded.
                checkpoint.record(record, fence=fence)
            release_lease(task, completed=True)
            return
        if record.get("failed"):
            # Deterministic failure inside a shard: fails the experiment.
            release_lease(task, completed=True)
            fail_experiment(
                spec, record["error"], record.get("traceback", ""),
                task.attempt + 1,
            )
            return
        if spec.experiment in results:
            release_lease(task, completed=True)
            return  # experiment already failed; drop the stray payload
        assembly = assemblies[spec.experiment]
        assembly.add(spec.shard, record)
        telemetry.count("parallel.shards_completed")
        if checkpoint is not None:
            try:
                checkpoint.record_shard(
                    spec.experiment, spec.shard, record["payload"],
                    meta={
                        "wall_s": record.get("wall_s"),
                        "cpu_s": record.get("cpu_s"),
                        "pid": record.get("pid"),
                        "attempt": record.get("attempt", 0),
                        "trace_id": record.get("trace_id"),
                        "owner": queue.owner if queue is not None else None,
                    },
                    fence=fence,
                )
            except OSError as exc:
                telemetry.warning(
                    "checkpoint.shard_record_failed",
                    experiment=spec.experiment, shard=spec.shard,
                    error=str(exc),
                )
        release_lease(task, completed=True)
        if assembly.ready:
            finish_assembly(assembly)

    def retry_or_fail(task: _Task, reason: str) -> None:
        if task.spec.experiment in results:
            return  # experiment already failed; don't resurrect its shards
        if task.attempt < max_restarts:
            telemetry.count("worker.restart")
            telemetry.warning(
                "worker.restarted", experiment=task.spec.experiment,
                shard=task.spec.shard, attempt=task.attempt + 1,
                reason=reason,
            )
            pending.append((task.spec, task.attempt + 1))
        else:
            fail_experiment(
                task.spec,
                f"{reason} (after {task.attempt + 1} attempts)",
                "",
                task.attempt + 1,
            )

    def check_deferred() -> None:
        """Re-examine tasks a peer held: adopt, fail, or steal-and-run."""
        from repro.benchmark.queue import QueueTask

        still: list[tuple[_TaskSpec, int]] = []
        for spec, attempt in deferred:
            if spec.experiment in results:
                continue  # experiment already resolved; drop
            qtask = QueueTask(spec.key, spec.experiment, spec.shard)
            if queue.is_completed(qtask):
                _adopt(spec)
            elif queue.is_failed(qtask):
                stored = next(
                    (f for f in queue.failures() if f.get("task") == spec.key),
                    None,
                ) or {}
                fail_experiment(
                    spec,
                    stored.get("error", "failed in a peer worker"),
                    stored.get("traceback", ""),
                    stored.get("attempt", 0) + 1,
                )
            elif len(active) < jobs:
                lease = queue.try_claim(qtask)
                if lease is not None:
                    _spawn_claimed(spec, attempt, lease)
                    continue
                still.append((spec, attempt))
            else:
                still.append((spec, attempt))
        deferred[:] = still

    def _adopt(spec: _TaskSpec) -> None:
        """A peer durably completed this task: fold in its record."""
        if spec.shard is None:
            stored = checkpoint.completed().get(spec.experiment)
            if stored is None:
                return  # torn/invalid record: re-check next sweep
            results[spec.experiment] = {**stored, "resumed": True}
            telemetry.count("parallel.tasks_adopted")
            return
        recs = checkpoint.completed_shard_records(spec.experiment)
        rec = recs.get(spec.shard)
        if rec is None:
            return
        assembly = assemblies[spec.experiment]
        assembly.add(spec.shard, {"payload": rec["payload"], **rec["meta"]})
        telemetry.count("parallel.tasks_adopted")
        if assembly.ready:
            finish_assembly(assembly)

    def _spawn_claimed(spec: _TaskSpec, attempt: int, lease) -> None:
        """Start a worker on a lease already held (a successful steal)."""
        heartbeat = str(lease.path)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        trace_path = (
            os.path.join(trace_dir, f"{spec.safe_stem()}.{attempt}.jsonl")
            if trace_dir is not None else None
        )
        process = ctx.Process(
            target=_worker_main,
            args=(spec.experiment, spec.shard, attempt, child_conn,
                  heartbeat, heartbeat_s, trace_path),
            name=f"repro-bench-{spec.key}",
        )
        process.start()
        child_conn.close()
        active[parent_conn] = _Task(
            spec, attempt, process, parent_conn, heartbeat, lease
        )

    try:
        while pending or active or deferred:
            while pending and len(active) < jobs:
                spawn(*pending.pop())
            if deferred and queue is not None:
                check_deferred()
            if active:
                _conn_wait(list(active), timeout=_POLL_S)
            elif pending or deferred:
                time.sleep(_POLL_S)
            now = time.monotonic()
            for conn, task in list(active.items()):
                # Drain here (not in the wait loop): a worker can send its
                # record and exit between the wait and this sweep, and it
                # must not be mistaken for a crash.
                if task.record is None and not task.eof:
                    try:
                        if conn.poll(0):
                            task.record = conn.recv()
                    except (EOFError, OSError):
                        task.eof = True
                if task.record is not None:
                    del active[conn]
                    reap(task)
                    complete(task)
                elif task.eof or not task.process.is_alive():
                    del active[conn]
                    reap(task, grace_s=5.0)
                    release_lease(task, completed=False)
                    exitcode = task.process.exitcode
                    telemetry.warning(
                        "worker.died", experiment=task.spec.experiment,
                        shard=task.spec.shard, attempt=task.attempt,
                        exitcode=exitcode,
                    )
                    retry_or_fail(
                        task,
                        f"worker died (exit code {exitcode}) before "
                        f"finishing {task.spec.key!r}",
                    )
                else:
                    elapsed = now - task.started
                    reason = None
                    if worker_timeout_s is not None and elapsed > worker_timeout_s:
                        reason = (
                            f"worker exceeded the {worker_timeout_s:.0f}s "
                            f"timeout on {task.spec.key!r}"
                        )
                    elif elapsed > stale_after and task.heartbeat_stale(stale_after):
                        reason = (
                            f"worker heartbeat stale for over "
                            f"{stale_after:.0f}s on {task.spec.key!r}"
                        )
                    if reason is not None:
                        del active[conn]
                        task.process.kill()
                        reap(task, grace_s=5.0)
                        release_lease(task, completed=False)
                        telemetry.warning(
                            "worker.hung", experiment=task.spec.experiment,
                            shard=task.spec.shard, attempt=task.attempt,
                            reason=reason,
                        )
                        retry_or_fail(task, reason)
            while next_index < len(names) and names[next_index] in results:
                yield results.pop(names[next_index])
                next_index += 1
        # Everything scheduled has finished; drain records that became
        # ready without any task running (fully-resumed assemblies).
        while next_index < len(names) and names[next_index] in results:
            yield results.pop(names[next_index])
            next_index += 1
    finally:
        for task in active.values():
            task.process.kill()
        for task in active.values():
            task.process.join(timeout=5.0)
            task.conn.close()
            if task.lease is not None:
                queue.release(task.lease, completed=False)
        if owns_heartbeat_dir:
            shutil.rmtree(heartbeat_dir, ignore_errors=True)
        else:
            # Our own *.hb files are reaped per-task; clear any stragglers
            # (a generator abandoned mid-run) but leave peers' files alone.
            for task in active.values():
                try:
                    os.unlink(task.heartbeat)
                except OSError:
                    pass
