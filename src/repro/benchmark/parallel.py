"""Parallel experiment engine behind ``repro-bench all --jobs N``.

Experiments are independent given the shared artifacts (every experiment
seeds fresh RNGs from ``context.seed``), so they can run in worker
processes.  A warm-up phase first materializes the artifacts most
experiments share — the corpus, the 80:20 split, and the paper's RF — in
the parent process; forked workers inherit them copy-on-write, and with an
:class:`~repro.cache.ArtifactCache` enabled they are also persisted for
later runs.

Fault tolerance: each experiment gets its own forked :class:`Process` and
result pipe (not a ``Pool`` — a pool deadlocks when a worker is SIGKILLed
mid-task).  The parent detects workers that die (pipe EOF / process exit
without a result) or hang (``worker_timeout_s`` exceeded, or the worker's
heartbeat file going stale) and restarts them up to ``max_restarts`` times;
an experiment that still cannot finish yields a *failure record* —
``{"name", "failed": True, "error", "traceback", "attempts"}`` — instead of
hanging the run.  Exceptions raised *inside* an experiment are
deterministic and are not retried; the worker reports them as a failure
record directly.

Output determinism: results are yielded in the canonical experiment order
regardless of completion order, so the rendered experiment text is
byte-identical to a serial run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import tempfile
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Iterator, Sequence

from repro.benchmark.context import BenchmarkContext
from repro.faults import faults
from repro.obs import telemetry
from repro.obs.export import spans_summary

#: Set in the parent just before forking; workers read it after the fork.
_CONTEXT: BenchmarkContext | None = None

#: A worker is declared hung when its heartbeat file has not been touched
#: for this many heartbeat intervals — but never sooner than
#: ``_MIN_STALE_S``, so a busy worker that shares the machine with the
#: parent is not shot for mere slowness.
_STALE_INTERVALS = 10
_MIN_STALE_S = 30.0
#: Parent scheduling-loop poll interval.
_POLL_S = 0.2


def warm_up(context: BenchmarkContext) -> None:
    """Materialize the artifacts every worker needs before forking."""
    with telemetry.span("parallel.warmup"):
        context.corpus
        context.train  # builds the split
        context.our_rf
    telemetry.info("parallel.warmup_done", n_examples=context.n_examples)


def _run_one(name: str, attempt: int = 0) -> dict:
    from repro.benchmark.runner import run_experiment

    faults.point(
        "worker.run", experiment=name, attempt=attempt, pid=os.getpid()
    )
    span_base = len(telemetry.spans)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    output = run_experiment(name, _CONTEXT)
    record = {
        "name": name,
        "output": output,
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "pid": os.getpid(),
        "attempt": attempt,
    }
    if telemetry.enabled:
        record["spans"] = spans_summary(telemetry.spans[span_base:])
        record["metrics"] = telemetry.metrics.snapshot()
    return record


def _exception_record(name: str, attempt: int, exc: BaseException) -> dict:
    return {
        "name": name,
        "failed": True,
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
        "pid": os.getpid(),
        "attempt": attempt,
    }


def _worker_main(
    name: str, attempt: int, conn, heartbeat_path: str, heartbeat_s: float
) -> None:
    """Forked worker entry point: run one experiment, pipe back one record.

    A daemon thread touches ``heartbeat_path`` every ``heartbeat_s`` so the
    parent can tell a long-running worker from a wedged one even when the
    main thread is stuck in a C extension (or an injected ``hang``).
    """
    stop = threading.Event()
    try:
        open(heartbeat_path, "wb").close()
    except OSError:
        pass
    else:
        def beat() -> None:
            while not stop.wait(heartbeat_s):
                try:
                    os.utime(heartbeat_path)
                except OSError:
                    return

        threading.Thread(target=beat, daemon=True, name="heartbeat").start()
    try:
        record = _run_one(name, attempt)
    except Exception as exc:  # deterministic failure: report, don't retry
        record = _exception_record(name, attempt, exc)
    stop.set()
    try:
        conn.send(record)
    finally:
        conn.close()


class _Task:
    """One in-flight worker: its process, result pipe, and liveness state."""

    __slots__ = ("name", "attempt", "process", "conn", "heartbeat",
                 "started", "record", "eof")

    def __init__(self, name, attempt, process, conn, heartbeat):
        self.name = name
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.started = time.monotonic()
        self.record = None
        self.eof = False

    def heartbeat_stale(self, stale_after: float) -> bool:
        try:
            age = time.time() - os.stat(self.heartbeat).st_mtime
        except OSError:
            # No heartbeat file (worker died before creating it, or an
            # unwritable tmpdir): only the hard timeout applies.
            return False
        return age > stale_after


def run_parallel(
    names: Sequence[str],
    context: BenchmarkContext,
    jobs: int,
    *,
    max_restarts: int = 1,
    worker_timeout_s: float | None = None,
    heartbeat_s: float = 1.0,
    warm: bool = True,
) -> Iterator[dict]:
    """Run experiments in ``jobs`` worker processes, yielding result (or
    failure) records in the order of ``names`` as they become available.

    Falls back to in-process serial execution when only one job is asked
    for or the platform cannot fork; in that mode an experiment exception
    becomes a failure record but crashes/hangs are not survivable.
    """
    global _CONTEXT
    names = list(names)
    if warm:
        warm_up(context)
    _CONTEXT = context
    try:
        if (
            jobs <= 1
            or len(names) <= 1
            or "fork" not in mp.get_all_start_methods()
        ):
            for name in names:
                try:
                    yield _run_one(name)
                except Exception as exc:
                    telemetry.warning(
                        "experiment.failed", experiment=name, error=str(exc)
                    )
                    record = _exception_record(name, 0, exc)
                    record["attempts"] = 1
                    yield record
            return
        yield from _run_forked(
            names, jobs, max_restarts, worker_timeout_s, heartbeat_s
        )
    finally:
        _CONTEXT = None


def _run_forked(
    names: list[str],
    jobs: int,
    max_restarts: int,
    worker_timeout_s: float | None,
    heartbeat_s: float,
) -> Iterator[dict]:
    ctx = mp.get_context("fork")
    stale_after = max(_MIN_STALE_S, _STALE_INTERVALS * heartbeat_s)
    heartbeat_dir = tempfile.mkdtemp(prefix="repro-bench-hb-")
    # pop() from the end → experiments start in canonical order.
    pending: list[tuple[str, int]] = [(name, 0) for name in reversed(names)]
    active: dict[object, _Task] = {}  # parent pipe end → task
    results: dict[str, dict] = {}
    next_index = 0

    def spawn(name: str, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        heartbeat = os.path.join(heartbeat_dir, f"{name}.{attempt}.hb")
        process = ctx.Process(
            target=_worker_main,
            args=(name, attempt, child_conn, heartbeat, heartbeat_s),
            name=f"repro-bench-{name}",
        )
        process.start()
        child_conn.close()
        active[parent_conn] = _Task(name, attempt, process, parent_conn, heartbeat)

    def reap(task: _Task, grace_s: float = 10.0) -> None:
        task.process.join(timeout=grace_s)
        if task.process.is_alive():
            task.process.kill()
            task.process.join(timeout=5.0)
        task.conn.close()
        try:
            os.unlink(task.heartbeat)
        except OSError:
            pass

    def retry_or_fail(task: _Task, reason: str) -> None:
        if task.attempt < max_restarts:
            telemetry.count("worker.restart")
            telemetry.warning(
                "worker.restarted", experiment=task.name,
                attempt=task.attempt + 1, reason=reason,
            )
            pending.append((task.name, task.attempt + 1))
        else:
            results[task.name] = {
                "name": task.name,
                "failed": True,
                "error": f"{reason} (after {task.attempt + 1} attempts)",
                "traceback": "",
                "attempts": task.attempt + 1,
            }

    try:
        while pending or active:
            while pending and len(active) < jobs:
                spawn(*pending.pop())
            _conn_wait(list(active), timeout=_POLL_S)
            now = time.monotonic()
            for conn, task in list(active.items()):
                # Drain here (not in the wait loop): a worker can send its
                # record and exit between the wait and this sweep, and it
                # must not be mistaken for a crash.
                if task.record is None and not task.eof:
                    try:
                        if conn.poll(0):
                            task.record = conn.recv()
                    except (EOFError, OSError):
                        task.eof = True
                if task.record is not None:
                    del active[conn]
                    reap(task)
                    record = dict(task.record)
                    record["attempts"] = task.attempt + 1
                    results[task.name] = record
                elif task.eof or not task.process.is_alive():
                    del active[conn]
                    reap(task, grace_s=5.0)
                    exitcode = task.process.exitcode
                    telemetry.warning(
                        "worker.died", experiment=task.name,
                        attempt=task.attempt, exitcode=exitcode,
                    )
                    retry_or_fail(
                        task,
                        f"worker died (exit code {exitcode}) before "
                        f"finishing {task.name!r}",
                    )
                else:
                    elapsed = now - task.started
                    reason = None
                    if worker_timeout_s is not None and elapsed > worker_timeout_s:
                        reason = (
                            f"worker exceeded the {worker_timeout_s:.0f}s "
                            f"timeout on {task.name!r}"
                        )
                    elif elapsed > stale_after and task.heartbeat_stale(stale_after):
                        reason = (
                            f"worker heartbeat stale for over "
                            f"{stale_after:.0f}s on {task.name!r}"
                        )
                    if reason is not None:
                        del active[conn]
                        task.process.kill()
                        reap(task, grace_s=5.0)
                        telemetry.warning(
                            "worker.hung", experiment=task.name,
                            attempt=task.attempt, reason=reason,
                        )
                        retry_or_fail(task, reason)
            while next_index < len(names) and names[next_index] in results:
                yield results.pop(names[next_index])
                next_index += 1
    finally:
        for task in active.values():
            task.process.kill()
        for task in active.values():
            task.process.join(timeout=5.0)
            task.conn.close()
        shutil.rmtree(heartbeat_dir, ignore_errors=True)
