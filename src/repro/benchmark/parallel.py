"""Parallel experiment engine behind ``repro-bench all --jobs N``.

Experiments are independent given the shared artifacts (every experiment
seeds fresh RNGs from ``context.seed``), so they can run in worker
processes.  A warm-up phase first materializes the artifacts most
experiments share — the corpus, the 80:20 split, and the paper's RF — in
the parent process; forked workers inherit them copy-on-write, and with an
:class:`~repro.cache.ArtifactCache` enabled they are also persisted for
later runs.  Each worker process runs exactly one experiment
(``maxtasksperchild=1``), so its telemetry span records cover that
experiment alone; the parent merges the per-worker summaries into the run
manifest under ``workers``.

Output determinism: results are yielded in the canonical experiment order
regardless of completion order, so the rendered experiment text is
byte-identical to a serial run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Iterator, Sequence

from repro.benchmark.context import BenchmarkContext
from repro.obs import telemetry
from repro.obs.export import spans_summary

#: Set in the parent just before forking; workers read it after the fork.
_CONTEXT: BenchmarkContext | None = None


def warm_up(context: BenchmarkContext) -> None:
    """Materialize the artifacts every worker needs before forking."""
    with telemetry.span("parallel.warmup"):
        context.corpus
        context.train  # builds the split
        context.our_rf
    telemetry.info("parallel.warmup_done", n_examples=context.n_examples)


def _run_one(name: str) -> dict:
    from repro.benchmark.runner import run_experiment

    span_base = len(telemetry.spans)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    output = run_experiment(name, _CONTEXT)
    record = {
        "name": name,
        "output": output,
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "pid": os.getpid(),
    }
    if telemetry.enabled:
        record["spans"] = spans_summary(telemetry.spans[span_base:])
        record["metrics"] = telemetry.metrics.snapshot()
    return record


def run_parallel(
    names: Sequence[str], context: BenchmarkContext, jobs: int
) -> Iterator[dict]:
    """Run experiments in ``jobs`` worker processes, yielding results in
    the order of ``names`` as they become available.

    Falls back to in-process serial execution when only one job is asked
    for or the platform cannot fork.
    """
    global _CONTEXT
    warm_up(context)
    if jobs <= 1 or len(names) <= 1 or "fork" not in mp.get_all_start_methods():
        _CONTEXT = context
        try:
            for name in names:
                yield _run_one(name)
        finally:
            _CONTEXT = None
        return
    _CONTEXT = context
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=jobs, maxtasksperchild=1) as pool:
            # imap preserves submission order while workers overlap
            yield from pool.imap(_run_one, names, chunksize=1)
    finally:
        _CONTEXT = None
