"""Experiment "tuning" — nested-CV grid search over the classical models.

Exercises the paper's Section 4.1 tuning protocol (and PR 5's cache-aware
grid search) end-to-end: logreg and rf are tuned on the shared train split
with small grids, reporting per-fold test scores, the selected params, and
the mean nested-CV score per model.

Sharding: tuning decomposes per ``(model, outer fold)`` cell
(:class:`TuningShards`) — folds are independent given the deterministic
splitter, so each cell runs :func:`repro.core.tuning.tune_classical_fold`
in any worker, and :func:`merge_tuning` reduces the fold records with
:func:`repro.core.tuning.reduce_tuning_folds` into exactly the serial
:class:`~repro.core.tuning.TuningResult`.  Every grid point a shard
computes is memoized through the artifact cache (kind ``"tune"``), so
shards never repeat each other's fits on a warm cache.
"""

from __future__ import annotations

from typing import Mapping

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.benchmark.sharding import Shardable
from repro.core.tuning import (
    TuningResult,
    reduce_tuning_folds,
    tune_classical_fold,
)

#: Models × grids this experiment tunes.  Deliberately small grids — the
#: experiment demonstrates the protocol (and keeps ``repro-bench all``
#: tractable); pass-through to Appendix B sizes happens in repro.core.
TUNING_MODELS = ("logreg", "rf")
TUNING_GRIDS: dict[str, dict] = {
    "logreg": {"C": [0.1, 1.0, 10.0]},
    "rf": {"n_estimators": [25, 50], "max_depth": [10, 25]},
}
TUNING_FOLDS = 3


def tuning_shard_ids() -> list[str]:
    """Canonical ``model/foldN`` cell ids, model-major."""
    return [
        f"{model}/fold{index}"
        for model in TUNING_MODELS
        for index in range(TUNING_FOLDS)
    ]


def run_tuning_shard(context: BenchmarkContext, shard_id: str) -> dict:
    """One ``(model, fold)`` cell: the fold's tuning record."""
    model, _, fold = shard_id.partition("/fold")
    if model not in TUNING_MODELS or not fold.isdigit():
        raise ValueError(f"unknown tuning shard {shard_id!r}")
    return tune_classical_fold(
        model,
        context.train,
        int(fold),
        param_grid=TUNING_GRIDS[model],
        n_folds=TUNING_FOLDS,
        random_state=context.seed,
    )


def merge_tuning(shards: Mapping[str, dict]) -> dict[str, TuningResult]:
    """Fold records → per-model :class:`TuningResult`, in canonical order."""
    missing = [sid for sid in tuning_shard_ids() if sid not in shards]
    if missing:
        raise ValueError(f"tuning merge missing shard(s): {missing}")
    return {
        model: reduce_tuning_folds(
            model,
            [shards[f"{model}/fold{i}"] for i in range(TUNING_FOLDS)],
        )
        for model in TUNING_MODELS
    }


def run_tuning(context: BenchmarkContext) -> dict[str, TuningResult]:
    """Serial path: every shard in canonical order, then the shared merge."""
    shards = {
        shard_id: run_tuning_shard(context, shard_id)
        for shard_id in tuning_shard_ids()
    }
    return merge_tuning(shards)


def render_tuning(results: dict[str, TuningResult]) -> str:
    rows = []
    for model in TUNING_MODELS:
        result = results[model]
        params = " ".join(
            f"{k}={result.best_params[k]}" for k in sorted(result.best_params)
        )
        rows.append(
            [
                model,
                params,
                " ".join(f"{s:.3f}" for s in result.fold_scores),
                f"{result.mean_score:.3f}",
            ]
        )
    return format_table(
        ["model", "best params", "fold test scores", "mean"],
        rows,
        title=(
            "\n== Tuning: nested-CV grid search on the train split "
            f"({TUNING_FOLDS} outer folds) =="
        ),
    )


class TuningShards(Shardable):
    """Shard the tuning experiment per ``(model, outer fold)`` cell."""

    name = "tuning"

    def shard_ids(self, context: BenchmarkContext) -> list[str]:
        return tuning_shard_ids()

    def run_shard(self, context: BenchmarkContext, shard_id: str):
        return run_tuning_shard(context, shard_id)

    def merge(self, context: BenchmarkContext, shards: Mapping[str, object]) -> str:
        return render_tuning(merge_tuning(shards))
