"""Experiment E1 — Table 1 (and Table 8): binarized class-specific metrics.

Compares the four industrial tools, Sherlock+rules, the rule baseline, and
the ML models (LogReg, CNN, Random Forest) on the held-out test set, with
one-vs-rest precision / recall / binarized accuracy / F1 per class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.vocabulary import TABLE1_CLASSES, tool_covers
from repro.ml.metrics import BinarizedMetrics, accuracy_score, binarized_metrics
from repro.types import FeatureType

#: Approaches reported in Table 1, in the paper's column order.
TABLE1_APPROACHES = (
    "tfdv",
    "pandas",
    "transmogrifai",
    "autogluon",
    "sherlock",
    "rules",
    "logreg",
    "cnn",
    "rf",
)

_ML_APPROACHES = ("logreg", "cnn", "rf")


@dataclass
class Table1Result:
    """metrics[approach][feature type] plus 9-class accuracy per approach."""

    metrics: dict[str, dict[FeatureType, BinarizedMetrics]]
    nine_class: dict[str, float]

    def cell(self, approach: str, feature_type: FeatureType) -> BinarizedMetrics | None:
        return self.metrics.get(approach, {}).get(feature_type)


def run_table1(context: BenchmarkContext) -> Table1Result:
    """Compute every Table 1 / Table 8 cell on the held-out test set."""
    test = context.test
    truth = test.labels
    predictions = context.tool_predictions(test)
    for name in _ML_APPROACHES:
        predictions[name] = context.model(name).predict(test.profiles)

    metrics: dict[str, dict[FeatureType, BinarizedMetrics]] = {}
    nine_class: dict[str, float] = {}
    for approach, preds in predictions.items():
        nine_class[approach] = accuracy_score(
            [t.value for t in truth], [p.value for p in preds]
        )
        per_class: dict[FeatureType, BinarizedMetrics] = {}
        for feature_type in TABLE1_CLASSES:
            if approach in ("tfdv", "pandas", "transmogrifai", "autogluon"):
                # blank cells: the tool's vocabulary cannot express the class
                if not tool_covers(approach, feature_type):
                    continue
            per_class[feature_type] = binarized_metrics(truth, preds, feature_type)
        metrics[approach] = per_class
    return Table1Result(metrics=metrics, nine_class=nine_class)


def render_table1(result: Table1Result) -> str:
    """Print Table 1's precision/recall/accuracy rows."""
    blocks = []
    for feature_type in TABLE1_CLASSES:
        rows = []
        for metric in ("precision", "recall", "accuracy", "f1"):
            row: list[object] = [metric]
            for approach in TABLE1_APPROACHES:
                cell = result.cell(approach, feature_type)
                row.append(None if cell is None else getattr(cell, metric))
            rows.append(row)
        blocks.append(
            format_table(
                ["metric", *TABLE1_APPROACHES],
                rows,
                title=f"\n== {feature_type.value} (binarized, held-out test) ==",
            )
        )
    acc_rows = [
        [approach, result.nine_class[approach]]
        for approach in TABLE1_APPROACHES
        if approach in result.nine_class
    ]
    blocks.append(
        format_table(
            ["approach", "9-class accuracy"],
            acc_rows,
            title="\n== Full 9-class accuracy ==",
        )
    )
    return "\n".join(blocks)
