"""Checkpoint/resume records for ``repro-bench all`` runs.

A run pointed at ``--run-dir DIR`` records each completed experiment as one
small JSON file under ``DIR/experiments/`` the moment it finishes.  Records
are written atomically (temp file + ``os.replace`` via
:func:`repro.obs.export.write_json`), so a crash — or a chaos plan killing
the whole process — can never leave a half-written record: an experiment is
either durably complete or not recorded at all.

``repro-bench all --run-dir DIR --resume`` then reloads the records and
skips the completed experiments, replaying their stored output verbatim so
the rendered run is byte-identical to an uninterrupted one.

Sharded experiments additionally checkpoint each completed *sub-task*
under ``DIR/shards/<experiment>/`` (:meth:`RunCheckpoint.record_shard`).
A resumed run reloads them with :meth:`RunCheckpoint.completed_shards`,
which validates that each record's stored parent experiment matches the
directory it was found in — a record that disagrees (hand-moved files,
colliding sanitized names) is discarded with a
``checkpoint.shard_misattributed`` warning rather than letting one
experiment resume from another's payloads.

Distributed runs (:mod:`repro.benchmark.queue`) add **attempt fencing**:
both writers accept an optional ``fence`` callable, evaluated immediately
before the atomic write.  A writer whose lease was stolen while it was
busy — a zombie — fails its fence, the write is skipped, and the event is
counted as ``checkpoint.stale_attempt``; the stealer's record (same bytes,
higher attempt) is the one that lands.  Writers also stamp the owning
worker id into the record so the merged run's provenance names who
produced each shard.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
from pathlib import Path

from repro.obs import telemetry
from repro.obs.export import write_json

#: Bumped if the record layout changes incompatibly; mismatched records are
#: ignored (the experiment simply reruns) rather than misread.
SCHEMA = 1


def _safe_component(name: str) -> str:
    """A filesystem-safe, collision-resistant file stem for a shard id.

    Shard ids may contain path separators (``"logreg/fold0"``) or any other
    punctuation; sanitizing can alias distinct ids, so a short digest of
    the raw id keeps stems unique.
    """
    stem = re.sub(r"[^A-Za-z0-9._-]", "_", name)
    digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
    return f"{stem}-{digest}"


class RunCheckpoint:
    """Per-experiment completion records under ``<run_dir>/experiments/``."""

    def __init__(self, run_dir: str | os.PathLike):
        self.run_dir = Path(run_dir)

    @property
    def experiments_dir(self) -> Path:
        return self.run_dir / "experiments"

    def path(self, name: str) -> Path:
        return self.experiments_dir / f"{name}.json"

    @property
    def shards_dir(self) -> Path:
        return self.run_dir / "shards"

    def shard_path(self, experiment: str, shard_id: str) -> Path:
        return (
            self.shards_dir
            / _safe_component(experiment)
            / f"{_safe_component(shard_id)}.json"
        )

    def record(self, rec: dict, *, fence=None) -> bool:
        """Durably mark one experiment complete (atomic write).

        ``rec`` is the engine's result record; the stored subset is what
        resume needs to replay the run: the rendered output plus timing
        provenance.  When ``fence`` is given it is consulted immediately
        before the write; a False verdict (the writer's lease was stolen)
        skips the write, counts ``checkpoint.stale_attempt``, and returns
        False.
        """
        stored = {
            "schema": SCHEMA,
            "name": rec["name"],
            "output": rec["output"],
            "wall_s": rec.get("wall_s"),
            "cpu_s": rec.get("cpu_s"),
            "pid": rec.get("pid"),
            "attempt": rec.get("attempt", 0),
            # Provenance link into the run's trace (additive; schema stays
            # unchanged — older readers ignore unknown keys).
            "trace_id": rec.get("trace_id"),
            "owner": rec.get("owner"),
        }
        if fence is not None and not fence():
            telemetry.count("checkpoint.stale_attempt")
            telemetry.warning(
                "checkpoint.stale_attempt",
                name=rec["name"], attempt=rec.get("attempt", 0),
                owner=rec.get("owner"),
            )
            return False
        self.experiments_dir.mkdir(parents=True, exist_ok=True)
        write_json(str(self.path(rec["name"])), stored)
        telemetry.count("checkpoint.recorded")
        return True

    def completed(self) -> dict[str, dict]:
        """name → stored record for every valid completion record on disk.

        Records that fail to parse (torn by an older non-atomic writer, or
        from a different schema) are skipped with a warning — the worst
        case is rerunning an experiment, never trusting garbage.
        """
        out: dict[str, dict] = {}
        if not self.experiments_dir.is_dir():
            return out
        for path in sorted(self.experiments_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                if stored.get("schema") != SCHEMA or "output" not in stored:
                    raise ValueError(f"unrecognized record schema in {path}")
            except (OSError, ValueError) as exc:
                telemetry.count("checkpoint.invalid")
                telemetry.warning(
                    "checkpoint.record_invalid", path=str(path), error=str(exc)
                )
                continue
            out[stored["name"]] = stored
        return out

    def record_shard(self, experiment: str, shard_id: str, payload,
                     meta: dict | None = None, *, fence=None) -> bool:
        """Durably mark one sub-task complete (atomic write).

        The payload (an arbitrary picklable object) is stored pickled +
        base64 with a sha256 checksum, tagged with the *parent experiment
        name* so resume can detect records that landed under the wrong
        experiment's directory.  ``fence`` behaves as in :meth:`record`:
        a stolen-lease writer's late record is skipped (returns False)
        and counted as ``checkpoint.stale_attempt``.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        stored = {
            "schema": SCHEMA,
            "experiment": experiment,
            "shard": shard_id,
            "payload": base64.b64encode(blob).decode("ascii"),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
        }
        if meta:
            stored.update(meta)
        if fence is not None and not fence():
            telemetry.count("checkpoint.stale_attempt")
            telemetry.warning(
                "checkpoint.stale_attempt",
                experiment=experiment, shard=shard_id,
                attempt=stored.get("attempt"), owner=stored.get("owner"),
            )
            return False
        path = self.shard_path(experiment, shard_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json(str(path), stored)
        telemetry.count("checkpoint.shard_recorded")
        return True

    _SHARD_META_KEYS = (
        "wall_s", "cpu_s", "pid", "attempt", "owner", "trace_id"
    )

    def completed_shards(self, experiment: str) -> dict[str, object]:
        """shard id → payload for the experiment's durable sub-tasks.

        Only load run dirs you produced yourself — payloads are pickles.
        Invalid records degrade to "not completed" (the shard reruns);
        records whose stored parent experiment disagrees with the directory
        they sit in are *discarded* and counted as
        ``checkpoint.shard_misattributed`` — replaying them would graft one
        experiment's payloads onto another.
        """
        return {
            shard_id: rec["payload"]
            for shard_id, rec in self.completed_shard_records(experiment).items()
        }

    def completed_shard_records(self, experiment: str) -> dict[str, dict]:
        """shard id → ``{"payload": obj, "meta": {...}}`` with validation.

        Same checksum/parent-attribution gauntlet as
        :meth:`completed_shards`, but also surfaces each record's timing
        and ownership metadata so a merging coordinator can aggregate
        wall/cpu time and attempt provenance across workers.
        """
        out: dict[str, dict] = {}
        shard_dir = self.shards_dir / _safe_component(experiment)
        if not shard_dir.is_dir():
            return out
        for path in sorted(shard_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                if stored.get("schema") != SCHEMA or "payload" not in stored:
                    raise ValueError(f"unrecognized shard record schema in {path}")
                blob = base64.b64decode(stored["payload"].encode("ascii"))
                if hashlib.sha256(blob).hexdigest() != stored.get("payload_sha256"):
                    raise ValueError(f"shard payload checksum mismatch in {path}")
            except (OSError, ValueError, KeyError) as exc:
                telemetry.count("checkpoint.invalid")
                telemetry.warning(
                    "checkpoint.shard_record_invalid",
                    path=str(path), error=str(exc),
                )
                continue
            if stored.get("experiment") != experiment:
                telemetry.count("checkpoint.shard_misattributed")
                telemetry.warning(
                    "checkpoint.shard_misattributed",
                    path=str(path), expected=experiment,
                    found=stored.get("experiment"),
                )
                continue
            out[stored["shard"]] = {
                "payload": pickle.loads(blob),
                "meta": {
                    key: stored.get(key) for key in self._SHARD_META_KEYS
                },
            }
        return out
