"""Checkpoint/resume records for ``repro-bench all`` runs.

A run pointed at ``--run-dir DIR`` records each completed experiment as one
small JSON file under ``DIR/experiments/`` the moment it finishes.  Records
are written atomically (temp file + ``os.replace`` via
:func:`repro.obs.export.write_json`), so a crash — or a chaos plan killing
the whole process — can never leave a half-written record: an experiment is
either durably complete or not recorded at all.

``repro-bench all --run-dir DIR --resume`` then reloads the records and
skips the completed experiments, replaying their stored output verbatim so
the rendered run is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs import telemetry
from repro.obs.export import write_json

#: Bumped if the record layout changes incompatibly; mismatched records are
#: ignored (the experiment simply reruns) rather than misread.
SCHEMA = 1


class RunCheckpoint:
    """Per-experiment completion records under ``<run_dir>/experiments/``."""

    def __init__(self, run_dir: str | os.PathLike):
        self.run_dir = Path(run_dir)

    @property
    def experiments_dir(self) -> Path:
        return self.run_dir / "experiments"

    def path(self, name: str) -> Path:
        return self.experiments_dir / f"{name}.json"

    def record(self, rec: dict) -> None:
        """Durably mark one experiment complete (atomic write).

        ``rec`` is the engine's result record; the stored subset is what
        resume needs to replay the run: the rendered output plus timing
        provenance.
        """
        stored = {
            "schema": SCHEMA,
            "name": rec["name"],
            "output": rec["output"],
            "wall_s": rec.get("wall_s"),
            "cpu_s": rec.get("cpu_s"),
            "pid": rec.get("pid"),
            "attempt": rec.get("attempt", 0),
        }
        self.experiments_dir.mkdir(parents=True, exist_ok=True)
        write_json(str(self.path(rec["name"])), stored)
        telemetry.count("checkpoint.recorded")

    def completed(self) -> dict[str, dict]:
        """name → stored record for every valid completion record on disk.

        Records that fail to parse (torn by an older non-atomic writer, or
        from a different schema) are skipped with a warning — the worst
        case is rerunning an experiment, never trusting garbage.
        """
        out: dict[str, dict] = {}
        if not self.experiments_dir.is_dir():
            return out
        for path in sorted(self.experiments_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                if stored.get("schema") != SCHEMA or "output" not in stored:
                    raise ValueError(f"unrecognized record schema in {path}")
            except (OSError, ValueError) as exc:
                telemetry.count("checkpoint.invalid")
                telemetry.warning(
                    "checkpoint.record_invalid", path=str(path), error=str(exc)
                )
                continue
            out[stored["name"]] = stored
        return out
