"""Experiment E11 — Table 17: full confusion matrices.

Actual class on rows, predicted on columns, for (A) the rule-based baseline,
(B) the Random Forest, and (C) Sherlock + mapping rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.ml.metrics import confusion_matrix
from repro.types import ALL_FEATURE_TYPES


@dataclass
class Table17Result:
    matrices: dict[str, np.ndarray]  # approach -> 9x9 confusion matrix

    def matrix(self, approach: str) -> np.ndarray:
        return self.matrices[approach]


def run_table17(context: BenchmarkContext) -> Table17Result:
    test = context.test
    truth = [label.value for label in test.labels]
    labels = [ft.value for ft in ALL_FEATURE_TYPES]

    columns = context.raw_columns(test)
    rules = context.tools()["rules"]
    predictions = {
        "rules": [rules.infer_column(c).value for c in columns],
        "rf": [p.value for p in context.our_rf.predict(test.profiles)],
        "sherlock": [
            p.value for p in context.sherlock.infer_profiles(test.profiles)
        ],
    }
    matrices = {
        name: confusion_matrix(truth, preds, labels=labels)
        for name, preds in predictions.items()
    }
    return Table17Result(matrices=matrices)


def render_table17(result: Table17Result) -> str:
    shorts = [ft.short for ft in ALL_FEATURE_TYPES]
    blocks = []
    for name, matrix in result.matrices.items():
        rows = [
            [shorts[i], *[int(v) for v in matrix[i]]]
            for i in range(len(shorts))
        ]
        blocks.append(
            format_table(
                ["actual \\ predicted", *shorts],
                rows,
                title=f"\n== Table 17 ({name}): confusion matrix ==",
            )
        )
    return "\n".join(blocks)
