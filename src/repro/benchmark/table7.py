"""Experiment E6 — Table 7: leave-datafile-out cross-validation.

"Stress-tests" the models on columns from entirely unseen source files:
files are split into folds (GroupKFold on the source file), so a test fold
never shares a file with training.  Reports train / validation / test
accuracy per model on the [X_stats, X2_name] feature set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_table
from repro.core.models import KNNModel
from repro.ml.model_selection import GroupKFold

TABLE7_MODELS = ("logreg", "svm", "rf", "knn")


@dataclass
class Table7Result:
    """accuracy[model] -> {train, validation, test} (mean over folds)."""

    accuracy: dict[str, dict[str, float]] = field(default_factory=dict)
    n_splits: int = 0


def run_table7(
    context: BenchmarkContext,
    n_splits: int = 5,
    models: tuple[str, ...] = TABLE7_MODELS,
) -> Table7Result:
    dataset = context.dataset
    groups = dataset.groups
    splitter = GroupKFold(n_splits=n_splits, random_state=context.seed)
    result = Table7Result(n_splits=n_splits)
    for model_name in models:
        train_scores, val_scores, test_scores = [], [], []
        for train_idx, test_idx in splitter.split(groups):
            # carve a validation slice out of the training files (20% of files)
            train_groups = sorted({groups[i] for i in train_idx})
            rng = np.random.default_rng(context.seed)
            rng.shuffle(train_groups)
            n_val_groups = max(1, len(train_groups) // 4)
            val_files = set(train_groups[:n_val_groups])
            fit_idx = [i for i in train_idx if groups[i] not in val_files]
            val_idx = [i for i in train_idx if groups[i] in val_files]

            fit_split = dataset.subset(fit_idx)
            val_split = dataset.subset(val_idx)
            test_split = dataset.subset(test_idx)

            if model_name == "knn":
                model = KNNModel()
            else:
                model = context._build_model(model_name, ("stats", "name"))
            model.fit(fit_split)
            if model_name != "knn":  # paper reports no train acc for k-NN
                train_scores.append(model.score(fit_split))
            val_scores.append(model.score(val_split))
            test_scores.append(model.score(test_split))
        result.accuracy[model_name] = {
            "train": float(np.mean(train_scores)) if train_scores else float("nan"),
            "validation": float(np.mean(val_scores)),
            "test": float(np.mean(test_scores)),
        }
    return result


def render_table7(result: Table7Result) -> str:
    rows = []
    for model_name, cells in result.accuracy.items():
        rows.append(
            [model_name, cells["train"], cells["validation"], cells["test"]]
        )
    return format_table(
        ["model", "train", "validation", "test"],
        rows,
        title=(
            f"\n== Table 7: leave-datafile-out {result.n_splits}-fold CV "
            "on [X_stats, X2_name] =="
        ),
    )
