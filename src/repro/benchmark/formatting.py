"""ASCII table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a padded ASCII table; floats print with 3 decimals."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        if cell is None:
            return "-"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_percent(value: float) -> str:
    """0.923 -> "92.3%"."""
    return f"{100.0 * value:.1f}%"
