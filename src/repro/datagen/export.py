"""Materialize a labeled corpus as raw CSV files + a labels manifest.

The paper releases its 1,240 raw CSV files and the labeled metadata on
GitHub; this module produces the same on-disk layout for our synthetic
corpus and can load it back, so the benchmark can be shared as plain files.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.core.featurize import profile_column
from repro.datagen.corpus import LabeledCorpus
from repro.tabular.csv_io import read_csv, write_csv
from repro.types import FeatureType

MANIFEST_NAME = "labels.csv"
RAW_DIR_NAME = "raw"


def export_corpus(corpus: LabeledCorpus, directory: str | os.PathLike) -> Path:
    """Write ``raw/<file>.csv`` per source file plus a labels manifest.

    Returns the manifest path.  The manifest has one row per labeled column:
    ``file,column,label``.
    """
    root = Path(directory)
    raw_dir = root / RAW_DIR_NAME
    raw_dir.mkdir(parents=True, exist_ok=True)
    for table in corpus.files:
        write_csv(table, raw_dir / f"{table.name}.csv")
    manifest = root / MANIFEST_NAME
    with open(manifest, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["file", "column", "label"])
        for (file_name, column_name), label in sorted(corpus.truth.items()):
            writer.writerow([file_name, column_name, label.value])
    return manifest


def load_corpus(directory: str | os.PathLike) -> LabeledCorpus:
    """Load a corpus previously written by :func:`export_corpus`.

    Profiles are rebuilt deterministically (first five distinct samples),
    so a loaded corpus is suitable for training/evaluation but will not be
    bit-identical to the original random-sampled profiles.
    """
    root = Path(directory)
    manifest = root / MANIFEST_NAME
    if not manifest.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} manifest under {root}")

    truth: dict[tuple[str, str], FeatureType] = {}
    with open(manifest, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            truth[(row["file"], row["column"])] = FeatureType.from_label(
                row["label"]
            )

    corpus = LabeledCorpus(truth=truth)
    raw_dir = root / RAW_DIR_NAME
    for path in sorted(raw_dir.glob("*.csv")):
        table = read_csv(path)
        corpus.files.append(table)
        for column in table:
            key = (table.name, column.name)
            if key not in truth:
                continue
            corpus.dataset.profiles.append(
                profile_column(
                    column, source_file=table.name, label=truth[key]
                )
            )
    return corpus
