"""The synthetic benchmark labeled corpus.

Substitutes the paper's ML Data Prep Zoo dataset (9,921 hand-labeled columns
from 1,240 raw CSV files).  The generator emits raw files (Tables) whose
columns are drawn from the nine class generators with the paper's class
distribution (Section 2.5), then base-featurizes every column into a
:class:`~repro.core.featurize.LabeledDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.featurize import (
    _KERNEL_ERRORS,
    N_SAMPLE_VALUES,
    ColumnProfile,
    LabeledDataset,
    ProfileError,
    profile_columns,
)
from repro.core.stats import StatsScanCache
from repro.datagen.values import generate_column
from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import ALL_FEATURE_TYPES, PAPER_CLASS_DISTRIBUTION, FeatureType

PAPER_N_EXAMPLES = 9921
PAPER_N_FILES = 1240


@dataclass
class LabeledCorpus:
    """Raw files plus the base-featurized labeled dataset over their columns."""

    files: list[Table] = field(default_factory=list)
    dataset: LabeledDataset = field(default_factory=LabeledDataset)
    #: ground-truth label per (file name, column name)
    truth: dict[tuple[str, str], FeatureType] = field(default_factory=dict)

    @property
    def n_examples(self) -> int:
        return len(self.dataset)

    @property
    def n_files(self) -> int:
        return len(self.files)


def sample_class_sequence(
    n_examples: int, rng: np.random.Generator
) -> list[FeatureType]:
    """Class labels following the paper's distribution, in random order.

    Uses exact proportional allocation (largest remainder) so even small
    corpora contain every class.
    """
    quotas: dict[FeatureType, float] = {
        ftype: PAPER_CLASS_DISTRIBUTION[ftype] * n_examples
        for ftype in ALL_FEATURE_TYPES
    }
    counts = {ftype: int(q) for ftype, q in quotas.items()}
    remainder = n_examples - sum(counts.values())
    by_fraction = sorted(
        ALL_FEATURE_TYPES, key=lambda ft: quotas[ft] - counts[ft], reverse=True
    )
    for ftype in by_fraction[:remainder]:
        counts[ftype] += 1
    labels: list[FeatureType] = []
    for ftype, count in counts.items():
        labels.extend([ftype] * count)
    rng.shuffle(labels)
    return labels


def _profile_columns_streamed(
    columns: list[Column],
    source_file: str,
    labels: list[FeatureType],
    rng: np.random.Generator,
    scan_cache: StatsScanCache,
    chunk_rows: int = 2048,
) -> list[ColumnProfile]:
    """Streamed (``repro.sketch``) counterpart of :func:`profile_columns`.

    Sample values are drawn per column in table order first, so the rng
    stream is identical to the batch path; cells then feed per-column
    sketches chunk by chunk.  The profiles differ from the batch kernel's
    only by the documented float-reassociation delta on
    ``mean_value``/``std_value``.
    """
    from repro.sketch.column import ColumnSketch

    samples_list: list[list[str]] = []
    for column in columns:
        with telemetry.span("featurize.column", column=column.name):
            samples_list.append(column.sample_distinct(N_SAMPLE_VALUES, rng))
    profiles: list[ColumnProfile] = []
    for column, samples, label in zip(columns, samples_list, labels):
        sketch = ColumnSketch(column.name)
        cells = column.cells
        try:
            for start in range(0, len(cells), chunk_rows):
                sketch.update(
                    cells[start:start + chunk_rows], scan_cache=scan_cache
                )
            stats = sketch.finalize(
                samples=samples, probe_cache=scan_cache.probe_cache
            )
        except _KERNEL_ERRORS as exc:
            raise ProfileError(
                f"cannot featurize column {column.name!r} of "
                f"{source_file!r}: {type(exc).__name__}: {exc}"
            ) from exc
        profiles.append(
            ColumnProfile(
                name=column.name,
                samples=samples,
                stats=stats,
                source_file=source_file,
                label=label,
            )
        )
    telemetry.count("featurize.columns", len(profiles))
    return profiles


def generate_corpus(
    n_examples: int = 2500,
    seed: int = 0,
    min_rows: int = 40,
    max_rows: int = 200,
    min_cols: int = 4,
    max_cols: int = 12,
    stream: bool = False,
) -> LabeledCorpus:
    """Generate a labeled corpus of raw files.

    ``n_examples`` counts columns (the paper's full scale is 9,921; the
    default is laptop-friendly).  Columns are grouped into files of
    ``min_cols..max_cols`` columns sharing a row count, mirroring how the
    paper's examples come from whole CSV files.

    ``stream=True`` featurizes through the :mod:`repro.sketch` streaming
    kernel instead of ``compute_stats_batch`` — same samples (identical rng
    stream), same stats up to the documented ulp-level
    ``mean_value``/``std_value`` delta.  Used by the streamed goldens check
    to pin the parity of the two paths end to end.
    """
    if n_examples < 50:
        raise ValueError("corpus needs at least 50 examples to cover 9 classes")
    rng = np.random.default_rng(seed)
    labels = sample_class_sequence(n_examples, rng)

    corpus = LabeledCorpus()
    scan_cache = StatsScanCache()  # dedup value scans across the whole corpus
    cursor = 0
    file_index = 0
    while cursor < len(labels):
        n_cols = int(rng.integers(min_cols, max_cols + 1))
        n_cols = min(n_cols, len(labels) - cursor)
        n_rows = int(rng.integers(min_rows, max_rows + 1))
        file_name = f"file_{file_index:05d}"
        columns: list[Column] = []
        used_names: set[str] = set()
        for label in labels[cursor : cursor + n_cols]:
            generated = generate_column(label, rng, n_rows)
            name = generated.name
            while name in used_names:  # headers must be unique within a file
                name = f"{generated.name}_{int(rng.integers(100))}"
            used_names.add(name)
            columns.append(Column(name, generated.cells))
            corpus.truth[(file_name, name)] = label
        table = Table(columns, name=file_name)
        corpus.files.append(table)
        if stream:
            file_profiles = _profile_columns_streamed(
                list(table),
                source_file=file_name,
                labels=list(labels[cursor : cursor + n_cols]),
                rng=rng,
                scan_cache=scan_cache,
            )
        else:
            file_profiles = profile_columns(
                list(table),
                source_file=file_name,
                labels=list(labels[cursor : cursor + n_cols]),
                rng=rng,
                scan_cache=scan_cache,
            )
        corpus.dataset.profiles.extend(file_profiles)
        cursor += n_cols
        file_index += 1
    return corpus


def paper_scale_corpus(seed: int = 0) -> LabeledCorpus:
    """The full 9,921-example corpus at the paper's scale."""
    return generate_corpus(n_examples=PAPER_N_EXAMPLES, seed=seed)
