"""Word lists used by the synthetic column generators.

These lexicons give generated columns realistic surface forms: English
filler words for sentences, real-world entity domains (countries, states,
cities, colors...), measurement units, and name fragments.
"""

from __future__ import annotations

WORDS = (
    "time year people way day man thing woman life child world school state "
    "family student group country problem hand part place case week company "
    "system program question work government number night point home water "
    "room mother area money story fact month lot right study book eye job "
    "word business issue side kind head house service friend father power "
    "hour game line end member law car city community name president team "
    "minute idea body information back parent face others level office door "
    "health person art war history party result change morning reason "
    "research girl guy moment air teacher force education"
).split()

ADJECTIVES = (
    "good new first last long great little own other old right big high "
    "different small large next early young important few public bad same "
    "able quick bright quiet heavy light strong weak warm cool rare common"
).split()

VERBS = (
    "be have do say get make go know take see come think look want give "
    "use find tell ask work seem feel try leave call moved ran built grew "
    "wrote sold bought kept held met paid sent won lost read"
).split()

COUNTRIES = (
    "Argentina Australia Brazil Canada China Denmark Egypt France Germany "
    "India Indonesia Italy Japan Kenya Mexico Netherlands Nigeria Norway "
    "Pakistan Peru Poland Portugal Russia Spain Sweden Switzerland Thailand "
    "Turkey Ukraine Uruguay Vietnam Chile Colombia Finland Greece Hungary "
    "Ireland Israel Morocco Philippines"
).split()

COUNTRY_CODES = (
    "AR AU BR CA CN DK EG FR DE IN ID IT JP KE MX NL NG NO PK PE PL PT RU "
    "ES SE CH TH TR UA UY VN CL CO FI GR HU IE IL MA PH US GB"
).split()

US_STATES = (
    "Alabama Alaska Arizona Arkansas California Colorado Connecticut "
    "Delaware Florida Georgia Hawaii Idaho Illinois Indiana Iowa Kansas "
    "Kentucky Louisiana Maine Maryland Massachusetts Michigan Minnesota "
    "Mississippi Missouri Montana Nebraska Nevada Ohio Oklahoma Oregon "
    "Pennsylvania Tennessee Texas Utah Vermont Virginia Washington "
    "Wisconsin Wyoming"
).split()

STATE_CODES = (
    "AL AK AZ AR CA CO CT DE FL GA HI ID IL IN IA KS KY LA ME MD MA MI MN "
    "MS MO MT NE NV OH OK OR PA TN TX UT VT VA WA WI WY NY"
).split()

CITIES = (
    "Springfield Riverside Franklin Greenville Bristol Clinton Fairview "
    "Salem Madison Georgetown Arlington Ashland Dover Oxford Jackson "
    "Burlington Manchester Milton Newport Auburn Centerville Clayton "
    "Dayton Lexington Milford"
).split()

FIRST_NAMES = (
    "James Mary Robert Patricia John Jennifer Michael Linda David Elizabeth "
    "William Barbara Richard Susan Joseph Jessica Thomas Sarah Charles Karen "
    "Christopher Lisa Daniel Nancy Matthew Betty Anthony Sandra Mark Ashley "
    "Priya Wei Ahmed Fatima Carlos Sofia Yuki Olga Kwame Amara"
).split()

LAST_NAMES = (
    "Smith Johnson Williams Brown Jones Garcia Miller Davis Rodriguez "
    "Martinez Hernandez Lopez Gonzalez Wilson Anderson Thomas Taylor Moore "
    "Jackson Martin Lee Perez Thompson White Harris Sanchez Clark Ramirez "
    "Lewis Robinson Patel Kim Nguyen Chen Singh Kumar Ali Khan Osei Okafor"
).split()

COLORS = "red blue green yellow purple orange black white gray brown pink teal".split()

PRODUCT_TYPES = (
    "electronics furniture clothing grocery toys books sports beauty "
    "automotive garden office jewelry footwear appliances"
).split()

DEPARTMENTS = (
    "sales marketing engineering finance hr legal operations support "
    "research design procurement logistics"
).split()

UNITS = "kg lbs. cm mm km mi Mhz Ghz GB MB kb hrs min sec mph kmh".split()

CURRENCIES = "USD EUR GBP INR JPY AUD CAD BRL".split()

GENRES = (
    "Action Comedy Drama Horror Romance Thriller Documentary Animation "
    "Fantasy Mystery Western Musical Crime Adventure Biography"
).split()

TLDS = "com org net io edu gov co.uk de jp".split()

DOMAIN_WORDS = (
    "data shop cloud media tech labs hub portal market store news blog "
    "world app info science open"
).split()

WEEKDAYS = "Mon Tue Wed Thu Fri Sat Sun".split()

MONTHS_SHORT = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec".split()

MONTHS_LONG = (
    "January February March April May June July August September October "
    "November December"
).split()

GRADES = ["A", "B", "C", "D", "F", "A+", "B-", "C+"]

LIKERT = [
    "strongly agree", "agree", "neutral", "disagree", "strongly disagree",
]

STREET_SUFFIXES = "St Ave Blvd Rd Ln Dr Ct Way".split()
