"""Column-name rendering: casing styles, cryptic names, survey codes.

Real CSV headers mix snake_case, camelCase, Title Case, spaces, and
abbreviations; some are outright meaningless ("ad744", "xyz").  The
generators here produce that surface diversity so name-based features face
realistic input.
"""

from __future__ import annotations

import numpy as np

Rng = np.random.Generator

_CONSONANTS = "bcdfghjklmnpqrstvwxz"
_VOWELS = "aeiou"


def render_name(rng: Rng, base: str) -> str:
    """Render a snake_case base name in one of several header styles."""
    tokens = base.split("_")
    style = int(rng.integers(6))
    if style == 0:  # snake_case
        name = "_".join(tokens)
    elif style == 1:  # camelCase
        name = tokens[0] + "".join(t.capitalize() for t in tokens[1:])
    elif style == 2:  # TitleCase
        name = "".join(t.capitalize() for t in tokens)
    elif style == 3:  # Title Words
        name = " ".join(t.capitalize() for t in tokens)
    elif style == 4:  # UPPER_SNAKE
        name = "_".join(t.upper() for t in tokens)
    else:  # as-is lowercase joined
        name = "".join(tokens)
    if rng.random() < 0.12:  # occasional numeric suffix: temperature2
        name += str(int(rng.integers(1, 30)))
    return name


def cryptic_name(rng: Rng) -> str:
    """A meaningless short identifier like "ad744" or "xq17"."""
    length = int(rng.integers(2, 5))
    letters = "".join(
        (_CONSONANTS if i % 2 == 0 else _VOWELS)[
            int(rng.integers(len(_CONSONANTS if i % 2 == 0 else _VOWELS)))
        ]
        for i in range(length)
    )
    digits = str(int(rng.integers(1, 10000)))
    if rng.random() < 0.3:
        return letters
    return letters + digits


def survey_name(rng: Rng) -> str:
    """Survey-style headers like "q19TalToolResumeScreen"."""
    question = f"q{int(rng.integers(1, 60))}"
    fragments = ["Tal", "Tool", "Resume", "Screen", "Emp", "Ref", "Src",
                 "Chk", "Ans", "Resp", "Opt"]
    k = int(rng.integers(2, 4))
    picked = "".join(
        fragments[int(rng.integers(len(fragments)))] for _ in range(k)
    )
    return question + picked
