"""Per-class synthetic column generators.

Every generator emits a :class:`GeneratedColumn` — a column name, raw string
cells, and its ground-truth feature type.  Each of the nine classes has
several *styles* so the corpus covers the surface diversity the paper's
labeled dataset has, including the ambiguities that make the task hard:

- Categorical encoded as integers (zip codes, ordinal codes, years)
- Not-Generalizable primary keys stored as integers
- Datetime in formats rule-based tools miss (compact YYYYMMDD)
- Numeric columns with cryptic names (confusable with Context-Specific)
- Context-Specific integers with heavy missingness
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datagen import lexicon
from repro.datagen.colnames import (
    cryptic_name,
    render_name,
    survey_name,
)
from repro.types import FeatureType

Rng = np.random.Generator


@dataclass
class GeneratedColumn:
    """One synthetic raw column with its ground-truth label."""

    name: str
    cells: list[str | None]
    feature_type: FeatureType
    style: str


def _inject_missing(cells: list[str | None], rate: float, rng: Rng) -> list[str | None]:
    if rate <= 0.0:
        return cells
    mask = rng.random(len(cells)) < rate
    token_pool = ["", "NA", "NaN", "null", "?"]
    token = token_pool[int(rng.integers(len(token_pool)))]
    return [token if drop else cell for cell, drop in zip(cells, mask)]


def _pick(rng: Rng, pool) -> str:
    return pool[int(rng.integers(len(pool)))]


def _missing_rate(rng: Rng, low: float = 0.0, high: float = 0.25) -> float:
    """Most columns are complete; a minority have substantial missingness."""
    if rng.random() < 0.6:
        return 0.0
    return float(rng.uniform(low, high))


# --------------------------------------------------------------------------
# Numeric
# --------------------------------------------------------------------------
def numeric_float(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["price", "temperature", "score", "ratio", "weight",
                       "height", "rate", "amount", "balance", "distance"])
    suffix = _pick(rng, ["", "", "_avg", "_total", "_jan", "_feb", "_usd", "_cm"])
    name = render_name(rng, base + suffix)
    loc = rng.uniform(-50, 500)
    scale = rng.uniform(0.5, 80)
    decimals = int(rng.integers(1, 5))
    cells = [f"{rng.normal(loc, scale):.{decimals}f}" for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "float")


def numeric_int(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["salary", "age", "count", "quantity", "population",
                       "views", "steps", "points", "sales", "units_sold"])
    name = render_name(rng, base)
    low = int(rng.integers(0, 1000))
    high = low + int(rng.integers(50, 100000))
    cells = [str(int(rng.integers(low, high))) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "int")


def numeric_cryptic(rng: Rng, n: int) -> GeneratedColumn:
    """Numeric with a cryptic-but-real name and heavy missingness.

    Mirrors the paper's error example A (s1p1c2area: Numeric, 45% NaN) —
    these get confused with Context-Specific.
    """
    name = cryptic_name(rng) + _pick(rng, ["area", "len", "val", "cnt"])
    cells = [str(int(rng.integers(0, 500))) for _ in range(n)]
    cells = _inject_missing(cells, float(rng.uniform(0.3, 0.55)), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "cryptic_int")


def numeric_int_lowdomain(rng: Rng, n: int) -> GeneratedColumn:
    """Numeric integers with small domains (pixel counts, children, visits).

    The paper's MFeat case: genuinely Numeric, but the low domain size makes
    models (and humans) hesitate between Numeric and Categorical.
    """
    base = _pick(rng, ["children", "visits", "rooms", "doors", "goals",
                       "errors", "attempts", "pixels", "siblings"])
    name = render_name(rng, base)
    cap = int(rng.integers(5, 30))
    cells = [str(int(rng.integers(0, cap))) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "int_lowdomain")


def numeric_percentlike(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["pct", "share", "fraction", "proportion", "percent"])
    qualifier = _pick(rng, lexicon.WORDS)
    name = render_name(rng, f"{base}_{qualifier}")
    cells = [f"{rng.uniform(0, 100):.2f}" for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "percent_float")


# --------------------------------------------------------------------------
# Categorical
# --------------------------------------------------------------------------
def categorical_string(rng: Rng, n: int) -> GeneratedColumn:
    base, domain = _pick(
        rng,
        [
            ("gender", ["M", "F"]),
            ("color", lexicon.COLORS),
            ("country", lexicon.COUNTRIES),
            ("state", lexicon.US_STATES),
            ("city", lexicon.CITIES),
            ("department", lexicon.DEPARTMENTS),
            ("product_type", lexicon.PRODUCT_TYPES),
            ("grade", lexicon.GRADES),
            ("day_of_week", lexicon.WEEKDAYS),
            ("status", ["active", "inactive", "pending", "closed"]),
            ("churn", ["Yes", "No"]),
            ("response", lexicon.LIKERT),
        ],
    )
    name = render_name(rng, base)
    k = min(len(domain), int(rng.integers(2, len(domain) + 1)))
    chosen = list(rng.choice(domain, size=k, replace=False))
    cells = [str(_pick(rng, chosen)) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "string")


def categorical_int_code(rng: Rng, n: int) -> GeneratedColumn:
    """Integer-encoded categories — the canonical semantic-gap case."""
    base = _pick(rng, ["zip_code", "item_code", "state_code", "region_id",
                       "class_label", "level", "category_code", "store_id",
                       "dept_code", "plan_code"])
    name = render_name(rng, base)
    if "zip" in base:
        domain = [f"{int(rng.integers(10000, 99999))}" for _ in range(30)]
    else:
        width = int(rng.integers(1, 4))
        domain = [
            str(int(rng.integers(0, 10**width)))
            for _ in range(int(rng.integers(2, 15)))
        ]
        if rng.random() < 0.3:  # leading-zero codes like "005"
            domain = [d.zfill(3) for d in domain]
    cells = [_pick(rng, domain) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "int_code")


def categorical_ordinal_year(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["year", "model_year", "season_year"]))
    start = int(rng.integers(1960, 2010))
    span = int(rng.integers(3, 20))
    cells = [str(start + int(rng.integers(span))) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "ordinal_year")


def categorical_rank(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["rank", "tier", "priority", "rating"]))
    k = int(rng.integers(2, 8))
    cells = [str(1 + int(rng.integers(k))) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "ordinal_rank")


def categorical_large_domain(rng: Rng, n: int) -> GeneratedColumn:
    """Large-domain categoricals (100+ levels) — confusable with NG/CS."""
    base = _pick(rng, ["tenure_status", "occupation", "species", "title",
                       "affiliation", "collection"])
    name = render_name(rng, base)
    domain_size = int(rng.integers(40, 150))
    domain = [
        f"{_pick(rng, lexicon.ADJECTIVES)} {_pick(rng, lexicon.WORDS)}"
        for _ in range(domain_size)
    ]
    cells = [_pick(rng, domain) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "large_domain")


def categorical_names(rng: Rng, n: int) -> GeneratedColumn:
    """Coded real-world entities with multi-token string values."""
    name = render_name(rng, _pick(rng, ["team", "artist_name", "brand", "club"]))
    domain = [
        f"{_pick(rng, lexicon.FIRST_NAMES)} {_pick(rng, lexicon.LAST_NAMES)}"
        for _ in range(int(rng.integers(4, 20)))
    ]
    cells = [_pick(rng, domain) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "multi_token")


def numeric_scientific(rng: Rng, n: int) -> GeneratedColumn:
    """Scientific-notation measurements (sensor dumps, chem assays)."""
    base = _pick(rng, ["concentration", "intensity", "flux", "dose"])
    name = render_name(rng, base)
    exponent = int(rng.integers(-8, 9))
    cells = [f"{rng.uniform(1, 10):.3f}e{exponent:+03d}" for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.NUMERIC, "scientific")


def categorical_boolean(rng: Rng, n: int) -> GeneratedColumn:
    """Boolean-ish flags: true/false, Y/N, 0/1 with a flag-like name."""
    base = _pick(rng, ["is_active", "has_children", "subscribed", "opt_in",
                       "verified", "smoker"])
    name = render_name(rng, base)
    domain = _pick(rng, [["true", "false"], ["Y", "N"], ["TRUE", "FALSE"],
                         ["yes", "no"]])
    cells = [_pick(rng, domain) for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng), rng)
    return GeneratedColumn(name, cells, FeatureType.CATEGORICAL, "boolean")


def embedded_phone(rng: Rng, n: int) -> GeneratedColumn:
    """Phone-number-shaped values: digits wrapped in separators."""
    name = render_name(rng, _pick(rng, ["phone", "contact_number", "fax"]))
    cells = [
        f"({int(rng.integers(200, 999))}) {int(rng.integers(200, 999))}-"
        f"{int(rng.integers(1000, 9999))}"
        for _ in range(n)
    ]
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.EMBEDDED_NUMBER, "phone")


def cs_email(rng: Rng, n: int) -> GeneratedColumn:
    """E-mail columns: unique personal identifiers needing custom handling."""
    name = render_name(rng, _pick(rng, ["email", "contact_email", "user_email"]))
    cells = [
        f"{_pick(rng, lexicon.FIRST_NAMES).lower()}."
        f"{_pick(rng, lexicon.LAST_NAMES).lower()}{int(rng.integers(1000))}"
        f"@{_pick(rng, lexicon.DOMAIN_WORDS)}.{_pick(rng, ['com', 'org', 'net'])}"
        for _ in range(n)
    ]
    cells = _inject_missing(cells, _missing_rate(rng, high=0.2), rng)
    return GeneratedColumn(name, cells, FeatureType.CONTEXT_SPECIFIC, "email")


# --------------------------------------------------------------------------
# Datetime
# --------------------------------------------------------------------------
def _random_date(rng: Rng) -> tuple[int, int, int]:
    return int(rng.integers(1950, 2024)), int(rng.integers(1, 13)), int(rng.integers(1, 29))


def datetime_column(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["hire_date", "birth_date", "created_at", "order_date",
                       "start", "end", "timestamp", "last_login", "date",
                       "updated_on", "event_time"])
    name = render_name(rng, base)
    fmt = _pick(
        rng,
        ["iso", "us_slash", "eu_slash", "long", "compact", "time", "iso_ts", "mon_year"],
    )
    cells = []
    for _ in range(n):
        year, month, day = _random_date(rng)
        hour, minute, sec = (int(rng.integers(24)), int(rng.integers(60)),
                             int(rng.integers(60)))
        if fmt == "iso":
            cells.append(f"{year:04d}-{month:02d}-{day:02d}")
        elif fmt == "us_slash":
            cells.append(f"{month}/{day}/{year}")
        elif fmt == "eu_slash":
            cells.append(f"{day:02d}/{month:02d}/{year}")
        elif fmt == "long":
            cells.append(f"{lexicon.MONTHS_LONG[month - 1]} {day}, {year}")
        elif fmt == "compact":
            cells.append(f"{year:04d}{month:02d}{day:02d}")
        elif fmt == "time":
            cells.append(f"{hour:02d}:{minute:02d}:{sec:02d}")
        elif fmt == "iso_ts":
            cells.append(
                f"{year:04d}-{month:02d}-{day:02d} {hour:02d}:{minute:02d}:{sec:02d}"
            )
        else:  # mon_year, e.g. "May-07"
            cells.append(f"{lexicon.MONTHS_SHORT[month - 1]}-{year % 100:02d}")
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.DATETIME, f"date_{fmt}")


# --------------------------------------------------------------------------
# Sentence
# --------------------------------------------------------------------------
def sentence_short(rng: Rng, n: int) -> GeneratedColumn:
    """Short free-text titles ("Battle of Riverrun") — confusable with NG/CA."""
    base = _pick(rng, ["name", "title", "headline", "event"])
    name = render_name(rng, base)
    cells = []
    for _ in range(n):
        length = int(rng.integers(2, 6))
        words = [_pick(rng, lexicon.WORDS).capitalize() for _ in range(length)]
        cells.append(" ".join(words))
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.SENTENCE, "short_text")


def sentence_column(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["review", "description", "comment", "notes", "summary",
                       "text", "abstract", "feedback", "requirement"])
    name = render_name(rng, base)
    cells = []
    for _ in range(n):
        length = int(rng.integers(6, 40))
        words = []
        for position in range(length):
            roll = rng.random()
            if roll < 0.25:
                words.append(_pick(rng, ("the a an this that its of in on to "
                                         "for with and but or is was").split()))
            elif roll < 0.5:
                words.append(_pick(rng, lexicon.ADJECTIVES))
            elif roll < 0.75:
                words.append(_pick(rng, lexicon.WORDS))
            else:
                words.append(_pick(rng, lexicon.VERBS))
        sentence = " ".join(words).capitalize() + "."
        cells.append(sentence)
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.SENTENCE, "prose")


# --------------------------------------------------------------------------
# URL
# --------------------------------------------------------------------------
def url_column(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["url", "link", "website", "homepage", "source_url",
                       "image_url", "profile_link"])
    name = render_name(rng, base)
    cells = []
    for _ in range(n):
        protocol = _pick(rng, ["http", "https", "https", "https"])
        domain = _pick(rng, lexicon.DOMAIN_WORDS) + _pick(rng, lexicon.DOMAIN_WORDS)
        tld = _pick(rng, lexicon.TLDS)
        path = ""
        if rng.random() < 0.7:
            depth = int(rng.integers(1, 4))
            path = "/" + "/".join(
                _pick(rng, lexicon.WORDS) for _ in range(depth)
            )
            if rng.random() < 0.3:
                path += f"?id={int(rng.integers(1, 100000))}"
        cells.append(f"{protocol}://www.{domain}.{tld}{path}")
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.URL, "url")


# --------------------------------------------------------------------------
# Embedded Number
# --------------------------------------------------------------------------
def embedded_number_column(rng: Rng, n: int) -> GeneratedColumn:
    style = _pick(rng, ["currency", "unit", "percent", "grouped", "ranked"])
    if style == "currency":
        base = _pick(rng, ["income", "price", "revenue", "cost", "budget"])
        currency = _pick(rng, lexicon.CURRENCIES)
        make = lambda: f"{currency} {int(rng.integers(100, 1_000_000))}"
    elif style == "unit":
        base = _pick(rng, ["weight", "frequency", "file_size", "capacity", "depth"])
        unit = _pick(rng, lexicon.UNITS)
        make = lambda: f"{int(rng.integers(1, 5000))} {unit}"
    elif style == "percent":
        base = _pick(rng, ["pct_white", "growth", "margin", "share"])
        make = lambda: f"{rng.uniform(0, 100):.2f}%"
    elif style == "grouped":
        base = _pick(rng, ["plays", "sales", "population", "views"])
        make = lambda: f"{int(rng.integers(1_000, 90_000_000)):,}"
    else:  # ranked, e.g. "RB - #11"
        base = _pick(rng, ["position", "ranking", "seed"])
        tag = _pick(rng, ["RB", "QB", "WR", "TE"])
        make = lambda: f"{tag} - #{int(rng.integers(1, 40))}"
    name = render_name(rng, base)
    cells = [make() for _ in range(n)]
    cells = _inject_missing(cells, _missing_rate(rng, high=0.15), rng)
    return GeneratedColumn(name, cells, FeatureType.EMBEDDED_NUMBER, style)


# --------------------------------------------------------------------------
# List
# --------------------------------------------------------------------------
def list_column(rng: Rng, n: int) -> GeneratedColumn:
    base, domain = _pick(
        rng,
        [
            ("genres", lexicon.GENRES),
            ("countries", lexicon.COUNTRY_CODES),
            ("tags", lexicon.WORDS),
            ("collections", lexicon.PRODUCT_TYPES),
            ("languages", ["en", "fr", "de", "es", "jp", "zh", "ru", "pt"]),
        ],
    )
    name = render_name(rng, base)
    delimiter = _pick(rng, ["; ", ", ", "|", ";"])
    cells = []
    for _ in range(n):
        k = int(rng.integers(2, 6))
        items = list(rng.choice(domain, size=min(k, len(domain)), replace=False))
        cells.append(delimiter.join(str(item) for item in items))
    cells = _inject_missing(cells, _missing_rate(rng, high=0.3), rng)
    return GeneratedColumn(name, cells, FeatureType.LIST, "list")


# --------------------------------------------------------------------------
# Not-Generalizable
# --------------------------------------------------------------------------
def ng_primary_key(rng: Rng, n: int) -> GeneratedColumn:
    base = _pick(rng, ["id", "cust_id", "row_id", "record_number", "case_number",
                       "user_id", "order_id", "index", "serial_no"])
    name = render_name(rng, base)
    start = int(rng.integers(1, 100000))
    if rng.random() < 0.5:
        values = list(range(start, start + n))
    else:
        values = list(rng.choice(np.arange(start, start + 20 * n), size=n,
                                 replace=False))
    cells = [str(v) for v in values]
    return GeneratedColumn(name, cells, FeatureType.NOT_GENERALIZABLE, "pk_int")


def ng_uuid_like(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["uuid", "guid", "session_key", "hash"]))
    hexdigits = "0123456789abcdef"
    cells = [
        "".join(_pick(rng, hexdigits) for _ in range(16)) for _ in range(n)
    ]
    return GeneratedColumn(name, cells, FeatureType.NOT_GENERALIZABLE, "pk_hex")


def ng_constant(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["source", "version", "flag", "dataset"]))
    value = _pick(rng, ["1", "0", "v2", "prod", "TRUE", "default"])
    cells: list[str | None] = [value] * n
    return GeneratedColumn(name, cells, FeatureType.NOT_GENERALIZABLE, "constant")


def ng_mostly_nan(rng: Rng, n: int) -> GeneratedColumn:
    name = survey_name(rng)
    keep = max(1, int(n * rng.uniform(0.0, 0.005)))
    cells: list[str | None] = [None] * n
    fill_positions = rng.choice(n, size=keep, replace=False)
    token = _pick(rng, ["#NULL!", "x", "1", "yes"])
    for pos in fill_positions:
        cells[int(pos)] = token
    return GeneratedColumn(name, cells, FeatureType.NOT_GENERALIZABLE, "all_nan")


# --------------------------------------------------------------------------
# Context-Specific
# --------------------------------------------------------------------------
def cs_cryptic_int(rng: Rng, n: int) -> GeneratedColumn:
    """Meaningless name, integer values, heavy missingness (error example H)."""
    name = cryptic_name(rng)
    low = int(rng.integers(-100, 10))
    high = low + int(rng.integers(5, 1000))
    cells = [str(int(rng.integers(low, high))) for _ in range(n)]
    cells = _inject_missing(cells, float(rng.uniform(0.25, 0.6)), rng)
    return GeneratedColumn(name, cells, FeatureType.CONTEXT_SPECIFIC, "cryptic_int")


def cs_json(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["payload", "metadata", "attributes",
                                        "properties", "config"]))
    cells = []
    for _ in range(n):
        obj = {
            _pick(rng, lexicon.WORDS): int(rng.integers(0, 100)),
            _pick(rng, lexicon.WORDS): _pick(rng, lexicon.ADJECTIVES),
        }
        cells.append(json.dumps(obj))
    cells = _inject_missing(cells, _missing_rate(rng, high=0.2), rng)
    return GeneratedColumn(name, cells, FeatureType.CONTEXT_SPECIFIC, "json")


def cs_address(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["address", "location", "birth_place"]))
    cells = []
    for _ in range(n):
        number = int(rng.integers(1, 9999))
        street = f"{_pick(rng, lexicon.LAST_NAMES)} {_pick(rng, lexicon.STREET_SUFFIXES)}"
        city = _pick(rng, lexicon.CITIES)
        state = _pick(rng, lexicon.STATE_CODES)
        zipcode = int(rng.integers(10000, 99999))
        cells.append(f"{number} {street}, {city}, {state} {zipcode}")
    cells = _inject_missing(cells, _missing_rate(rng, high=0.2), rng)
    return GeneratedColumn(name, cells, FeatureType.CONTEXT_SPECIFIC, "address")


def cs_geo(rng: Rng, n: int) -> GeneratedColumn:
    name = render_name(rng, _pick(rng, ["geo", "coordinates", "latlong"]))
    cells = [
        f"({rng.uniform(-90, 90):.4f}, {rng.uniform(-180, 180):.4f})"
        for _ in range(n)
    ]
    cells = _inject_missing(cells, _missing_rate(rng, high=0.2), rng)
    return GeneratedColumn(name, cells, FeatureType.CONTEXT_SPECIFIC, "geo")


#: Style generators per class; corpus sampling picks uniformly within a class.
CLASS_GENERATORS: dict[FeatureType, list[Callable[[Rng, int], GeneratedColumn]]] = {
    FeatureType.NUMERIC: [
        numeric_float, numeric_float, numeric_int, numeric_int,
        numeric_percentlike, numeric_cryptic, numeric_int_lowdomain,
        numeric_scientific,
    ],
    FeatureType.CATEGORICAL: [
        categorical_string, categorical_string, categorical_int_code,
        categorical_int_code, categorical_ordinal_year, categorical_rank,
        categorical_names, categorical_large_domain, categorical_boolean,
    ],
    FeatureType.DATETIME: [datetime_column],
    FeatureType.SENTENCE: [sentence_column, sentence_column, sentence_short],
    FeatureType.URL: [url_column],
    FeatureType.EMBEDDED_NUMBER: [
        embedded_number_column, embedded_number_column, embedded_phone,
    ],
    FeatureType.LIST: [list_column],
    FeatureType.NOT_GENERALIZABLE: [
        ng_primary_key, ng_primary_key, ng_uuid_like, ng_constant, ng_mostly_nan,
    ],
    FeatureType.CONTEXT_SPECIFIC: [
        cs_cryptic_int, cs_cryptic_int, cs_json, cs_address, cs_geo, cs_email,
    ],
}


#: Fraction of columns whose header is replaced by an uninformative name.
#: Real corpora are full of headers like "col7" or "V3"; this keeps the name
#: signal strong but not perfectly separating (the paper's RF peaks at ~0.93,
#: not 1.0, largely because names alone don't always disambiguate).
AMBIGUOUS_NAME_RATE = 0.15


def _maybe_obscure_name(column: GeneratedColumn, rng: Rng) -> GeneratedColumn:
    if rng.random() >= AMBIGUOUS_NAME_RATE:
        return column
    style = int(rng.integers(4))
    if style == 0:
        name = f"col{int(rng.integers(1, 60))}"
    elif style == 1:
        name = f"V{int(rng.integers(1, 40))}"
    elif style == 2:
        name = cryptic_name(rng)
    else:
        name = _pick(rng, lexicon.WORDS)
    return GeneratedColumn(name, column.cells, column.feature_type, column.style)


def generate_column(
    feature_type: FeatureType, rng: Rng, n_rows: int
) -> GeneratedColumn:
    """Generate one column of the given class with a random style.

    A fraction of headers is replaced with uninformative names so that
    name-based signals are strong but imperfect, as in real corpora.
    """
    generators = CLASS_GENERATORS[feature_type]
    generator = generators[int(rng.integers(len(generators)))]
    return _maybe_obscure_name(generator(rng, n_rows), rng)
