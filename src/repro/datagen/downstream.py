"""The 30-dataset downstream benchmark suite (paper Section 5, Table 5).

Each dataset is generated to match its Table 5 row: same name, task,
feature-type composition, raw attribute types, column count |A|, and target
arity |Y|.  Signal is *planted through the feature types*: a latent score is
a sum of per-column contributions, and each column's contribution is only
recoverable under the right featurization —

- integer-coded categoricals have non-monotonic effects, so one-hot encoding
  (correct typing) recovers them while numeric treatment only helps models
  that can split (reproducing the paper's finding that downstream Random
  Forests shrug off this mistake while linear models suffer);
- Not-Generalizable keys are pure noise that should be dropped;
- Sentences carry topic words that TF-IDF recovers but one-hot cannot
  (every sentence is unique);
- Datetimes carry a month effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen import lexicon
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import FeatureType

Rng = np.random.Generator


@dataclass(frozen=True)
class ColumnSpec:
    """One downstream column: surface kind + predictive weight."""

    kind: str
    weight: float = 1.0
    name: str | None = None


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 5 row."""

    name: str
    task: str  # "classification" | "regression"
    n_classes: int
    columns: tuple[ColumnSpec, ...]
    n_rows: int = 600
    noise: float = 0.3

    @property
    def n_columns(self) -> int:
        return len(self.columns)


@dataclass
class DownstreamDataset:
    """A generated downstream task."""

    spec: DatasetSpec
    table: Table  # features only (target excluded)
    target: list  # class labels (str) or floats
    true_types: dict[str, FeatureType] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def task(self) -> str:
        return self.spec.task


# -- column kind implementations --------------------------------------------
def _effects(rng: Rng, k: int) -> np.ndarray:
    """Zero-mean unit-ish per-level effects, deliberately non-monotonic."""
    effects = rng.normal(0.0, 1.0, size=k)
    return effects - effects.mean()


def _generate_kind(
    kind: str, rng: Rng, n: int, index: int
) -> tuple[str, list[str | None], np.ndarray, FeatureType]:
    """Returns (default name, cells, per-row contribution, true type)."""
    if kind == "num_float":
        name = f"measure_{index}"
        x = rng.normal(0.0, 1.0, size=n)
        cells = [f"{v * 12.5 + 50.0:.3f}" for v in x]
        return name, cells, x, FeatureType.NUMERIC
    if kind == "num_int":
        name = f"count_{index}"
        raw = rng.integers(0, 5000, size=n).astype(float)
        x = (raw - raw.mean()) / (raw.std() + 1e-9)
        cells = [str(int(v)) for v in raw]
        return name, cells, x, FeatureType.NUMERIC
    if kind == "num_int_lowdomain":
        name = f"pixels_{index}"
        cap = int(rng.integers(6, 16))
        raw = rng.integers(0, cap, size=n).astype(float)
        x = (raw - raw.mean()) / (raw.std() + 1e-9)
        cells = [str(int(v)) for v in raw]
        return name, cells, x, FeatureType.NUMERIC
    if kind in ("cat_str", "cat_str_multiword"):
        name = f"group_{index}"
        k = int(rng.integers(3, 9))
        if kind == "cat_str":
            pool = lexicon.COLORS + lexicon.DEPARTMENTS
            levels = list(rng.choice(pool, size=min(k, len(pool)), replace=False))
        else:
            levels = [
                f"{lexicon.ADJECTIVES[int(rng.integers(len(lexicon.ADJECTIVES)))]} "
                f"{lexicon.WORDS[int(rng.integers(len(lexicon.WORDS)))]}"
                for _ in range(k)
            ]
        codes = rng.integers(0, len(levels), size=n)
        effects = _effects(rng, len(levels))
        cells = [str(levels[c]) for c in codes]
        return name, cells, effects[codes], FeatureType.CATEGORICAL
    if kind in ("cat_int", "cat_int_binary", "cat_int_ordinal"):
        name = f"code_{index}"
        if kind == "cat_int_binary":
            k = 2
        else:
            k = int(rng.integers(4, 12))
        codes = rng.integers(0, k, size=n)
        if kind == "cat_int_ordinal":
            effects = np.linspace(-1.0, 1.0, k)  # monotone: numeric treatment OK
        else:
            effects = _effects(rng, k)  # non-monotonic: one-hot required
        # surface the codes as arbitrary integers (zip-code style)
        surface = rng.choice(np.arange(10, 999), size=k, replace=False)
        cells = [str(int(surface[c])) for c in codes]
        return name, cells, effects[codes], FeatureType.CATEGORICAL
    if kind in ("date", "date_compact", "date_long"):
        name = f"event_date_{index}"
        months = rng.integers(1, 13, size=n)
        years = rng.integers(1990, 2020, size=n)
        days = rng.integers(1, 29, size=n)
        effects = _effects(rng, 12)
        if kind == "date":
            cells = [
                f"{y:04d}-{m:02d}-{d:02d}" for y, m, d in zip(years, months, days)
            ]
        elif kind == "date_long":
            cells = [
                f"{lexicon.MONTHS_LONG[m - 1]} {d}, {y}"
                for y, m, d in zip(years, months, days)
            ]
        else:
            cells = [
                f"{y:04d}{m:02d}{d:02d}" for y, m, d in zip(years, months, days)
            ]
        return name, cells, effects[months - 1], FeatureType.DATETIME
    if kind == "sentence":
        name = f"review_{index}"
        topics = list(rng.choice(lexicon.WORDS, size=6, replace=False))
        effects = _effects(rng, len(topics))
        topic_ids = rng.integers(0, len(topics), size=n)
        cells = []
        for t in topic_ids:
            filler = [
                lexicon.WORDS[int(rng.integers(len(lexicon.WORDS)))]
                for _ in range(int(rng.integers(5, 12)))
            ]
            position = int(rng.integers(len(filler) + 1))
            filler.insert(position, topics[t])
            cells.append(" ".join(filler).capitalize() + ".")
        return name, cells, effects[topic_ids], FeatureType.SENTENCE
    if kind == "url":
        name = f"source_url_{index}"
        domains = list(rng.choice(lexicon.DOMAIN_WORDS, size=5, replace=False))
        effects = _effects(rng, len(domains))
        ids = rng.integers(0, len(domains), size=n)
        cells = [
            f"https://www.{domains[i]}.com/{lexicon.WORDS[int(rng.integers(len(lexicon.WORDS)))]}"
            for i in ids
        ]
        return name, cells, effects[ids], FeatureType.URL
    if kind == "en_currency":
        name = f"income_{index}"
        x = rng.normal(0.0, 1.0, size=n)
        amounts = (x * 8000 + 30000).astype(int)
        currency = lexicon.CURRENCIES[int(rng.integers(len(lexicon.CURRENCIES)))]
        cells = [f"{currency} {a}" for a in amounts]
        return name, cells, x, FeatureType.EMBEDDED_NUMBER
    if kind == "list":
        name = f"tags_{index}"
        tags = list(rng.choice(lexicon.GENRES, size=8, replace=False))
        effects = _effects(rng, len(tags))
        contributions = np.zeros(n)
        cells = []
        for row in range(n):
            k = int(rng.integers(1, 4))
            chosen = rng.choice(len(tags), size=k, replace=False)
            contributions[row] = effects[chosen].sum() / np.sqrt(k)
            cells.append("; ".join(tags[c] for c in chosen))
        return name, cells, contributions, FeatureType.LIST
    if kind == "ng_pk":
        name = f"record_id_{index}"
        start = int(rng.integers(1000, 99999))
        cells = [str(start + i) for i in range(n)]
        return name, cells, np.zeros(n), FeatureType.NOT_GENERALIZABLE
    if kind == "ng_constant":
        name = f"source_flag_{index}"
        cells = ["1"] * n
        return name, cells, np.zeros(n), FeatureType.NOT_GENERALIZABLE
    if kind == "cs_cryptic":
        name = f"xq{int(rng.integers(100, 999))}"
        raw = rng.integers(-50, 500, size=n).astype(float)
        cells = [str(int(v)) for v in raw]
        mask = rng.random(n) < 0.4
        cells = [None if m else c for c, m in zip(cells, mask)]
        return name, cells, np.zeros(n), FeatureType.CONTEXT_SPECIFIC
    raise ValueError(f"unknown downstream column kind: {kind!r}")


def make_dataset(spec: DatasetSpec, seed: int = 0) -> DownstreamDataset:
    """Generate one downstream dataset from its spec."""
    rng = np.random.default_rng(seed)
    n = spec.n_rows
    columns: list[Column] = []
    true_types: dict[str, FeatureType] = {}
    score = np.zeros(n)
    used: set[str] = set()
    for index, col_spec in enumerate(spec.columns):
        name, cells, contribution, ftype = _generate_kind(
            col_spec.kind, rng, n, index
        )
        if col_spec.name:
            name = col_spec.name
        while name in used:
            name = f"{name}_{index}"
        used.add(name)
        columns.append(Column(name, cells))
        true_types[name] = ftype
        score += col_spec.weight * contribution

    score += rng.normal(0.0, spec.noise, size=n)
    if spec.task == "classification":
        # quantile-bin the latent score into |Y| classes
        edges = np.quantile(score, np.linspace(0, 1, spec.n_classes + 1)[1:-1])
        targets = np.digitize(score, edges)
        target = [f"class_{t}" for t in targets]
    else:
        target = [float(v) for v in score * 10.0]
    table = Table(columns, name=spec.name)
    return DownstreamDataset(
        spec=spec, table=table, target=target, true_types=true_types
    )


def _cols(*entries: tuple[str, int, float]) -> tuple[ColumnSpec, ...]:
    """Expand (kind, count, weight) triples into ColumnSpecs."""
    out: list[ColumnSpec] = []
    for kind, count, weight in entries:
        out.extend(ColumnSpec(kind, weight) for _ in range(count))
    return tuple(out)


#: The 30 Table 5 rows.  Column counts |A| and class counts |Y| match the
#: paper; "weight" distributes the planted signal across columns.
DOWNSTREAM_SPECS: tuple[DatasetSpec, ...] = (
    # (A) classification — 25 datasets
    DatasetSpec("Cancer", "classification", 2,
                _cols(("num_float", 6, 1.0), ("num_int", 3, 1.0)), n_rows=500),
    DatasetSpec("Mfeat", "classification", 10,
                _cols(("num_int_lowdomain", 216, 0.25)), n_rows=500),
    DatasetSpec("Nursery", "classification", 5,
                _cols(("cat_str", 8, 1.0)), n_rows=800),
    DatasetSpec("Audiology", "classification", 24,
                _cols(("cat_str", 69, 0.5)), n_rows=700),
    DatasetSpec("Hayes", "classification", 3,
                _cols(("cat_int", 4, 1.0)), n_rows=500),
    DatasetSpec("Supreme", "classification", 2,
                _cols(("cat_int_binary", 5, 1.0), ("cat_int_ordinal", 2, 1.0)),
                n_rows=600),
    DatasetSpec("Flares", "classification", 2,
                _cols(("cat_int", 5, 1.0), ("cat_str", 5, 1.0)), n_rows=600),
    DatasetSpec("Kropt", "classification", 18,
                _cols(("cat_int", 3, 1.0), ("cat_str", 3, 1.0)), n_rows=1200),
    DatasetSpec("Boxing", "classification", 2,
                _cols(("cat_int", 2, 1.0), ("cat_str", 1, 1.0)), n_rows=400),
    DatasetSpec("Flags", "classification", 2,
                _cols(("cat_int", 14, 0.6), ("cat_str", 14, 0.6)), n_rows=500),
    DatasetSpec("Diggle", "classification", 2,
                _cols(("num_float", 4, 1.0), ("num_int_lowdomain", 2, 1.0),
                      ("cat_str", 2, 1.0)), n_rows=600),
    DatasetSpec("Hearts", "classification", 2,
                _cols(("num_float", 5, 1.0), ("num_int", 3, 1.0),
                      ("cat_int", 5, 1.0)), n_rows=600),
    DatasetSpec("Sleuth", "classification", 2,
                _cols(("num_float", 4, 1.0), ("num_int", 2, 1.0),
                      ("cat_int_ordinal", 4, 1.0)), n_rows=600),
    DatasetSpec("Apnea2", "classification", 2,
                _cols(("cat_str", 2, 1.0), ("ng_pk", 1, 0.0)), n_rows=500),
    DatasetSpec("Auto-MPG", "classification", 3,
                _cols(("num_float", 4, 1.0), ("cat_int", 2, 1.0),
                      ("sentence", 2, 0.8)), n_rows=500),
    DatasetSpec("Churn", "classification", 2,
                _cols(("num_float", 8, 0.8), ("num_int", 3, 0.8),
                      ("cat_int", 3, 0.8), ("cat_str", 3, 0.8),
                      ("en_currency", 2, 0.8)), n_rows=700),
    DatasetSpec("NYC", "classification", 15,
                _cols(("num_float", 3, 1.0), ("date", 2, 1.0),
                      ("en_currency", 1, 1.0)), n_rows=1000),
    DatasetSpec("BBC", "classification", 5,
                _cols(("sentence", 1, 2.0)), n_rows=700, noise=0.15),
    DatasetSpec("Articles", "classification", 2,
                _cols(("date", 1, 1.0), ("sentence", 2, 1.0)), n_rows=600),
    DatasetSpec("Clothing", "classification", 5,
                _cols(("num_float", 3, 1.0), ("cat_int", 2, 1.0),
                      ("cat_str", 2, 1.0), ("sentence", 2, 1.0),
                      ("ng_pk", 1, 0.0)), n_rows=700),
    DatasetSpec("IOT", "classification", 2,
                _cols(("num_float", 1, 1.0), ("date", 2, 0.7),
                      ("ng_pk", 1, 0.0)), n_rows=700),
    DatasetSpec("Zoo", "classification", 5,
                _cols(("cat_int_binary", 10, 0.7), ("cat_str", 3, 0.7),
                      ("ng_pk", 2, 0.0), ("ng_constant", 2, 0.0)), n_rows=500),
    DatasetSpec("PBCseq", "classification", 2,
                _cols(("num_float", 7, 0.8), ("num_int", 3, 0.8),
                      ("cat_int", 4, 0.8), ("en_currency", 2, 0.8),
                      ("ng_pk", 2, 0.0)), n_rows=700),
    DatasetSpec("Pokemon", "classification", 36,
                _cols(("num_float", 12, 0.6), ("num_int", 8, 0.6),
                      ("cat_int", 6, 0.6), ("cat_str", 6, 0.6),
                      ("list", 4, 0.6), ("ng_pk", 2, 0.0),
                      ("cs_cryptic", 2, 0.0)), n_rows=1400),
    DatasetSpec("President", "classification", 57,
                _cols(("num_float", 6, 0.6), ("num_int", 4, 0.6),
                      ("cat_int", 4, 0.6), ("cat_str", 4, 0.6),
                      ("date", 2, 0.6), ("url", 2, 0.6),
                      ("ng_pk", 2, 0.0), ("cs_cryptic", 2, 0.0)), n_rows=1800),
    # (B) regression — 5 datasets
    DatasetSpec("MBA", "regression", 0,
                _cols(("cat_int", 2, 1.0)), n_rows=500),
    DatasetSpec("Vineyard", "regression", 0,
                _cols(("num_int", 1, 1.0), ("cat_int", 2, 1.0)), n_rows=500),
    DatasetSpec("Apnea", "regression", 0,
                _cols(("num_float", 1, 1.0), ("cat_int", 1, 1.0),
                      ("cat_str", 1, 1.0)), n_rows=500),
    # "long" date format: recognized by Pandas/AutoGluon, missed by TFDV —
    # reproducing Table 5's Accident row where only TFDV degrades.
    DatasetSpec("Accident", "regression", 0,
                _cols(("date_long", 1, 1.5)), n_rows=600),
    DatasetSpec("Car Fuel", "regression", 0,
                _cols(("num_float", 4, 0.8), ("num_int", 2, 0.8),
                      ("cat_int", 2, 0.8), ("en_currency", 2, 0.8),
                      ("ng_pk", 1, 0.0)), n_rows=600),
)

SPEC_BY_NAME = {spec.name: spec for spec in DOWNSTREAM_SPECS}


def make_suite(seed: int = 0) -> list[DownstreamDataset]:
    """Generate all 30 downstream datasets."""
    return [
        make_dataset(spec, seed=seed + i) for i, spec in enumerate(DOWNSTREAM_SPECS)
    ]
