"""Synthetic corpora: the labeled benchmark dataset, downstream tasks, and
Sherlock-style semantic-type data (substitutions documented in DESIGN.md)."""

from repro.datagen.corpus import (
    LabeledCorpus,
    PAPER_N_EXAMPLES,
    generate_corpus,
    paper_scale_corpus,
    sample_class_sequence,
)
from repro.datagen.downstream import (
    DOWNSTREAM_SPECS,
    DownstreamDataset,
    SPEC_BY_NAME,
    make_dataset,
    make_suite,
)
from repro.datagen.export import export_corpus, load_corpus
from repro.datagen.values import CLASS_GENERATORS, GeneratedColumn, generate_column

__all__ = [
    "CLASS_GENERATORS",
    "DOWNSTREAM_SPECS",
    "DownstreamDataset",
    "GeneratedColumn",
    "LabeledCorpus",
    "PAPER_N_EXAMPLES",
    "SPEC_BY_NAME",
    "export_corpus",
    "generate_column",
    "generate_corpus",
    "load_corpus",
    "make_dataset",
    "make_suite",
    "paper_scale_corpus",
    "sample_class_sequence",
]
