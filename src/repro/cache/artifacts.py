"""Content-addressed on-disk artifact cache.

Benchmark artifacts (generated corpora, train/test split indices, fitted
models) are stored under ``<root>/<kind>/<key>.pkl``.  The ``key`` is a
sha256 digest over the artifact kind, its code-relevant parameters (seed,
scale, hyper-parameters), and the source text of every module whose logic
determines the artifact's content.  Invalidation is therefore implicit in
the address: changing a parameter or editing producing code yields a new
key, and stale entries are simply never read again.

Crash safety: writes are atomic (temp file + ``os.replace``) and every
entry carries a sha256 checksum of its pickle payload, verified on read.
An entry that fails the check — truncated by a crash, bit-rotted, or
mangled by an injected fault — is moved to ``<root>/quarantine/`` and
treated as a miss, so the artifact is simply rebuilt; the run is never
poisoned by corrupt bytes.  See ``docs/robustness.md``.

Traffic is observable through the ``cache.hit`` / ``cache.miss`` /
``cache.store`` / ``cache.corrupt`` telemetry counters (plus per-kind
variants like ``cache.hit.corpus``); see ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Callable

from repro.faults import FaultInjectedError, faults
from repro.obs import telemetry

_MAGIC = b"REPRO-SORTINGHAT-ARTIFACT\x00"
#: v2 added the per-entry payload checksum line.  The version participates
#: in :func:`artifact_key`, so pre-checksum entries are simply never
#: addressed again (and are quarantined if a key collision ever reads one).
_FORMAT_VERSION = 2

QUARANTINE_DIR = "quarantine"

#: Modules (or whole packages) whose source defines each artifact kind.
#: A corpus depends on the generators and the featurization kernels; a
#: split additionally on the splitter; a fitted model on everything the
#: training path can reach.
KIND_MODULES: dict[str, tuple[str, ...]] = {
    "corpus": ("repro.datagen", "repro.core", "repro.tabular"),
    "split": ("repro.datagen", "repro.core", "repro.tabular", "repro.ml.model_selection"),
    "model": ("repro.datagen", "repro.core", "repro.tabular", "repro.ml", "repro.nn"),
    # A downstream score is a pure function of (dataset content, assignment,
    # model kind, split seed) — the dataset content is hashed into the key
    # directly, so the generators are not part of the closure.
    "score": ("repro.downstream", "repro.ml", "repro.core", "repro.tabular"),
    # A tuning memo entry is a pure function of (matrix digest, model,
    # params/grid, fold layout) — the matrix content is hashed into the key
    # directly, so only the tuning protocol and the estimators matter.
    "tune": ("repro.core.tuning", "repro.ml"),
}


class ArtifactCacheError(RuntimeError):
    """Raised when a cache entry exists but cannot be read."""


@lru_cache(maxsize=None)
def code_digest(module_names: tuple[str, ...]) -> str:
    """sha256 over the source files of the named modules/packages.

    A package name hashes every ``*.py`` beneath it (sorted by relative
    path), so the digest changes whenever any file of the producing code
    changes.
    """
    digest = hashlib.sha256()
    for name in module_names:
        module = importlib.import_module(name)
        if hasattr(module, "__path__"):
            root = Path(next(iter(module.__path__)))
            files = sorted(root.rglob("*.py"), key=lambda p: str(p.relative_to(root)))
        else:
            files = [Path(module.__file__)]
        for path in files:
            digest.update(str(path.name).encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()


def artifact_key(
    kind: str, params: dict, modules: tuple[str, ...] | None = None
) -> str:
    """The content address of one artifact.

    ``params`` must be JSON-serializable (tuples/paths coerce via ``str``);
    key order does not matter.
    """
    if modules is None:
        modules = KIND_MODULES[kind]
    payload = {
        "kind": kind,
        "params": params,
        "code": code_digest(tuple(modules)),
        "format": _FORMAT_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:40]


class ArtifactCache:
    """Pickle store addressed by :func:`artifact_key` digests.

    Only load caches you produced yourself — entries are pickles.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def get(self, kind: str, key: str):
        """The cached object, or None on a miss (counted in telemetry).

        Corrupt entries (bad magic, failed checksum, unpicklable payload)
        are quarantined and reported as misses — the caller rebuilds, and
        the damaged bytes are kept aside for inspection instead of being
        silently deserialized.
        """
        path = self.path(kind, key)
        try:
            faults.point("cache.read", kind=kind, key=key)
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            telemetry.count("cache.miss")
            telemetry.count(f"cache.miss.{kind}")
            return None
        except (OSError, FaultInjectedError) as exc:
            # The file may be fine — the *read* failed.  Degrade to a miss
            # without quarantining.
            telemetry.count("cache.read_error")
            telemetry.count("cache.miss")
            telemetry.count(f"cache.miss.{kind}")
            telemetry.warning(
                "cache.read_failed", kind=kind, key=key, error=str(exc)
            )
            return None
        try:
            payload = self._decode(path, blob)
        except (ArtifactCacheError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError) as exc:
            self._quarantine(path, kind, key, str(exc))
            telemetry.count("cache.miss")
            telemetry.count(f"cache.miss.{kind}")
            return None
        telemetry.count("cache.hit")
        telemetry.count(f"cache.hit.{kind}")
        try:
            # Bump mtime so prune()'s LRU-by-mtime ordering tracks actual
            # use, not just creation time.
            os.utime(path)
        except OSError:
            pass
        return payload

    @staticmethod
    def _decode(path: Path, blob: bytes):
        """Verify and unpickle one entry's raw bytes (the artifact object)."""
        if not blob.startswith(_MAGIC):
            raise ArtifactCacheError(f"{path} is not a cache artifact")
        rest = blob[len(_MAGIC):]
        header, sep, payload = rest.partition(b"\n")
        if not sep:
            raise ArtifactCacheError(f"{path} is truncated (no entry header)")
        try:
            version, _, checksum = header.decode("ascii").partition(" ")
            version = int(version)
        except (UnicodeDecodeError, ValueError):
            raise ArtifactCacheError(f"{path} has a malformed entry header") from None
        if version != _FORMAT_VERSION:
            raise ArtifactCacheError(
                f"{path} has entry format v{version} (expected v{_FORMAT_VERSION})"
            )
        if hashlib.sha256(payload).hexdigest() != checksum:
            raise ArtifactCacheError(f"{path} failed its content checksum")
        decoded = pickle.loads(payload)
        if not isinstance(decoded, dict) or "artifact" not in decoded:
            raise ArtifactCacheError(f"{path} payload is not an artifact dict")
        return decoded["artifact"]

    def _quarantine(self, path: Path, kind: str, key: str, reason: str) -> None:
        """Move a corrupt entry aside so it is never read (or trusted) again."""
        target = self.quarantine_root / f"{kind}-{path.name}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Concurrent quarantine/eviction already removed it; that's fine.
            pass
        telemetry.count("cache.corrupt")
        telemetry.count(f"cache.corrupt.{kind}")
        telemetry.warning(
            "cache.quarantined", kind=kind, key=key, reason=reason,
            quarantined_to=str(target),
        )

    def put(self, kind: str, key: str, artifact) -> Path:
        """Persist one artifact atomically (write-temp + rename).

        The entry header records a sha256 over the pickle payload; a crash
        mid-write leaves only a temp file (never a half-entry), and any
        later damage to the payload bytes is caught by :meth:`get`.
        """
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"format_version": _FORMAT_VERSION, "artifact": artifact},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        checksum = hashlib.sha256(payload).hexdigest()
        # Chaos hooks: a plan can mangle the payload after the checksum is
        # taken (bit rot the reader must catch) or fail the write outright.
        payload = faults.corrupt("cache.write", payload)
        faults.point("cache.write", kind=kind, key=key)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(f"{_FORMAT_VERSION} {checksum}\n".encode("ascii"))
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        telemetry.count("cache.store")
        telemetry.count(f"cache.store.{kind}")
        return path

    def fetch(self, kind: str, params: dict, build: Callable[[], object]):
        """Get-or-build: the cached artifact for ``params``, else ``build()``
        persisted under its content address.

        A failed *store* (disk full, permissions, injected fault) degrades
        to a warning — the freshly built artifact is still returned, so a
        sick cache directory slows a run down instead of killing it.
        """
        key = artifact_key(kind, params)
        artifact = self.get(kind, key)
        if artifact is None:
            artifact = build()
            try:
                self.put(kind, key, artifact)
            except (OSError, FaultInjectedError) as exc:
                telemetry.count("cache.store_failed")
                telemetry.warning(
                    "cache.store_failed", kind=kind, key=key, error=str(exc)
                )
        return artifact

    def size_bytes(self) -> int:
        """Total bytes of all cache entries currently on disk."""
        return sum(entry[2] for entry in self._entries())

    def prune(self, max_bytes: int, *, lock_timeout_s: float = 60.0) -> dict:
        """Evict least-recently-used entries until the cache fits
        ``max_bytes``.

        Recency is file mtime (:meth:`get` bumps it on every hit), so this
        is LRU over actual traffic.  Long-lived servers call this
        periodically — and ``repro-bench cache prune`` from cron — to keep
        the artifact dir bounded.  Returns a report dict (entry/byte counts
        before and after, entries removed).

        Pruning takes an advisory cross-process lock (``<root>/prune.lock``,
        stealable when its holder dies — see :mod:`repro.cache.lock`), so
        sibling workers sharing one cache cannot interleave scans and
        deletions into an over-eviction.  Writers don't take it: a ``put``
        racing a prune at worst lands an entry the next prune evicts.
        """
        from repro.cache.lock import FileLock

        with FileLock(
            self.root / "prune.lock", timeout_s=lock_timeout_s
        ):
            return self._prune_locked(max_bytes)

    def _prune_locked(self, max_bytes: int) -> dict:
        entries = sorted(self._entries(), key=lambda e: (e[1], str(e[0])))
        total = sum(size for _, _, size in entries)
        report = {
            "root": str(self.root),
            "max_bytes": int(max_bytes),
            "entries_before": len(entries),
            "bytes_before": total,
            "removed": 0,
            "bytes_removed": 0,
        }
        for path, _, size in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            report["removed"] += 1
            report["bytes_removed"] += size
            telemetry.count("cache.prune.removed")
            telemetry.count("cache.prune.bytes", size)
        report["entries_after"] = report["entries_before"] - report["removed"]
        report["bytes_after"] = total
        return report

    def _entries(self) -> list[tuple[Path, float, int]]:
        """(path, mtime, size) of every live entry; quarantined files are
        excluded, and entries that vanish mid-scan (concurrent
        prune/eviction) are skipped."""
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.rglob("*.pkl"):
            if QUARANTINE_DIR in path.relative_to(self.root).parts:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_mtime, stat.st_size))
        return out


#: Process-wide cache handle for call sites that sit below the benchmark
#: context (e.g. the downstream harness).  Set by ``BenchmarkContext`` and
#: inherited by forked ``--jobs`` workers.
_ACTIVE_CACHE: ArtifactCache | None = None


def set_active_cache(cache: ArtifactCache | None) -> None:
    """Install (or clear, with ``None``) the process-wide artifact cache."""
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = cache


def active_cache() -> ArtifactCache | None:
    """The process-wide artifact cache, or None when caching is off."""
    return _ACTIVE_CACHE
