"""Content-addressed artifact cache for benchmark runs."""

from repro.cache.artifacts import (
    ArtifactCache,
    ArtifactCacheError,
    active_cache,
    artifact_key,
    code_digest,
    set_active_cache,
)
from repro.cache.lock import FileLock, LockTimeout

__all__ = [
    "ArtifactCache",
    "ArtifactCacheError",
    "FileLock",
    "LockTimeout",
    "active_cache",
    "artifact_key",
    "code_digest",
    "set_active_cache",
]
