"""Content-addressed artifact cache for benchmark runs."""

from repro.cache.artifacts import (
    ArtifactCache,
    ArtifactCacheError,
    active_cache,
    artifact_key,
    code_digest,
    set_active_cache,
)

__all__ = [
    "ArtifactCache",
    "ArtifactCacheError",
    "active_cache",
    "artifact_key",
    "code_digest",
    "set_active_cache",
]
