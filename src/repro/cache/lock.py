"""Advisory cross-process file lock: O_EXCL create + heartbeat + stale-steal.

The same three-primitive protocol the benchmark work queue uses for task
leases (:mod:`repro.benchmark.queue`), packaged as a tiny context manager
for mutating cache maintenance — ``ArtifactCache.prune`` must not race a
sibling worker's prune when N ``repro-bench work`` processes (or N
``repro-serve`` nodes) share one artifact directory.

Acquisition is one atomic ``O_EXCL`` create of ``<name>.lock``; the holder
refreshes the file's mtime from a daemon thread, and a contender may break
a lock whose mtime is older than the stale window (the holder crashed
without unlinking).  Breaking is unlink-then-retry: the racing contenders
then fight over one ``O_EXCL`` create again, so exactly one wins.

This is *advisory*: only callers that take the lock are excluded.  Reads
(:meth:`ArtifactCache.get`) stay lock-free — entry checksums already make
torn reads safe, and a reader racing a prune just sees a miss.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.obs import telemetry

DEFAULT_STALE_S = 30.0
DEFAULT_HEARTBEAT_S = 1.0
_RETRY_S = 0.1


class LockTimeout(RuntimeError):
    """The lock could not be acquired within the caller's deadline."""


class FileLock:
    """Advisory exclusive lock at ``path``, stealable when stale.

    Usage::

        with FileLock(cache.root / "prune.lock"):
            ...  # exclusive among cooperating processes
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        stale_after_s: float = DEFAULT_STALE_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        timeout_s: float | None = None,
    ):
        self.path = Path(path)
        self.stale_after_s = stale_after_s
        self.heartbeat_s = heartbeat_s
        self.timeout_s = timeout_s
        self._stop: threading.Event | None = None

    @property
    def held(self) -> bool:
        return self._stop is not None

    def acquire(self) -> "FileLock":
        deadline = (
            None if self.timeout_s is None
            else time.monotonic() + self.timeout_s
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if self._break_if_stale():
                    continue  # stolen: retry the O_EXCL create immediately
                if deadline is not None and time.monotonic() > deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout_s:.0f}s (held by a live process)"
                    )
                time.sleep(_RETRY_S)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "acquired_at": time.time(),
                }, handle)
            self._start_heartbeat()
            telemetry.count("lock.acquired")
            return self

    def _break_if_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return True  # holder released between create and stat: retry
        if age <= self.stale_after_s:
            return False
        # The holder has not heartbeated for the whole stale window: it is
        # dead.  Unlink and let every contender race one O_EXCL create.
        try:
            self.path.unlink()
        except OSError:
            pass
        telemetry.count("lock.stolen")
        telemetry.warning(
            "lock.stale_broken", path=str(self.path), stale_s=round(age, 1)
        )
        return True

    def _start_heartbeat(self) -> None:
        stop = threading.Event()
        self._stop = stop

        def beat() -> None:
            while not stop.wait(self.heartbeat_s):
                try:
                    os.utime(self.path)
                except OSError:
                    return

        threading.Thread(target=beat, daemon=True, name="filelock-hb")\
            .start()

    def release(self) -> None:
        if self._stop is not None:
            self._stop.set()
            self._stop = None
        try:
            self.path.unlink()
        except OSError:
            pass
        telemetry.count("lock.released")

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
