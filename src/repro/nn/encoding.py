"""Character-sequence encoding for the char-CNN.

Characters are mapped to integer codes from a fixed printable vocabulary;
code 0 is padding, code 1 is "unknown character".
"""

from __future__ import annotations

import string

import numpy as np

#: Characters the CNN can see; everything else maps to UNK.
VOCABULARY = string.ascii_lowercase + string.digits + string.punctuation + " "

PAD_CODE = 0
UNK_CODE = 1
VOCAB_SIZE = len(VOCABULARY) + 2  # + PAD + UNK

_CHAR_TO_CODE = {ch: i + 2 for i, ch in enumerate(VOCABULARY)}

# Codepoint → code lookup table; the vocabulary is pure ASCII, so any
# codepoint ≥ 128 clips onto the (unmapped) last slot and reads UNK.
_CODE_LUT = np.full(129, UNK_CODE, dtype=np.int64)
for _ch, _code in _CHAR_TO_CODE.items():
    _CODE_LUT[ord(_ch)] = _code


def encode_text(
    text: str, max_len: int, dtype: np.dtype | type = np.int64
) -> np.ndarray:
    """Encode one string into a fixed-length int code vector (right-padded)."""
    return encode_batch([text], max_len, dtype=dtype)[0]


def encode_batch(
    texts: list[str], max_len: int, dtype: np.dtype | type = np.int64
) -> np.ndarray:
    """Encode a batch of strings, shape (batch, max_len).

    Vectorized: the lowercased, clipped strings are joined into one flat
    codepoint array, mapped through the vocabulary LUT in a single gather,
    and scattered back to rows via cumulative-length offsets.  ``dtype``
    picks the integer code dtype (int32 halves gather traffic for the
    CharCNN's embedding lookups; values always fit in int8).
    """
    out = np.full((len(texts), max_len), PAD_CODE, dtype=dtype)
    clipped = [text.lower()[:max_len] for text in texts]
    flat = "".join(clipped)
    if not flat:
        return out
    codes = np.frombuffer(flat.encode("utf-32-le"), dtype=np.uint32)
    mapped = _CODE_LUT[np.minimum(codes, 128)]
    lengths = np.array([len(text) for text in clipped], dtype=np.intp)
    ends = np.cumsum(lengths)
    rows = np.repeat(np.arange(len(texts), dtype=np.intp), lengths)
    cols = np.arange(len(codes), dtype=np.intp) - np.repeat(ends - lengths, lengths)
    out[rows, cols] = mapped
    return out
