"""Character-sequence encoding for the char-CNN.

Characters are mapped to integer codes from a fixed printable vocabulary;
code 0 is padding, code 1 is "unknown character".
"""

from __future__ import annotations

import string

import numpy as np

#: Characters the CNN can see; everything else maps to UNK.
VOCABULARY = string.ascii_lowercase + string.digits + string.punctuation + " "

PAD_CODE = 0
UNK_CODE = 1
VOCAB_SIZE = len(VOCABULARY) + 2  # + PAD + UNK

_CHAR_TO_CODE = {ch: i + 2 for i, ch in enumerate(VOCABULARY)}


def encode_text(text: str, max_len: int) -> np.ndarray:
    """Encode one string into a fixed-length int code vector (right-padded)."""
    codes = np.full(max_len, PAD_CODE, dtype=np.int64)
    for i, ch in enumerate(text.lower()[:max_len]):
        codes[i] = _CHAR_TO_CODE.get(ch, UNK_CODE)
    return codes


def encode_batch(texts: list[str], max_len: int) -> np.ndarray:
    """Encode a batch of strings, shape (batch, max_len)."""
    out = np.full((len(texts), max_len), PAD_CODE, dtype=np.int64)
    for row, text in enumerate(texts):
        out[row] = encode_text(text, max_len)
    return out
