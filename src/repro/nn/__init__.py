"""Numpy neural-net substrate (no TensorFlow/Keras available) + char-CNN."""

from repro.nn.charcnn import CharCNNClassifier
from repro.nn.encoding import PAD_CODE, UNK_CODE, VOCAB_SIZE, encode_batch, encode_text
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool1D,
    Layer,
    ReLU,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optim import SGD, Adam

__all__ = [
    "Adam",
    "CharCNNClassifier",
    "Conv1D",
    "Dense",
    "Dropout",
    "Embedding",
    "GlobalMaxPool1D",
    "Layer",
    "PAD_CODE",
    "ReLU",
    "SGD",
    "UNK_CODE",
    "VOCAB_SIZE",
    "encode_batch",
    "encode_text",
    "softmax",
    "softmax_cross_entropy",
]
