"""Optimizers for the numpy NN substrate."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam with the Keras default hyper-parameters the paper used."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
    ):
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the currently accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0

    def state_dict(self) -> dict:
        """Copy of the optimizer moments + step counter (for checkpoints)."""
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore moments/step saved by :meth:`state_dict` (in place)."""
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError("optimizer state does not match parameter list")
        for m, saved in zip(self._m, state["m"]):
            m[...] = saved
        for v, saved in zip(self._v, state["v"]):
            v[...] = saved
        self._t = int(state["t"])


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
    ):
        self.params = params
        self.grads = grads
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for param, grad, velocity in zip(self.params, self.grads, self._velocity):
            velocity *= self.momentum
            velocity -= self.lr * grad
            param += velocity

    def zero_grad(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0
