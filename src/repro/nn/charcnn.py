"""The paper's character-level CNN (Appendix F), in pure numpy.

Architecture: every text input (attribute name, sample values) goes through
an Embedding, two cascaded Conv1D layers (ReLU), and a global max pool; all
pooled vectors are concatenated with the descriptive statistics and fed to a
two-hidden-layer MLP with dropout and a softmax output.  Trained end-to-end
with Adam.

Two operational features ride on top of the architecture:

* **dtype policy** — ``dtype="float32"`` runs training and inference in
  float32 end-to-end (weights, activations, optimizer moments), roughly
  halving the memory traffic of the GEMM hot loop.  ``"float64"`` stays the
  default and is bit-identical to the historical behaviour; float32 drift
  is triaged by the golden-prediction gate (``repro-bench goldens``).
* **mid-epoch checkpoint/restore** — ``fit(..., checkpoint_path=...)``
  writes atomic training checkpoints (weights, Adam moments, epoch, batch
  cursor, RNG state); ``resume=True`` continues from the last checkpoint
  and produces runs bit-identical to uninterrupted ones.  ``max_steps``
  bounds the optimizer steps of one ``fit`` call, so preemptible workers
  can train in slices.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.preprocessing import LabelEncoder
from repro.obs import telemetry
from repro.nn.encoding import VOCAB_SIZE, encode_batch
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool1D,
    ReLU,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optim import Adam

_CHECKPOINT_FORMAT = "charcnn-checkpoint"
_CHECKPOINT_VERSION = 1

#: __init__ fields that define a training run; checkpoints echo them and
#: refuse to resume under a different configuration.
_CONFIG_FIELDS = (
    "embed_dim", "num_filters", "filter_size", "hidden_units", "dropout",
    "max_len", "epochs", "batch_size", "lr", "random_state", "dtype",
)


class CheckpointError(RuntimeError):
    """Raised when a training checkpoint cannot be read or does not match."""


def _write_checkpoint(path: str, payload: dict) -> None:
    """Atomic pickle write (tmp + rename) so a crash never tears a file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _read_checkpoint(path: str) -> dict:
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _CHECKPOINT_FORMAT
        or payload.get("version") != _CHECKPOINT_VERSION
    ):
        raise CheckpointError(f"{path!r} is not a CharCNN checkpoint")
    return payload


class _CNNBlock:
    """Embedding → Conv1D → ReLU → Conv1D → ReLU → GlobalMaxPool."""

    def __init__(
        self,
        embed_dim: int,
        num_filters: int,
        filter_size: int,
        rng: np.random.Generator,
        dtype: np.dtype | type = np.float64,
    ):
        self.layers = [
            Embedding(VOCAB_SIZE, embed_dim, rng, dtype=dtype),
            Conv1D(embed_dim, num_filters, filter_size, rng, dtype=dtype),
            ReLU(),
            Conv1D(num_filters, num_filters, filter_size, rng, dtype=dtype),
            ReLU(),
            GlobalMaxPool1D(),
        ]
        self.out_dim = num_filters

    def forward(self, codes: np.ndarray, training: bool) -> np.ndarray:
        out = codes
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        params, grads = [], []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads


class CharCNNClassifier(BaseEstimator, ClassifierMixin):
    """Multi-input char-CNN classifier over text fields + a stats vector.

    ``fit`` takes ``text_fields`` — a list of F fields, each a list of N
    strings — an optional (N, S) stats matrix, and N labels.  Either part may
    be omitted (``text_fields=[]`` or ``stats=None``), matching the feature
    set ablations of Table 2.
    """

    def __init__(
        self,
        embed_dim: int = 64,
        num_filters: int = 32,
        filter_size: int = 2,
        hidden_units: int = 250,
        dropout: float = 0.25,
        max_len: int = 24,
        epochs: int = 12,
        batch_size: int = 64,
        lr: float = 1e-3,
        random_state: int = 0,
        dtype: str = "float64",
    ):
        self.embed_dim = embed_dim
        self.num_filters = num_filters
        self.filter_size = filter_size
        self.hidden_units = hidden_units
        self.dropout = dropout
        self.max_len = max_len
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.random_state = random_state
        if np.dtype(dtype) not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be 'float32' or 'float64'")
        self.dtype = str(np.dtype(dtype))

    # -- internals -----------------------------------------------------------
    @property
    def _np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    def _encode_fields(self, text_fields: list[list[str]]) -> list[np.ndarray]:
        return [
            encode_batch(field, self.max_len, dtype=np.int32)
            for field in text_fields
        ]

    def _forward(
        self, coded_fields: list[np.ndarray], stats: np.ndarray | None, training: bool
    ) -> np.ndarray:
        pooled = [
            block.forward(codes, training)
            for block, codes in zip(self._blocks, coded_fields)
        ]
        if stats is not None:
            pooled.append(stats)
        self._concat_parts = [part.shape[1] for part in pooled]
        out = np.concatenate(pooled, axis=1) if len(pooled) > 1 else pooled[0]
        for layer in self._head:
            out = layer.forward(out, training)
        return out

    def _backward(self, grad: np.ndarray, has_stats: bool) -> None:
        for layer in reversed(self._head):
            grad = layer.backward(grad)
        offsets = np.cumsum([0] + self._concat_parts)
        for i, block in enumerate(self._blocks):
            block.backward(grad[:, offsets[i] : offsets[i + 1]])
        # the stats slice (if any) is an input; no gradient needed

    def _standardize_stats(self, stats, fit: bool) -> np.ndarray | None:
        if stats is None:
            return None
        stats = np.asarray(stats, dtype=self._np_dtype)
        if fit:
            self._stats_mean = stats.mean(axis=0)
            std = stats.std(axis=0)
            std[std == 0.0] = 1.0
            self._stats_std = std
        return (stats - self._stats_mean) / self._stats_std

    def _build_network(self, stats_dim: int, n_classes: int) -> None:
        """Construct blocks/head/optimizer from ``self._rng`` (fresh draws)."""
        dt = self._np_dtype
        self._blocks = [
            _CNNBlock(
                self.embed_dim, self.num_filters, self.filter_size,
                self._rng, dtype=dt,
            )
            for _ in range(self._n_fields)
        ]
        concat_dim = sum(block.out_dim for block in self._blocks) + stats_dim
        self._head = [
            Dense(concat_dim, self.hidden_units, self._rng, dtype=dt),
            ReLU(),
            Dropout(self.dropout, self._rng),
            Dense(self.hidden_units, self.hidden_units, self._rng, dtype=dt),
            ReLU(),
            Dropout(self.dropout, self._rng),
            Dense(self.hidden_units, n_classes, self._rng, dtype=dt),
        ]
        params, grads = [], []
        for block in self._blocks:
            block_params, block_grads = block.parameters()
            params.extend(block_params)
            grads.extend(block_grads)
        for layer in self._head:
            params.extend(layer.params)
            grads.extend(layer.grads)
        self._params = params
        self._optimizer = Adam(params, grads, lr=self.lr)

    # -- checkpoint/state ------------------------------------------------------
    def _config(self) -> dict:
        return {field: getattr(self, field) for field in _CONFIG_FIELDS}

    def state_dict(self) -> dict:
        """Complete, copy-on-read training state.

        Contains everything a new instance needs to continue (or serve) the
        model bit-identically: weights, Adam moments, the RNG's exact bit
        state, the epoch/batch cursor, and the fitted preprocessing state.
        """
        self._check_fitted("_head")
        return {
            "format": _CHECKPOINT_FORMAT,
            "version": _CHECKPOINT_VERSION,
            "config": self._config(),
            "params": [p.copy() for p in self._params],
            "optimizer": self._optimizer.state_dict(),
            "rng_state": self._rng.bit_generator.state,
            "epoch": self._epoch,
            "batch_start": self._batch_start,
            "order": None if self._order is None else self._order.copy(),
            "epoch_loss": self._epoch_loss,
            "history": list(self.history_),
            "classes": list(self.classes_),
            "stats_mean": getattr(self, "_stats_mean", None),
            "stats_std": getattr(self, "_stats_std", None),
            "n_fields": self._n_fields,
            "has_stats": self._has_stats,
            "stats_dim": self._stats_dim,
            "complete": self.training_complete_,
        }

    def load_state_dict(self, state: dict) -> "CharCNNClassifier":
        """Restore the state captured by :meth:`state_dict` into ``self``.

        The instance's configuration must match the checkpoint's; the
        network is rebuilt, then weights/moments/RNG are overwritten with
        the saved values, so training can continue exactly where it stopped.
        """
        config = state.get("config", {})
        mine = self._config()
        mismatched = {
            key: (mine[key], config.get(key))
            for key in _CONFIG_FIELDS
            if config.get(key) != mine[key]
        }
        if mismatched:
            raise CheckpointError(
                f"checkpoint configuration mismatch: {mismatched}"
            )
        self._n_fields = state["n_fields"]
        self._has_stats = state["has_stats"]
        self._stats_dim = state["stats_dim"]
        if state["stats_mean"] is not None:
            self._stats_mean = state["stats_mean"]
            self._stats_std = state["stats_std"]
        self._encoder = LabelEncoder().fit(state["classes"])
        self.classes_ = self._encoder.classes_
        # rebuild the network (burning fresh init draws), then overwrite
        # every tensor and the RNG's bit state with the saved values
        self._rng = np.random.default_rng(self.random_state)
        self._build_network(self._stats_dim, len(self.classes_))
        for param, saved in zip(self._params, state["params"]):
            param[...] = saved
        self._optimizer.load_state_dict(state["optimizer"])
        self._rng.bit_generator.state = state["rng_state"]
        self._epoch = state["epoch"]
        self._batch_start = state["batch_start"]
        self._order = state["order"]
        self._epoch_loss = state["epoch_loss"]
        self.history_ = list(state["history"])
        self.training_complete_ = bool(state["complete"])
        return self

    def save_checkpoint(self, path: str | os.PathLike) -> None:
        """Atomically write the current :meth:`state_dict` to ``path``."""
        _write_checkpoint(os.fspath(path), self.state_dict())

    # -- API -------------------------------------------------------------------
    def fit(
        self,
        text_fields: list[list[str]],
        stats,
        y,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        max_steps: int | None = None,
    ) -> "CharCNNClassifier":
        """Train (or continue training) the network.

        ``checkpoint_path`` enables crash-safe training: a checkpoint is
        written every ``checkpoint_every`` optimizer steps (0 = at epoch
        boundaries only) and at the end.  With ``resume=True`` an existing
        checkpoint is loaded and training continues mid-epoch from its
        exact batch cursor and RNG state — the finished model is
        bit-identical to an uninterrupted run.  ``max_steps`` stops after
        that many optimizer steps in *this* call (checkpointing first),
        which lets preemptible workers train in bounded slices; check
        ``training_complete_`` to see whether more steps remain.
        """
        if not text_fields and stats is None:
            raise ValueError("need at least one text field or a stats matrix")
        n = len(y)
        for field in text_fields:
            if len(field) != n:
                raise ValueError("text field length mismatch with y")
        checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )

        resumed = False
        if resume and checkpoint_path and os.path.exists(checkpoint_path):
            self.load_state_dict(_read_checkpoint(checkpoint_path))
            if self._n_fields != len(text_fields):
                raise CheckpointError(
                    f"checkpoint was trained with {self._n_fields} text "
                    f"fields, got {len(text_fields)}"
                )
            if self._has_stats != (stats is not None):
                raise CheckpointError(
                    "checkpoint stats usage does not match the given data"
                )
            stats_matrix = self._standardize_stats(stats, fit=False)
            resumed = True
            telemetry.info(
                "charcnn.resumed", path=checkpoint_path, epoch=self._epoch,
                batch_start=self._batch_start,
            )
        else:
            self._rng = np.random.default_rng(self.random_state)
            self._encoder = LabelEncoder().fit(y)
            self.classes_ = self._encoder.classes_
            stats_matrix = self._standardize_stats(stats, fit=True)
            self._stats_dim = 0 if stats_matrix is None else stats_matrix.shape[1]
            self._has_stats = stats_matrix is not None
            self._n_fields = len(text_fields)
            self._build_network(self._stats_dim, len(self.classes_))
            self._epoch = 0
            self._batch_start = 0
            self._order = None
            self._epoch_loss = 0.0
            self.history_ = []
            self.training_complete_ = False

        if self.training_complete_:
            return self

        targets = self._encoder.transform(y)
        coded = self._encode_fields(text_fields)
        steps_this_call = 0

        for epoch in range(self._epoch, self.epochs):
            self._epoch = epoch
            if self._order is None:
                self._order = self._rng.permutation(n)
                self._batch_start = 0
                self._epoch_loss = 0.0
            order = self._order
            with telemetry.span("charcnn.epoch", epoch=epoch, n_examples=n) as sp:
                for start in range(self._batch_start, n, self.batch_size):
                    batch = order[start : start + self.batch_size]
                    batch_fields = [codes[batch] for codes in coded]
                    batch_stats = (
                        stats_matrix[batch] if stats_matrix is not None else None
                    )
                    with telemetry.span("charcnn.batch", size=len(batch)):
                        self._optimizer.zero_grad()
                        logits = self._forward(
                            batch_fields, batch_stats, training=True
                        )
                        loss, grad = softmax_cross_entropy(logits, targets[batch])
                        self._backward(grad, self._has_stats)
                        self._optimizer.step()
                    telemetry.count("charcnn.batches")
                    self._epoch_loss += loss * len(batch)
                    self._batch_start = start + self.batch_size
                    steps_this_call += 1
                    mid_epoch_done = self._batch_start < n
                    if (
                        checkpoint_path
                        and checkpoint_every > 0
                        and steps_this_call % checkpoint_every == 0
                        and mid_epoch_done
                    ):
                        self.save_checkpoint(checkpoint_path)
                    if (
                        max_steps is not None
                        and steps_this_call >= max_steps
                        and mid_epoch_done
                    ):
                        if checkpoint_path:
                            self.save_checkpoint(checkpoint_path)
                        return self
            mean_loss = self._epoch_loss / n
            self.history_.append(mean_loss)
            # epoch finished: advance the cursor, then checkpoint/stop on
            # the epoch boundary
            self._epoch = epoch + 1
            self._order = None
            self._batch_start = 0
            self._epoch_loss = 0.0
            if telemetry.enabled:
                telemetry.gauge("charcnn.loss", mean_loss)
                telemetry.observe("charcnn.epoch_s", sp.wall_s)
                telemetry.debug(
                    "charcnn.epoch", epoch=epoch, loss=mean_loss,
                    wall_s=sp.wall_s, resumed=resumed,
                )
            if self._epoch >= self.epochs:
                break
            if checkpoint_path and checkpoint_every == 0:
                self.save_checkpoint(checkpoint_path)
            if max_steps is not None and steps_this_call >= max_steps:
                if checkpoint_path:
                    self.save_checkpoint(checkpoint_path)
                return self

        self.training_complete_ = True
        if checkpoint_path:
            self.save_checkpoint(checkpoint_path)
        return self

    def predict_proba(self, text_fields: list[list[str]], stats) -> np.ndarray:
        self._check_fitted("_head")
        if len(text_fields) != self._n_fields:
            raise ValueError(
                f"model was fit with {self._n_fields} text fields, "
                f"got {len(text_fields)}"
            )
        coded = self._encode_fields(text_fields)
        stats_matrix = self._standardize_stats(stats, fit=False)
        logits = self._forward(coded, stats_matrix, training=False)
        return softmax(logits)

    def predict(self, text_fields: list[list[str]], stats) -> list:
        probs = self.predict_proba(text_fields, stats)
        return self._encoder.inverse_transform(np.argmax(probs, axis=1))

    def score(self, text_fields: list[list[str]], stats, y) -> float:
        pred = self.predict(text_fields, stats)
        return float(
            np.mean(np.asarray(pred, dtype=object) == np.asarray(y, dtype=object))
        )
