"""The paper's character-level CNN (Appendix F), in pure numpy.

Architecture: every text input (attribute name, sample values) goes through
an Embedding, two cascaded Conv1D layers (ReLU), and a global max pool; all
pooled vectors are concatenated with the descriptive statistics and fed to a
two-hidden-layer MLP with dropout and a softmax output.  Trained end-to-end
with Adam.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.preprocessing import LabelEncoder
from repro.obs import telemetry
from repro.nn.encoding import VOCAB_SIZE, encode_batch
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool1D,
    ReLU,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optim import Adam


class _CNNBlock:
    """Embedding → Conv1D → ReLU → Conv1D → ReLU → GlobalMaxPool."""

    def __init__(
        self,
        embed_dim: int,
        num_filters: int,
        filter_size: int,
        rng: np.random.Generator,
    ):
        self.layers = [
            Embedding(VOCAB_SIZE, embed_dim, rng),
            Conv1D(embed_dim, num_filters, filter_size, rng),
            ReLU(),
            Conv1D(num_filters, num_filters, filter_size, rng),
            ReLU(),
            GlobalMaxPool1D(),
        ]
        self.out_dim = num_filters

    def forward(self, codes: np.ndarray, training: bool) -> np.ndarray:
        out = codes
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        params, grads = [], []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads


class CharCNNClassifier(BaseEstimator, ClassifierMixin):
    """Multi-input char-CNN classifier over text fields + a stats vector.

    ``fit`` takes ``text_fields`` — a list of F fields, each a list of N
    strings — an optional (N, S) stats matrix, and N labels.  Either part may
    be omitted (``text_fields=[]`` or ``stats=None``), matching the feature
    set ablations of Table 2.
    """

    def __init__(
        self,
        embed_dim: int = 64,
        num_filters: int = 32,
        filter_size: int = 2,
        hidden_units: int = 250,
        dropout: float = 0.25,
        max_len: int = 24,
        epochs: int = 12,
        batch_size: int = 64,
        lr: float = 1e-3,
        random_state: int = 0,
    ):
        self.embed_dim = embed_dim
        self.num_filters = num_filters
        self.filter_size = filter_size
        self.hidden_units = hidden_units
        self.dropout = dropout
        self.max_len = max_len
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.random_state = random_state

    # -- internals -----------------------------------------------------------
    def _encode_fields(self, text_fields: list[list[str]]) -> list[np.ndarray]:
        return [encode_batch(field, self.max_len) for field in text_fields]

    def _forward(
        self, coded_fields: list[np.ndarray], stats: np.ndarray | None, training: bool
    ) -> np.ndarray:
        pooled = [
            block.forward(codes, training)
            for block, codes in zip(self._blocks, coded_fields)
        ]
        if stats is not None:
            pooled.append(stats)
        self._concat_parts = [part.shape[1] for part in pooled]
        out = np.concatenate(pooled, axis=1) if len(pooled) > 1 else pooled[0]
        for layer in self._head:
            out = layer.forward(out, training)
        return out

    def _backward(self, grad: np.ndarray, has_stats: bool) -> None:
        for layer in reversed(self._head):
            grad = layer.backward(grad)
        offsets = np.cumsum([0] + self._concat_parts)
        n_blocks = len(self._blocks)
        for i, block in enumerate(self._blocks):
            block.backward(grad[:, offsets[i] : offsets[i + 1]])
        # the stats slice (if any) is an input; no gradient needed

    def _standardize_stats(self, stats, fit: bool) -> np.ndarray | None:
        if stats is None:
            return None
        stats = np.asarray(stats, dtype=float)
        if fit:
            self._stats_mean = stats.mean(axis=0)
            std = stats.std(axis=0)
            std[std == 0.0] = 1.0
            self._stats_std = std
        return (stats - self._stats_mean) / self._stats_std

    # -- API -------------------------------------------------------------------
    def fit(self, text_fields: list[list[str]], stats, y) -> "CharCNNClassifier":
        if not text_fields and stats is None:
            raise ValueError("need at least one text field or a stats matrix")
        n = len(y)
        for field in text_fields:
            if len(field) != n:
                raise ValueError("text field length mismatch with y")
        rng = np.random.default_rng(self.random_state)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        targets = self._encoder.transform(y)
        n_classes = len(self.classes_)

        stats_matrix = self._standardize_stats(stats, fit=True)
        stats_dim = 0 if stats_matrix is None else stats_matrix.shape[1]
        self._has_stats = stats_matrix is not None
        self._n_fields = len(text_fields)

        self._blocks = [
            _CNNBlock(self.embed_dim, self.num_filters, self.filter_size, rng)
            for _ in text_fields
        ]
        concat_dim = sum(block.out_dim for block in self._blocks) + stats_dim
        self._head = [
            Dense(concat_dim, self.hidden_units, rng),
            ReLU(),
            Dropout(self.dropout, rng),
            Dense(self.hidden_units, self.hidden_units, rng),
            ReLU(),
            Dropout(self.dropout, rng),
            Dense(self.hidden_units, n_classes, rng),
        ]

        params, grads = [], []
        for block in self._blocks:
            block_params, block_grads = block.parameters()
            params.extend(block_params)
            grads.extend(block_grads)
        for layer in self._head:
            params.extend(layer.params)
            grads.extend(layer.grads)
        optimizer = Adam(params, grads, lr=self.lr)

        coded = self._encode_fields(text_fields)
        self.history_: list[float] = []
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            with telemetry.span("charcnn.epoch", epoch=epoch, n_examples=n) as sp:
                for start in range(0, n, self.batch_size):
                    batch = order[start : start + self.batch_size]
                    batch_fields = [codes[batch] for codes in coded]
                    batch_stats = (
                        stats_matrix[batch] if stats_matrix is not None else None
                    )
                    with telemetry.span("charcnn.batch", size=len(batch)):
                        optimizer.zero_grad()
                        logits = self._forward(
                            batch_fields, batch_stats, training=True
                        )
                        loss, grad = softmax_cross_entropy(logits, targets[batch])
                        self._backward(grad, self._has_stats)
                        optimizer.step()
                    telemetry.count("charcnn.batches")
                    epoch_loss += loss * len(batch)
            mean_loss = epoch_loss / n
            self.history_.append(mean_loss)
            if telemetry.enabled:
                telemetry.gauge("charcnn.loss", mean_loss)
                telemetry.observe("charcnn.epoch_s", sp.wall_s)
                telemetry.debug(
                    "charcnn.epoch", epoch=epoch, loss=mean_loss,
                    wall_s=sp.wall_s,
                )
        return self

    def predict_proba(self, text_fields: list[list[str]], stats) -> np.ndarray:
        self._check_fitted("_head")
        if len(text_fields) != self._n_fields:
            raise ValueError(
                f"model was fit with {self._n_fields} text fields, "
                f"got {len(text_fields)}"
            )
        coded = self._encode_fields(text_fields)
        stats_matrix = self._standardize_stats(stats, fit=False)
        logits = self._forward(coded, stats_matrix, training=False)
        return softmax(logits)

    def predict(self, text_fields: list[list[str]], stats) -> list:
        probs = self.predict_proba(text_fields, stats)
        return self._encoder.inverse_transform(np.argmax(probs, axis=1))

    def score(self, text_fields: list[list[str]], stats, y) -> float:
        pred = self.predict(text_fields, stats)
        return float(
            np.mean(np.asarray(pred, dtype=object) == np.asarray(y, dtype=object))
        )
