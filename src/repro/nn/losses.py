"""Losses for the numpy NN substrate.

Both functions are dtype-preserving: probabilities and gradients come back
in the dtype of the logits (float32 training stays float32 end-to-end), and
the scalar loss is always an exact python float.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of integer ``targets`` and its gradient w.r.t. logits."""
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    loss = -float(np.mean(np.log(probs[np.arange(n), targets] + eps)))
    grad = probs.copy()
    grad[np.arange(n), targets] -= 1.0
    grad /= n
    return loss, grad
