"""Neural network layers with explicit forward/backward passes (pure numpy).

The layer contract: ``forward(x, training)`` caches whatever the backward
pass needs, ``backward(grad_out)`` returns the gradient w.r.t. the input and
accumulates parameter gradients into ``grads`` (aligned with ``params``).
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class; parameterless layers keep ``params``/``grads`` empty."""

    def __init__(self):
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0


class Embedding(Layer):
    """Map integer char codes (batch, seq) to dense vectors (batch, seq, dim).

    Index 0 is reserved for padding and stays a zero vector.
    """

    def __init__(self, vocab_size: int, embed_dim: int, rng: np.random.Generator):
        super().__init__()
        scale = 1.0 / np.sqrt(embed_dim)
        self.weight = rng.normal(0.0, scale, size=(vocab_size, embed_dim))
        self.weight[0] = 0.0
        self.params = [self.weight]
        self.grads = [np.zeros_like(self.weight)]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._indices = x
        return self.weight[x]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        np.add.at(self.grads[0], self._indices, grad_out)
        self.grads[0][0] = 0.0  # padding row never updates
        return np.zeros(self._indices.shape)  # indices carry no gradient


class Conv1D(Layer):
    """1-D convolution over (batch, seq, in_channels), 'valid' padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        scale = np.sqrt(2.0 / (kernel_size * in_channels))
        self.weight = rng.normal(
            0.0, scale, size=(kernel_size, in_channels, out_channels)
        )
        self.bias = np.zeros(out_channels)
        self.kernel_size = kernel_size
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """(batch, out_seq, kernel, channels) sliding-window view."""
        batch, seq, channels = x.shape
        out_seq = seq - self.kernel_size + 1
        stride_b, stride_s, stride_c = x.strides
        return np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_seq, self.kernel_size, channels),
            strides=(stride_b, stride_s, stride_s, stride_c),
            writeable=False,
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] < self.kernel_size:
            pad = self.kernel_size - x.shape[1]
            x = np.pad(x, ((0, 0), (0, pad), (0, 0)))
        self._x = x
        windows = self._windows(x)
        self._windows_cache = windows
        return (
            np.einsum("bokc,kcf->bof", windows, self.weight, optimize=True)
            + self.bias
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        windows = self._windows_cache
        self.grads[0] += np.einsum(
            "bokc,bof->kcf", windows, grad_out, optimize=True
        )
        self.grads[1] += grad_out.sum(axis=(0, 1))
        grad_x = np.zeros_like(self._x)
        # scatter: each output position o consumed input positions o..o+k-1
        contribution = np.einsum(
            "bof,kcf->bokc", grad_out, self.weight, optimize=True
        )
        for k in range(self.kernel_size):
            grad_x[:, k : k + grad_out.shape[1], :] += contribution[:, :, k, :]
        return grad_x


class ReLU(Layer):
    """Elementwise max(0, x)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class GlobalMaxPool1D(Layer):
    """Max over the sequence axis of (batch, seq, channels)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        self._argmax = np.argmax(x, axis=1)
        return np.max(x, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_x = np.zeros(self._x_shape)
        batch, _seq, channels = self._x_shape
        b_index = np.repeat(np.arange(batch), channels)
        c_index = np.tile(np.arange(channels), batch)
        grad_x[b_index, self._argmax.ravel(), c_index] = grad_out.ravel()
        return grad_x


class Dense(Layer):
    """Affine layer over (batch, features)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.weight.T


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
