"""Neural network layers with explicit forward/backward passes (pure numpy).

The layer contract: ``forward(x, training)`` caches whatever the backward
pass needs, ``backward(grad_out)`` returns the gradient w.r.t. the input and
accumulates parameter gradients into ``grads`` (aligned with ``params``).
Layers that terminate the graph (integer-input embeddings) return ``None``
from ``backward`` — their inputs carry no gradient.

Every parameterized layer takes a ``dtype`` (default float64).  float32
halves the memory traffic of the GEMM-heavy CharCNN hot loop; the float64
default keeps the historical bit-exact behaviour (see docs/performance.md,
"Kernel frontier").

``Conv1D`` uses an im2col memory layout: the forward pass materializes the
sliding windows as one ``(batch*out_seq, kernel*channels)`` matrix so the
convolution is a single GEMM, and the backward pass is two GEMMs plus a
col2im fold.  Per-call scratch buffers are preallocated and reused across
batches of the same shape.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class; parameterless layers keep ``params``/``grads`` empty."""

    def __init__(self):
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0


class Embedding(Layer):
    """Map integer char codes (batch, seq) to dense vectors (batch, seq, dim).

    Index 0 is reserved for padding and stays a zero vector.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        rng: np.random.Generator,
        dtype: np.dtype | type = np.float64,
    ):
        super().__init__()
        scale = 1.0 / np.sqrt(embed_dim)
        self.weight = rng.normal(0.0, scale, size=(vocab_size, embed_dim)).astype(
            dtype, copy=False
        )
        self.weight[0] = 0.0
        self.params = [self.weight]
        self.grads = [np.zeros_like(self.weight)]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._indices = x
        return self.weight[x]

    def backward(self, grad_out: np.ndarray) -> None:
        np.add.at(self.grads[0], self._indices, grad_out)
        self.grads[0][0] = 0.0  # padding row never updates
        return None  # integer indices carry no gradient


class Conv1D(Layer):
    """1-D convolution over (batch, seq, in_channels), 'valid' padding.

    im2col layout: ``forward`` flattens the sliding windows into a
    ``(batch*out_seq, kernel*channels)`` matrix (one copy) and runs a single
    GEMM against the ``(kernel*channels, filters)``-reshaped weight.
    ``backward`` is two GEMMs (weight gradient, column gradient) plus a
    col2im fold that scatters window gradients back onto the sequence.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        dtype: np.dtype | type = np.float64,
    ):
        super().__init__()
        scale = np.sqrt(2.0 / (kernel_size * in_channels))
        self.weight = rng.normal(
            0.0, scale, size=(kernel_size, in_channels, out_channels)
        ).astype(dtype, copy=False)
        self.bias = np.zeros(out_channels, dtype=self.weight.dtype)
        self.kernel_size = kernel_size
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._grad_x_buf: np.ndarray | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(batch*out_seq, kernel*channels) window matrix (contiguous copy)."""
        batch, seq, channels = x.shape
        out_seq = seq - self.kernel_size + 1
        stride_b, stride_s, stride_c = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_seq, self.kernel_size, channels),
            strides=(stride_b, stride_s, stride_s, stride_c),
            writeable=False,
        )
        # reshape of the overlapping view materializes the im2col copy
        return windows.reshape(batch * out_seq, self.kernel_size * channels)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] < self.kernel_size:
            pad = self.kernel_size - x.shape[1]
            x = np.pad(x, ((0, 0), (0, pad), (0, 0)))
        self._x_shape = x.shape
        batch, seq, channels = x.shape
        out_seq = seq - self.kernel_size + 1
        cols = self._im2col(x)
        self._cols = cols
        kc, filters = self.weight.size // self.weight.shape[2], self.weight.shape[2]
        out = cols @ self.weight.reshape(kc, filters)
        out += self.bias
        return out.reshape(batch, out_seq, filters)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        batch, seq, channels = self._x_shape
        out_seq = grad_out.shape[1]
        filters = self.weight.shape[2]
        g2 = grad_out.reshape(batch * out_seq, filters)
        # weight/bias gradients: one GEMM + one reduction
        self.grads[0] += (self._cols.T @ g2).reshape(self.weight.shape)
        self.grads[1] += g2.sum(axis=0)
        # input gradient: GEMM back to window space, then col2im fold
        dcols = g2 @ self.weight.reshape(-1, filters).T
        dwin = dcols.reshape(batch, out_seq, self.kernel_size, channels)
        buf = self._grad_x_buf
        if buf is None or buf.shape != self._x_shape or buf.dtype != dwin.dtype:
            buf = np.empty(self._x_shape, dtype=dwin.dtype)
            self._grad_x_buf = buf
        # each output position o consumed input positions o..o+k-1; assign the
        # k=0 slice first so the buffer needs no zero-fill beyond the tail
        buf[:, :out_seq, :] = dwin[:, :, 0, :]
        if seq > out_seq:
            buf[:, out_seq:, :] = 0.0
        for k in range(1, self.kernel_size):
            buf[:, k : k + out_seq, :] += dwin[:, :, k, :]
        return buf


class ReLU(Layer):
    """Elementwise max(0, x)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class GlobalMaxPool1D(Layer):
    """Max over the sequence axis of (batch, seq, channels)."""

    def __init__(self):
        super().__init__()
        self._grad_buf: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        self._dtype = x.dtype
        self._argmax = np.argmax(x, axis=1)
        return np.max(x, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        buf = self._grad_buf
        if buf is None or buf.shape != self._x_shape or buf.dtype != self._dtype:
            buf = np.empty(self._x_shape, dtype=self._dtype)
            self._grad_buf = buf
        buf.fill(0.0)
        batch, _seq, channels = self._x_shape
        b_index = np.repeat(np.arange(batch), channels)
        c_index = np.tile(np.arange(channels), batch)
        buf[b_index, self._argmax.ravel(), c_index] = grad_out.ravel()
        return buf


class Dense(Layer):
    """Affine layer over (batch, features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        dtype: np.dtype | type = np.float64,
    ):
        super().__init__()
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features)).astype(
            dtype, copy=False
        )
        self.bias = np.zeros(out_features, dtype=self.weight.dtype)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.weight.T


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # mask in the input's dtype so float32 activations stay float32
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / x.dtype.type(
            keep
        )
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
