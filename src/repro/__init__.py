"""repro — reproduction of "Towards Benchmarking Feature Type Inference for
AutoML Platforms" (SIGMOD 2021).

Public API highlights:

- :class:`repro.types.FeatureType` — the 9-class label vocabulary.
- :func:`repro.core.featurize.profile_column` — base featurization.
- :class:`repro.core.pipeline.TypeInferencePipeline` — CSV → feature types.
- :mod:`repro.tools` — TFDV/Pandas/TransmogrifAI/AutoGluon/rules/Sherlock baselines.
- :mod:`repro.datagen` — synthetic benchmark corpora.
- :mod:`repro.downstream` — the 30-task downstream benchmark suite.
- :mod:`repro.benchmark` — experiment harness regenerating every paper table/figure.
"""

from repro.types import ALL_FEATURE_TYPES, FeatureType, PAPER_CLASS_DISTRIBUTION

__version__ = "1.0.0"

__all__ = [
    "ALL_FEATURE_TYPES",
    "FeatureType",
    "PAPER_CLASS_DISTRIBUTION",
    "__version__",
]
