"""``repro-obs``: inspect traces and track performance trends.

Three subcommands over the artifacts the telemetry layer emits:

``repro-obs trace show spans.jsonl [more.jsonl ...]``
    Rebuild the span tree (by trace_id/span_id/parent_span_id) from one or
    more spans-JSONL exports — e.g. the client's ``--trace-out`` file plus
    the server's — and render it with per-span wall/CPU/self time.  The
    critical path (the chain of longest children from each root) is marked
    with ``*`` and totalled.

``repro-obs trace merge a.jsonl b.jsonl -o merged.jsonl``
    Stitch multi-process span files into one, deduplicated by span_id and
    ordered by start time — the input ``trace show`` and archival want.

``repro-obs trend BENCH_pr2.json BENCH_pr3.json run_manifest.json ...``
    Compare committed benchmark evidence across PRs: every numeric leaf
    is flattened to a dotted path, adjacent files are diffed, and changes
    past ``--threshold`` percent in the *bad* direction (latency/wall-time
    up, throughput down) are flagged as regressions.  ``--strict`` turns
    flagged regressions into a non-zero exit for CI gating.

Files with no overlapping metrics simply produce no comparisons — trend
accepts any mix of ``BENCH_*.json`` shapes and run manifests.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import read_jsonl, write_jsonl

#: Trend: metric-path fragments where an *increase* is bad.
_BAD_UP = (
    "wall_s", "wall_clock", "cpu_s", "latency", "_ms", "queue", "p50",
    "p90", "p99", "shed", "errors", "deadline_exceeded", "dropped",
)
#: Trend: metric-path fragments where a *decrease* is bad.
_BAD_DOWN = ("columns_per_s", "per_s", "speedup", "throughput", "accuracy")


# ---------------------------------------------------------------------------
# trace loading / tree building
# ---------------------------------------------------------------------------

def load_spans(paths: list[str]) -> list[dict]:
    """All span records from the given JSONL files, in file order."""
    records: list[dict] = []
    for path in paths:
        for record in read_jsonl(path):
            record.setdefault("_file", path)
            records.append(record)
    return records


def dedupe_spans(records: list[dict]) -> list[dict]:
    """Drop duplicate span_ids (a span exported by both a worker file and
    the parent's merged file); records without ids are kept as-is."""
    seen: set[str] = set()
    out: list[dict] = []
    for record in records:
        span_id = record.get("span_id")
        if span_id is not None:
            if span_id in seen:
                continue
            seen.add(span_id)
        out.append(record)
    return out


def group_by_trace(records: list[dict]) -> dict[str, list[dict]]:
    """trace_id → records (id-less legacy records group under ``""``)."""
    groups: dict[str, list[dict]] = {}
    for record in records:
        groups.setdefault(record.get("trace_id") or "", []).append(record)
    return groups


def build_tree(records: list[dict]) -> tuple[list[dict], dict[str, list[dict]]]:
    """(roots, children-by-span_id) for one trace's records.

    A record whose parent_span_id is unknown (the parent ran in a process
    whose export was not provided, or was dropped by the ring buffer) is
    treated as a root rather than lost.
    """
    by_id = {r["span_id"]: r for r in records if r.get("span_id")}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for record in records:
        parent = record.get("parent_span_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("started_at") or 0.0)
    roots.sort(key=lambda r: r.get("started_at") or 0.0)
    return roots, children


def critical_path(
    roots: list[dict], children: dict[str, list[dict]]
) -> list[dict]:
    """Longest-child chain starting at the longest root."""
    if not roots:
        return []
    path = [max(roots, key=lambda r: r.get("wall_s") or 0.0)]
    while True:
        kids = children.get(path[-1].get("span_id") or "", [])
        if not kids:
            return path
        path.append(max(kids, key=lambda r: r.get("wall_s") or 0.0))


def render_tree(records: list[dict]) -> str:
    """One trace's records as an indented tree with timings."""
    roots, children = build_tree(records)
    on_path = {id(r) for r in critical_path(roots, children)}
    lines: list[str] = []

    def self_s(record: dict) -> float:
        kids = children.get(record.get("span_id") or "", [])
        return max(
            0.0,
            (record.get("wall_s") or 0.0)
            - sum(k.get("wall_s") or 0.0 for k in kids),
        )

    def walk(record: dict, depth: int) -> None:
        mark = "*" if id(record) in on_path else " "
        wall = record.get("wall_s") or 0.0
        cpu = record.get("cpu_s") or 0.0
        attrs = record.get("attrs") or {}
        attr_text = ""
        if attrs:
            shown = ", ".join(f"{k}={v}" for k, v in list(attrs.items())[:4])
            attr_text = f"  [{shown}]"
        lines.append(
            f"{mark} {'  ' * depth}{record.get('name', '?')}  "
            f"wall={1000 * wall:.2f}ms self={1000 * self_s(record):.2f}ms "
            f"cpu={1000 * cpu:.2f}ms{attr_text}"
        )
        for child in children.get(record.get("span_id") or "", []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    path = critical_path(roots, children)
    if path:
        total = sum(self_s(r) for r in path)
        names = " > ".join(r.get("name", "?") for r in path)
        lines.append(
            f"critical path ({len(path)} spans, "
            f"{1000 * total:.2f}ms self time): {names}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# trend
# ---------------------------------------------------------------------------

def flatten_numeric(payload, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested dict as ``{"a.b.c": value}``.

    Lists are skipped (experiment lists and workload arrays vary in length
    across PRs, so positional paths would compare unlike things).
    """
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out[path] = float(value)
            elif isinstance(value, dict):
                out.update(flatten_numeric(value, path))
    return out


def classify_delta(path: str, before: float, after: float) -> str | None:
    """'regression' / 'improvement' / None for a changed metric."""
    lowered = path.lower()
    worse_up = any(frag in lowered for frag in _BAD_UP)
    worse_down = any(frag in lowered for frag in _BAD_DOWN)
    if worse_down:  # throughput-ish wins over latency-ish on mixed paths
        return "regression" if after < before else "improvement"
    if worse_up:
        return "regression" if after > before else "improvement"
    return None


def compare_files(
    names: list[str],
    payloads: list[dict],
    threshold_pct: float,
) -> tuple[list[str], int]:
    """Adjacent-pair comparison; returns (report lines, n_regressions)."""
    lines: list[str] = []
    regressions = 0
    for index in range(1, len(payloads)):
        before_name, after_name = names[index - 1], names[index]
        before = flatten_numeric(payloads[index - 1])
        after = flatten_numeric(payloads[index])
        shared = sorted(set(before) & set(after))
        lines.append(f"== {before_name} -> {after_name} "
                     f"({len(shared)} shared metrics) ==")
        if not shared:
            lines.append("  (no overlapping numeric metrics)")
            continue
        flagged = 0
        for path in shared:
            b, a = before[path], after[path]
            base = max(abs(b), 1e-12)
            pct = 100.0 * (a - b) / base
            if abs(pct) < threshold_pct:
                continue
            verdict = classify_delta(path, b, a)
            if verdict is None:
                continue
            flagged += 1
            if verdict == "regression":
                regressions += 1
            lines.append(
                f"  {'REGRESSION' if verdict == 'regression' else 'improved '}"
                f"  {path}: {b:g} -> {a:g} ({pct:+.1f}%)"
            )
        if not flagged:
            lines.append(f"  no changes past {threshold_pct:g}% "
                         "in either direction")
    return lines, regressions


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect span traces and benchmark trends.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="span-tree operations")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    show = trace_sub.add_parser(
        "show", help="render the span tree from spans-JSONL exports"
    )
    show.add_argument("files", nargs="+", metavar="SPANS_JSONL")
    show.add_argument(
        "--trace-id", default=None,
        help="render only this trace (default: every trace found)",
    )

    merge = trace_sub.add_parser(
        "merge", help="stitch multi-process span files into one JSONL"
    )
    merge.add_argument("files", nargs="+", metavar="SPANS_JSONL")
    merge.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write merged JSONL here (default: stdout)",
    )
    merge.add_argument(
        "--trace-id", default=None,
        help="keep only this trace's spans",
    )

    trend = sub.add_parser(
        "trend", help="compare BENCH_*.json / run manifests across PRs"
    )
    trend.add_argument("files", nargs="+", metavar="JSON")
    trend.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="flag changes past this percentage (default: 10)",
    )
    trend.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any regression is flagged (CI gating)",
    )
    return parser


def _cmd_trace_show(args) -> int:
    records = dedupe_spans(load_spans(args.files))
    if not records:
        print("no span records found", file=sys.stderr)
        return 1
    groups = group_by_trace(records)
    if args.trace_id is not None:
        if args.trace_id not in groups:
            print(f"trace {args.trace_id!r} not found; traces present: "
                  f"{sorted(g for g in groups if g)}", file=sys.stderr)
            return 1
        groups = {args.trace_id: groups[args.trace_id]}
    first = True
    for trace_id in sorted(groups, key=lambda t: (t == "", t)):
        if not first:
            print()
        first = False
        label = trace_id or "(records without trace ids)"
        print(f"trace {label} — {len(groups[trace_id])} spans")
        print(render_tree(groups[trace_id]))
    return 0


def _cmd_trace_merge(args) -> int:
    records = dedupe_spans(load_spans(args.files))
    if args.trace_id is not None:
        records = [r for r in records if r.get("trace_id") == args.trace_id]
    records.sort(
        key=lambda r: (r.get("trace_id") or "", r.get("started_at") or 0.0)
    )
    for record in records:
        record.pop("_file", None)
    if args.output:
        n = write_jsonl(args.output, records)
        print(f"merged {n} spans from {len(args.files)} file(s) "
              f"into {args.output}")
    else:
        for record in records:
            print(json.dumps(record, sort_keys=False))
    return 0


def _cmd_trend(args) -> int:
    payloads = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"repro-obs: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if len(payloads) < 2:
        print("repro-obs trend: need at least two files to compare",
              file=sys.stderr)
        return 2
    lines, regressions = compare_files(
        list(args.files), payloads, args.threshold
    )
    print("\n".join(lines))
    print(f"\n{regressions} regression(s) flagged across "
          f"{len(payloads) - 1} comparison(s)")
    if regressions and args.strict:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        if args.trace_command == "show":
            return _cmd_trace_show(args)
        return _cmd_trace_merge(args)
    return _cmd_trend(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
