"""Nested spans with wall-clock + CPU time.

A :class:`Tracer` records :class:`SpanRecord`\\ s as instrumented code runs.
Spans nest: entering a span pushes it on a per-thread stack, so each finished
record knows its parent's name and its own depth.  Aggregation over records
(:func:`aggregate_spans`) yields the per-stage breakdown manifests and the
profiling script report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: Hard cap on retained records; beyond it spans are counted but dropped.
DEFAULT_MAX_RECORDS = 100_000


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    started_at: float  # epoch seconds (wall clock at __enter__)
    wall_s: float
    cpu_s: float
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "started_at": self.started_at,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Span:
    """Context manager measuring one named region.

    After ``__exit__`` the measured ``wall_s``/``cpu_s`` are readable on the
    object, so callers (e.g. the benchmark runner) can print the same elapsed
    time the tracer recorded.
    """

    __slots__ = (
        "tracer", "name", "attrs", "started_at", "wall_s", "cpu_s",
        "_wall0", "_cpu0", "depth", "parent",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.started_at = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.started_at = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exits; recover rather than corrupt
            stack.remove(self)
        if exc_type is not None:
            self.attrs = {**self.attrs, "error": exc_type.__name__}
        self.tracer._record(self)

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs = {**self.attrs, **attrs}
        return self


class Tracer:
    """Collects span records; always-on (the no-op gate lives in the facade)."""

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS):
        self.max_records = max_records
        self.records: list[SpanRecord] = []
        self.dropped = 0
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self.records) >= self.max_records:
                self.dropped += 1
                return
            self.records.append(
                SpanRecord(
                    name=span.name,
                    started_at=span.started_at,
                    wall_s=span.wall_s,
                    cpu_s=span.cpu_s,
                    depth=span.depth,
                    parent=span.parent,
                    attrs=span.attrs,
                )
            )

    def reset(self) -> None:
        with self._lock:
            self.records = []
            self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


class NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled.

    Keeps ``wall_s``/``cpu_s`` attributes (always 0.0) so code written against
    :class:`Span` runs unchanged.
    """

    __slots__ = ()
    started_at = 0.0
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


def aggregate_spans(records: list[SpanRecord]) -> dict[str, dict]:
    """Per-name summary: count and wall/CPU totals, mean and max wall time."""
    out: dict[str, dict] = {}
    for record in records:
        entry = out.setdefault(
            record.name,
            {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_wall_s": 0.0},
        )
        entry["count"] += 1
        entry["wall_s"] += record.wall_s
        entry["cpu_s"] += record.cpu_s
        entry["max_wall_s"] = max(entry["max_wall_s"], record.wall_s)
    for entry in out.values():
        entry["mean_wall_s"] = entry["wall_s"] / entry["count"]
    return out
