"""Nested spans with wall-clock + CPU time.

A :class:`Tracer` records :class:`SpanRecord`\\ s as instrumented code runs.
Spans nest: entering a span pushes it on a per-thread stack, so each finished
record knows its parent's name and its own depth.  Aggregation over records
(:func:`aggregate_spans`) yields the per-stage breakdown manifests and the
profiling script report.

Every span also carries distributed-tracing identity: a ``trace_id`` shared
by every span of one end-to-end operation and a fresh ``span_id``, with
``parent_span_id`` linking the tree.  Within a thread the parent comes from
the span stack; a root span adopts the ambient
:class:`~repro.obs.context.TraceContext` (propagated from another thread or
process) or, absent one, starts a fresh trace.  ``repro-obs trace show``
rebuilds the tree from exported records by these ids.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.context import current_context, new_span_id, new_trace_id

#: Hard cap on retained records; beyond it spans are counted but dropped.
DEFAULT_MAX_RECORDS = 100_000


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    started_at: float  # epoch seconds (wall clock at __enter__)
    wall_s: float
    cpu_s: float
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_dict` form (JSONL import)."""
        return cls(
            name=payload.get("name", "?"),
            started_at=float(payload.get("started_at", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            depth=int(payload.get("depth", 0)),
            parent=payload.get("parent"),
            attrs=dict(payload.get("attrs") or {}),
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
            parent_span_id=payload.get("parent_span_id"),
        )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "started_at": self.started_at,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Span:
    """Context manager measuring one named region.

    After ``__exit__`` the measured ``wall_s``/``cpu_s`` are readable on the
    object, so callers (e.g. the benchmark runner) can print the same elapsed
    time the tracer recorded.
    """

    __slots__ = (
        "tracer", "name", "attrs", "started_at", "wall_s", "cpu_s",
        "_wall0", "_cpu0", "depth", "parent",
        "trace_id", "span_id", "parent_span_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.started_at = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.depth = len(stack)
        if stack:
            parent = stack[-1]
            self.parent = parent.name
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        else:
            self.parent = None
            ambient = current_context()
            if ambient is not None:
                # A remote parent (another thread/process) propagated here.
                self.trace_id = ambient.trace_id
                self.parent_span_id = ambient.span_id
            else:
                self.trace_id = new_trace_id()
                self.parent_span_id = None
        self.span_id = new_span_id()
        stack.append(self)
        self.started_at = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exits; recover rather than corrupt
            stack.remove(self)
        if exc_type is not None:
            self.attrs = {**self.attrs, "error": exc_type.__name__}
        self.tracer._record(self)

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs = {**self.attrs, **attrs}
        return self


class Tracer:
    """Collects span records; always-on (the no-op gate lives in the facade).

    ``on_drop`` (if set) is called with the number of records just dropped
    whenever the ring-buffer cap rejects a span — the facade wires it to a
    ``trace.dropped`` counter so truncated traces are *visible* instead of
    silently shorter.
    """

    def __init__(
        self,
        max_records: int = DEFAULT_MAX_RECORDS,
        on_drop: Callable[[int], None] | None = None,
    ):
        self.max_records = max_records
        self.records: list[SpanRecord] = []
        self.dropped = 0
        self.on_drop = on_drop
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self.records) >= self.max_records:
                self.dropped += 1
                on_drop = self.on_drop
            else:
                on_drop = None
                self.records.append(
                    SpanRecord(
                        name=span.name,
                        started_at=span.started_at,
                        wall_s=span.wall_s,
                        cpu_s=span.cpu_s,
                        depth=span.depth,
                        parent=span.parent,
                        attrs=span.attrs,
                        trace_id=span.trace_id,
                        span_id=span.span_id,
                        parent_span_id=span.parent_span_id,
                    )
                )
        if on_drop is not None:
            on_drop(1)

    def record_external(
        self,
        name: str,
        started_at: float,
        wall_s: float,
        cpu_s: float = 0.0,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
        **attrs,
    ) -> SpanRecord | None:
        """Append a span that was *measured elsewhere* (e.g. queue wait
        reconstructed from a request's enqueue/start timestamps, where no
        code ran inside the interval).  Returns the record, or None if the
        cap dropped it."""
        record = SpanRecord(
            name=name,
            started_at=started_at,
            wall_s=wall_s,
            cpu_s=cpu_s,
            depth=0,
            parent=None,
            attrs=attrs,
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_span_id=parent_span_id,
        )
        with self._lock:
            if len(self.records) >= self.max_records:
                self.dropped += 1
                on_drop = self.on_drop
            else:
                on_drop = None
                self.records.append(record)
        if on_drop is not None:
            on_drop(1)
            return None
        return record

    def ingest(self, records: list[SpanRecord]) -> int:
        """Adopt records produced elsewhere (a worker process's piped-back
        spans), honoring the cap.  Returns the number actually kept."""
        kept = 0
        dropped = 0
        with self._lock:
            for record in records:
                if len(self.records) >= self.max_records:
                    self.dropped += 1
                    dropped += 1
                else:
                    self.records.append(record)
                    kept += 1
            on_drop = self.on_drop if dropped else None
        if on_drop is not None:
            on_drop(dropped)
        return kept

    def reset(self) -> None:
        with self._lock:
            self.records = []
            self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


class NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled.

    Keeps ``wall_s``/``cpu_s`` attributes (always 0.0) so code written against
    :class:`Span` runs unchanged.
    """

    __slots__ = ()
    started_at = 0.0
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


def aggregate_spans(records: list[SpanRecord]) -> dict[str, dict]:
    """Per-name summary: count and wall/CPU totals, mean and max wall time."""
    out: dict[str, dict] = {}
    for record in records:
        entry = out.setdefault(
            record.name,
            {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_wall_s": 0.0},
        )
        entry["count"] += 1
        entry["wall_s"] += record.wall_s
        entry["cpu_s"] += record.cpu_s
        entry["max_wall_s"] = max(entry["max_wall_s"], record.wall_s)
    for entry in out.values():
        entry["mean_wall_s"] = entry["wall_s"] / entry["count"]
    return out
