"""Structured key=value logger with level control.

One line per event: ``ts=<iso8601> level=<lvl> event=<name> k=v ...``.
Values containing whitespace or ``=`` are quoted, so every line splits back
into fields unambiguously — greppable by humans, parseable by scripts.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


def _format_value(value) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if any(ch in text for ch in ' ="') or text == "":
        return '"' + text.replace('"', '\\"') + '"'
    return text


class StructLogger:
    """Leveled key=value logger writing one event per line."""

    def __init__(self, level: str = "warning", stream: TextIO | None = None):
        self._threshold = LEVELS["warning"]
        self.set_level(level)
        self.stream = stream
        self.emitted = 0

    def set_level(self, level: str) -> None:
        try:
            self._threshold = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
        self.level = level.lower()

    def is_enabled_for(self, level: str) -> bool:
        return LEVELS.get(level.lower(), 0) >= self._threshold

    def log(self, level: str, event: str, **fields) -> None:
        if not self.is_enabled_for(level):
            return
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        parts = [f"ts={timestamp}Z", f"level={level.lower()}", f"event={event}"]
        parts.extend(f"{key}={_format_value(v)}" for key, v in fields.items())
        stream = self.stream if self.stream is not None else sys.stderr
        print(" ".join(parts), file=stream)
        self.emitted += 1

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)
