"""repro.obs — structured telemetry: spans, metrics, logs, run manifests.

The module-level :data:`telemetry` singleton is the one instrumentation
surface the rest of the codebase touches::

    from repro.obs import telemetry

    with telemetry.span("featurize.table", n_columns=12):
        ...
    telemetry.count("featurize.columns", 12)
    telemetry.observe("pipeline.confidence", 0.93)

It starts **disabled**: ``span`` hands back a shared no-op context manager,
counters and logs are gated on one boolean, and no records are kept — library
behavior with telemetry off is identical to a build without it.  CLIs enable
it when a ``--log-level`` / ``--metrics-out`` / ``--manifest`` flag is given;
tests and scripts call :meth:`Telemetry.enable` directly.
"""

from __future__ import annotations

from repro.obs.context import (
    TRACEPARENT_ENV,
    TraceContext,
    current_context,
    set_process_context,
    span_context,
    use_context,
)
from repro.obs.logging import LEVELS, StructLogger
from repro.obs.manifest import RunManifest, git_sha
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingHistogram,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.trace import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    SpanRecord,
    Tracer,
    aggregate_spans,
)


class Telemetry:
    """Facade bundling a tracer, a metrics registry, and a logger.

    All instrumentation methods are no-ops until :meth:`enable` is called.
    """

    def __init__(self):
        self._enabled = False
        self.tracer = Tracer(on_drop=self._on_span_drop)
        self.metrics = MetricsRegistry()
        self.logger = StructLogger(level="warning")

    def _on_span_drop(self, n: int) -> None:
        # Surfaces ring-buffer truncation: the tracer already counted the
        # drop internally; mirror it into a scrapeable counter.
        if self._enabled:
            self.metrics.counter("trace.dropped").inc(n)

    # -- lifecycle -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, log_level: str | None = None) -> "Telemetry":
        self._enabled = True
        if log_level is not None:
            self.logger.set_level(log_level)
        return self

    def disable(self) -> "Telemetry":
        self._enabled = False
        return self

    def reset(self) -> "Telemetry":
        """Drop all recorded spans and metrics (enabled state unchanged)."""
        self.tracer.reset()
        self.metrics.reset()
        return self

    # -- spans ---------------------------------------------------------------
    def span(self, name: str, **attrs):
        if not self._enabled:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    @property
    def spans(self) -> list[SpanRecord]:
        return self.tracer.records

    # -- metrics -------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        if self._enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self._enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self._enabled:
            self.metrics.histogram(name).observe(value)

    def observe_window(self, name: str, value: float) -> None:
        """Record into a rolling-window histogram (recent-seconds quantiles)."""
        if self._enabled:
            self.metrics.window(name).observe(value)

    def record_span(
        self,
        name: str,
        started_at: float,
        wall_s: float,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
        **attrs,
    ):
        """Record a span measured outside any context manager (queue waits)."""
        if not self._enabled:
            return None
        return self.tracer.record_external(
            name,
            started_at,
            wall_s,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            **attrs,
        )

    # -- logs ----------------------------------------------------------------
    def log(self, level: str, event: str, **fields) -> None:
        if self._enabled:
            self.logger.log(level, event, **fields)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


#: Global singleton every instrumented module imports. Disabled by default.
telemetry = Telemetry()


def add_observability_flags(parser) -> None:
    """Attach the shared telemetry flags to an ``argparse`` parser.

    Used by every CLI (repro-bench, repro-report, repro-infer) so the flag
    surface stays uniform: ``--log-level``, ``--metrics-out``, ``--manifest``.
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--log-level", default=None,
        choices=sorted(LEVELS, key=LEVELS.get),
        help="enable structured key=value logging at this level (stderr)",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSON snapshot of all counters/gauges/histograms here",
    )
    group.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write a JSON run manifest (seed, scale, git SHA, per-experiment "
             "timings, span breakdown, metrics) here",
    )
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export all recorded spans (with trace/span ids) as JSONL here; "
             "feed the file to `repro-obs trace show`",
    )


def configure_telemetry(args) -> bool:
    """Enable the global singleton iff any observability flag was given."""
    wants = bool(
        getattr(args, "log_level", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "manifest", None)
        or getattr(args, "trace_out", None)
    )
    if wants:
        telemetry.enable(log_level=getattr(args, "log_level", None))
    return wants

__all__ = [
    "add_observability_flags",
    "configure_telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NoopSpan",
    "RollingHistogram",
    "RunManifest",
    "Span",
    "SpanRecord",
    "StructLogger",
    "Telemetry",
    "TraceContext",
    "TRACEPARENT_ENV",
    "Tracer",
    "aggregate_spans",
    "current_context",
    "git_sha",
    "parse_prometheus_text",
    "render_prometheus",
    "set_process_context",
    "span_context",
    "telemetry",
    "use_context",
]
