"""W3C-style trace-context propagation across threads and processes.

A :class:`TraceContext` is the (trace_id, span_id) pair that stitches spans
recorded in different threads and processes into one tree: ``trace_id``
names the end-to-end operation (one client request, one benchmark run) and
``span_id`` names the node new child spans should hang off.

Propagation surfaces, smallest to largest:

* **within a thread** — the tracer's span stack (unchanged from PR 1);
* **across threads** — :func:`use_context` installs a thread-local ambient
  context, so a span opened on an empty stack (an HTTP handler thread, the
  micro-batcher worker) parents itself to the propagated remote span
  instead of starting a fresh trace;
* **across processes** — the 55-char ``traceparent`` string
  (``00-<32 hex trace_id>-<16 hex span_id>-01``, the W3C Trace Context
  wire format) travels as an HTTP header (``ServeClient`` →
  ``repro-serve``) or via the ``REPRO_TRACEPARENT`` environment variable
  (``repro-bench --jobs N`` parent → forked/spawned workers).

A process-level default context (:func:`set_process_context`) covers the
fork path: the parent installs the run's context once, forked workers
inherit it by memory, and exec'd grandchildren read it back from the
environment.  Everything degrades to ``None`` — with no ambient context a
root span simply mints a fresh trace id, exactly the pre-PR-6 behavior
plus ids.
"""

from __future__ import annotations

import os
import re
import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass

#: Environment variable carrying the traceparent into child processes.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_ALL_ZERO_TRACE = "0" * 32
_ALL_ZERO_SPAN = "0" * 16


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """One point in a trace: the trace id plus the parent span id."""

    trace_id: str
    span_id: str

    @classmethod
    def generate(cls) -> "TraceContext":
        return cls(new_trace_id(), new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span id (a new node under this one)."""
        return TraceContext(self.trace_id, new_span_id())

    def to_traceparent(self) -> str:
        """The W3C wire form: ``00-<trace_id>-<span_id>-01``."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a traceparent string; None on anything malformed.

        Malformed headers are *dropped*, never guessed at — a request with
        a bad header simply starts a fresh trace, which is the W3C-mandated
        behavior for unparseable context.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        trace_id = match.group("trace_id")
        span_id = match.group("span_id")
        if trace_id == _ALL_ZERO_TRACE or span_id == _ALL_ZERO_SPAN:
            return None  # all-zero ids are explicitly invalid in the spec
        return cls(trace_id, span_id)


class _ThreadAmbient(threading.local):
    context: "TraceContext | None" = None


_thread_ambient = _ThreadAmbient()

#: Process-wide default, below the thread-local in precedence.  Set by the
#: CLIs at startup (and inherited by forked workers); lazily seeded from
#: $REPRO_TRACEPARENT so exec'd subprocesses attach without code changes.
_process_context: TraceContext | None = None
_env_checked = False


def current_context() -> TraceContext | None:
    """The ambient context: thread-local, else process default, else env."""
    context = _thread_ambient.context
    if context is not None:
        return context
    global _process_context, _env_checked
    if _process_context is None and not _env_checked:
        _env_checked = True
        _process_context = TraceContext.from_traceparent(
            os.environ.get(TRACEPARENT_ENV)
        )
    return _process_context


def set_process_context(
    context: TraceContext | None, export_env: bool = True
) -> TraceContext | None:
    """Install the process-level default (e.g. one benchmark run's root).

    With ``export_env`` the context is also published as
    ``$REPRO_TRACEPARENT`` so exec'd children (not just forked ones) join
    the same trace.  Passing None clears both.
    """
    global _process_context, _env_checked
    _process_context = context
    _env_checked = True
    if export_env:
        if context is None:
            os.environ.pop(TRACEPARENT_ENV, None)
        else:
            os.environ[TRACEPARENT_ENV] = context.to_traceparent()
    return context


@contextmanager
def use_context(context: TraceContext | None):
    """Thread-locally install ``context`` for the duration of the block.

    ``None`` is accepted and means "no remote parent": the block runs with
    whatever the process default resolves to.  Handler threads wrap each
    request in this so concurrent requests on one server never bleed trace
    ids into each other.
    """
    previous = _thread_ambient.context
    _thread_ambient.context = context
    try:
        yield context
    finally:
        _thread_ambient.context = previous


def span_context(span) -> TraceContext | None:
    """The :class:`TraceContext` naming an *open* span, or None.

    Returns None for no-op spans (telemetry disabled) and for spans that
    have not entered yet; real spans carry ``trace_id``/``span_id`` from
    ``__enter__`` on.
    """
    trace_id = getattr(span, "trace_id", None)
    span_id = getattr(span, "span_id", None)
    if not trace_id or not span_id:
        return None
    return TraceContext(trace_id, span_id)
