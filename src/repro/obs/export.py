"""JSON / JSONL emitters for telemetry artifacts.

Everything written here is plain-dict JSON so downstream analysis needs only
``json.loads`` — no repro imports.  ``write_json`` and ``write_jsonl`` create
parent directories on demand, making ``--metrics-out runs/today/metrics.json``
work without ceremony.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.obs.trace import SpanRecord, aggregate_spans


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_json(path: str, payload) -> None:
    """Write one JSON document (pretty-printed, trailing newline)."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write records as JSON Lines; returns the number written."""
    _ensure_parent(path)
    n = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=False))
            handle.write("\n")
            n += 1
    return n


def spans_to_records(spans: list[SpanRecord]) -> list[dict]:
    """Span records as JSON-ready dicts (insertion order preserved)."""
    return [span.to_dict() for span in spans]


def spans_summary(spans: list[SpanRecord]) -> dict[str, dict]:
    """Aggregated per-name span summary, sorted by total wall time."""
    summary = aggregate_spans(spans)
    return dict(
        sorted(summary.items(), key=lambda item: -item[1]["wall_s"])
    )


def write_spans_jsonl(path: str, spans: list[SpanRecord]) -> int:
    return write_jsonl(path, spans_to_records(spans))
