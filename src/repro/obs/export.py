"""JSON / JSONL emitters for telemetry artifacts.

Everything written here is plain-dict JSON so downstream analysis needs only
``json.loads`` — no repro imports.  ``write_json`` and ``write_jsonl`` create
parent directories on demand, making ``--metrics-out runs/today/metrics.json``
work without ceremony.

Writes are atomic (temp file + ``os.replace``): a crash — or an
unserializable payload — mid-export never leaves a truncated/unparseable
manifest behind, and never clobbers a previous good one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Iterable

from repro.obs.trace import SpanRecord, aggregate_spans


def _ensure_parent(path: str) -> str:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return parent


def _atomic_write_text(path: str, render: Callable[..., None]) -> None:
    """Render into a same-directory temp file, then ``os.replace`` it in.

    On any failure the temp file is removed and the previous contents of
    ``path`` (if any) are untouched.
    """
    parent = _ensure_parent(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=parent or ".", prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            render(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_json(path: str, payload) -> None:
    """Atomically write one JSON document (pretty-printed, trailing newline)."""
    def render(handle) -> None:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")

    _atomic_write_text(path, render)


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Atomically write records as JSON Lines; returns the number written."""
    written = 0

    def render(handle) -> None:
        nonlocal written
        for record in records:
            handle.write(json.dumps(record, sort_keys=False))
            handle.write("\n")
            written += 1

    _atomic_write_text(path, render)
    return written


def spans_to_records(spans: list[SpanRecord]) -> list[dict]:
    """Span records as JSON-ready dicts (insertion order preserved)."""
    return [span.to_dict() for span in spans]


def spans_summary(spans: list[SpanRecord]) -> dict[str, dict]:
    """Aggregated per-name span summary, sorted by total wall time."""
    summary = aggregate_spans(spans)
    return dict(
        sorted(summary.items(), key=lambda item: -item[1]["wall_s"])
    )


def write_spans_jsonl(path: str, spans: list[SpanRecord]) -> int:
    return write_jsonl(path, spans_to_records(spans))


def read_jsonl(path: str) -> list[dict]:
    """Read a JSON Lines file, skipping blank lines.

    Malformed lines raise ``ValueError`` naming the offending line number —
    span exports are written atomically, so a parse failure means the file
    is not ours (or was hand-edited), which should be loud.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    return records
