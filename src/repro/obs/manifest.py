"""JSON run manifests: the machine-readable record of one reproduction run.

A manifest captures everything needed to cite (or re-run) a benchmark
invocation: command + arguments, seed and corpus scale, git SHA, interpreter
and platform, per-experiment wall times, the aggregated span breakdown, and
the full metrics snapshot.  ``repro-bench all --manifest run.json`` writes
one; BENCH_*.json entries in later perf PRs reference these.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time

from repro.obs.export import spans_summary, write_json

MANIFEST_SCHEMA_VERSION = 1


def git_sha(cwd: str | None = None) -> str | None:
    """Current git commit SHA, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


class RunManifest:
    """Accumulates one run's provenance and timings, then writes JSON."""

    def __init__(
        self,
        command: str,
        argv: list[str] | None = None,
        seed: int | None = None,
        scale: int | None = None,
        **extra,
    ):
        self.command = command
        self.argv = list(argv) if argv is not None else None
        self.seed = seed
        self.scale = scale
        self.extra = extra
        self.started_at = time.time()
        self.finished_at: float | None = None
        self.experiments: list[dict] = []
        self.spans: dict = {}
        self.metrics: dict = {}
        self.trace_id: str | None = None
        self.spans_dropped: int = 0

    def add_experiment(self, name: str, wall_s: float, **fields) -> None:
        self.experiments.append({"name": name, "wall_s": wall_s, **fields})

    def finalize(self, telemetry=None) -> "RunManifest":
        """Stamp the end time and snapshot the telemetry singleton's state."""
        self.finished_at = time.time()
        if telemetry is not None:
            self.spans = spans_summary(telemetry.spans)
            self.metrics = telemetry.metrics.snapshot()
            self.spans_dropped = telemetry.tracer.dropped
            if self.trace_id is None:
                for record in telemetry.spans:
                    if record.trace_id is not None:
                        self.trace_id = record.trace_id
                        break
        return self

    def to_dict(self) -> dict:
        finished = (
            self.finished_at if self.finished_at is not None else time.time()
        )
        out = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "command": self.command,
            "argv": self.argv,
            "seed": self.seed,
            "scale": self.scale,
            "git_sha": git_sha(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "started_at": self.started_at,
            "finished_at": finished,
            "wall_s": finished - self.started_at,
            "experiments": self.experiments,
            "spans": self.spans,
            "metrics": self.metrics,
            "trace_id": self.trace_id,
            "spans_dropped": self.spans_dropped,
        }
        out.update(self.extra)
        return out

    def write(self, path: str) -> dict:
        """Write the manifest JSON; returns the written dict."""
        payload = self.to_dict()
        write_json(path, payload)
        return payload
