"""Counter/gauge/histogram registry with percentile summaries.

Instruments count things (columns featurized, model fits), track last-seen
values (epoch loss), and summarize distributions (prediction confidence,
per-batch seconds) with p50/p90/p99.  The registry snapshot is plain dicts,
ready for ``json.dump`` into ``--metrics-out`` files and run manifests.

Long-lived servers additionally need *recent* behavior, not
since-process-start aggregates: a :class:`RollingHistogram` keeps only the
samples observed in the last ``window_s`` seconds, so ``/metrics`` reports
the p99 of the last minute instead of a p99 diluted by hours of quiet
traffic.  :func:`render_prometheus` turns a registry snapshot into the
Prometheus text exposition format (``GET /metrics``), and
:func:`parse_prometheus_text` is the matching validating parser used by
tests and the CI scrape step.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

#: Histogram sample cap; past it samples are thinned 2:1 (deterministically).
DEFAULT_MAX_SAMPLES = 8192

#: Default rolling-histogram window: "what happened in the last minute".
DEFAULT_WINDOW_S = 60.0

#: Rolling-histogram sample cap: at most this many samples are retained per
#: window, evicting oldest-first (the summary then covers the newest slice).
DEFAULT_WINDOW_SAMPLES = 8192


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. current epoch loss)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, q in [0, 100]."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class Histogram:
    """Distribution summary over observed values.

    Exact count/sum/min/max are always maintained; percentiles come from a
    bounded sample list.  When the list fills, every second sample is dropped
    and the keep-stride doubles — deterministic, no clock or RNG involved.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_stride", "_seen_since_kept", "max_samples")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._seen_since_kept = 0
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._seen_since_kept += 1
        if self._seen_since_kept >= self._stride:
            self._seen_since_kept = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(sorted(self._samples), q)

    def summary(self) -> dict:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": percentile(ordered, 50.0),
            "p90": percentile(ordered, 90.0),
            "p99": percentile(ordered, 99.0),
        }


class RollingHistogram:
    """Distribution over a sliding time window (p50/p90/p99 of the last
    ``window_s`` seconds, not cumulative-forever).

    Samples are ``(monotonic timestamp, value)`` pairs in a deque; anything
    older than the window is pruned on observe and on summary.  Lifetime
    ``total_count``/``total_sum`` are kept exactly so rate math stays
    possible even as samples age out.  ``now`` is injectable for tests.
    """

    __slots__ = ("name", "window_s", "max_samples", "total_count",
                 "total_sum", "_samples", "_lock")

    def __init__(
        self,
        name: str,
        window_s: float = DEFAULT_WINDOW_S,
        max_samples: int = DEFAULT_WINDOW_SAMPLES,
    ):
        self.name = name
        self.window_s = float(window_s)
        self.max_samples = int(max_samples)
        self.total_count = 0
        self.total_sum = 0.0
        self._samples: deque[tuple[float, float]] = deque()
        self._lock = threading.Lock()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()
        while len(samples) > self.max_samples:
            samples.popleft()

    def observe(self, value: float, now: float | None = None) -> None:
        value = float(value)
        if now is None:
            now = time.monotonic()
        with self._lock:
            self.total_count += 1
            self.total_sum += value
            self._samples.append((now, value))
            self._prune(now)

    def summary(self, now: float | None = None) -> dict:
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._prune(now)
            values = sorted(value for _, value in self._samples)
        count = len(values)
        return {
            "window_s": self.window_s,
            "count": count,
            "sum": sum(values),
            "min": values[0] if count else 0.0,
            "max": values[-1] if count else 0.0,
            "mean": (sum(values) / count) if count else 0.0,
            "p50": percentile(values, 50.0),
            "p90": percentile(values, 90.0),
            "p99": percentile(values, 99.0),
            "total_count": self.total_count,
            "total_sum": self.total_sum,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named counters, gauges, histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._windows: dict[str, RollingHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def window(
        self, name: str, window_s: float = DEFAULT_WINDOW_S
    ) -> RollingHistogram:
        """The named rolling histogram (``window_s`` binds on first use)."""
        with self._lock:
            if name not in self._windows:
                self._windows[name] = RollingHistogram(name, window_s=window_s)
            return self._windows[name]

    def snapshot(self) -> dict:
        """Plain-dict view of every metric, sorted by name (JSON-ready)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
                "windows": {
                    name: w.summary()
                    for name, w in sorted(self._windows.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._windows.clear()

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._windows))


# ---------------------------------------------------------------------------
# Prometheus text exposition (https://prometheus.io/docs/instrumenting/exposition_formats/)
# ---------------------------------------------------------------------------
_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: ``name{label="v",...} value`` (labels optional).
_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """``serve.request_ms`` → ``repro_serve_request_ms``."""
    sanitized = _NAME_SANITIZE_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Counters become ``<name>_total`` counters, gauges stay gauges, and both
    cumulative histograms and rolling windows become summaries with
    ``quantile`` labels (windows carry an extra ``window_s`` label and a
    ``_window`` suffix to keep the metric families distinct).
    """
    lines: list[str] = []

    def emit(family: str, kind: str, samples: list[tuple[str, float]]) -> None:
        lines.append(f"# TYPE {family} {kind}")
        for suffix_and_labels, value in samples:
            lines.append(f"{family}{suffix_and_labels} {_fmt(value)}")

    for name, value in snapshot.get("counters", {}).items():
        emit(prometheus_name(name, prefix) + "_total", "counter",
             [("", value)])
    for name, value in snapshot.get("gauges", {}).items():
        emit(prometheus_name(name, prefix), "gauge", [("", value)])
    for name, summary in snapshot.get("histograms", {}).items():
        family = prometheus_name(name, prefix)
        emit(family, "summary", [
            ('{quantile="0.5"}', summary["p50"]),
            ('{quantile="0.9"}', summary["p90"]),
            ('{quantile="0.99"}', summary["p99"]),
            ("_sum", summary["sum"]),
            ("_count", summary["count"]),
        ])
    for name, summary in snapshot.get("windows", {}).items():
        family = prometheus_name(name, prefix) + "_window"
        window = f'window_s="{summary["window_s"]:g}"'
        emit(family, "summary", [
            ('{%s,quantile="0.5"}' % window, summary["p50"]),
            ('{%s,quantile="0.9"}' % window, summary["p90"]),
            ('{%s,quantile="0.99"}' % window, summary["p99"]),
            ("_sum{%s}" % window, summary["sum"]),
            ("_count{%s}" % window, summary["count"]),
        ])
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Validating parser for the exposition format subset we emit.

    Returns ``{family: {"type": kind, "samples": {sample_key: value}}}``
    where ``sample_key`` is the raw ``name{labels}`` string.  Raises
    ``ValueError`` on any malformed line — the point is to *fail* CI when
    ``/metrics`` stops being scrapeable, not to be forgiving.
    """
    families: dict[str, dict] = {}
    declared: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared = parts[2]
                if parts[3] not in ("counter", "gauge", "summary",
                                    "histogram", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                families[declared] = {"type": parts[3], "samples": {}}
            continue
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        labels = match.group("labels")
        if labels:
            for pair in labels.split(","):
                if _LABEL_RE.match(pair.strip()) is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from None
        name = match.group("name")
        family = next(
            (f for f in (declared,) if f is not None
             and (name == f or name.startswith(f + "_"))),
            None,
        ) or name
        families.setdefault(family, {"type": "untyped", "samples": {}})
        key = name + ("{" + labels + "}" if labels else "")
        families[family]["samples"][key] = value
    return families
