"""Counter/gauge/histogram registry with percentile summaries.

Instruments count things (columns featurized, model fits), track last-seen
values (epoch loss), and summarize distributions (prediction confidence,
per-batch seconds) with p50/p90/p99.  The registry snapshot is plain dicts,
ready for ``json.dump`` into ``--metrics-out`` files and run manifests.
"""

from __future__ import annotations

import threading

#: Histogram sample cap; past it samples are thinned 2:1 (deterministically).
DEFAULT_MAX_SAMPLES = 8192


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. current epoch loss)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, q in [0, 100]."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class Histogram:
    """Distribution summary over observed values.

    Exact count/sum/min/max are always maintained; percentiles come from a
    bounded sample list.  When the list fills, every second sample is dropped
    and the keep-stride doubles — deterministic, no clock or RNG involved.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_stride", "_seen_since_kept", "max_samples")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._seen_since_kept = 0
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._seen_since_kept += 1
        if self._seen_since_kept >= self._stride:
            self._seen_since_kept = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(sorted(self._samples), q)

    def summary(self) -> dict:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": percentile(ordered, 50.0),
            "p90": percentile(ordered, 90.0),
            "p99": percentile(ordered, 99.0),
        }


class MetricsRegistry:
    """Create-on-first-use registry of named counters, gauges, histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Plain-dict view of every metric, sorted by name (JSON-ready)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
