"""The paper's primary contribution: benchmark + ML-based type inference."""

from repro.core.feature_sets import (
    TABLE2_FEATURE_SETS,
    FeatureSetBuilder,
    feature_set_label,
)
from repro.core.featurize import (
    ColumnProfile,
    LabeledDataset,
    N_SAMPLE_VALUES,
    profile_column,
    profile_table,
)
from repro.core.models import (
    CNNModel,
    KNNModel,
    LogRegModel,
    PAPER_GRIDS,
    RandomForestModel,
    SVMModel,
    TypeInferenceModel,
    default_models,
)
from repro.core.newrf import NewRF, Representation
from repro.core.persistence import ModelPersistenceError, load_model, save_model
from repro.core.pipeline import ColumnPrediction, TypeInferencePipeline
from repro.core.stats import (
    DATETIME_FEATURE_INDEX,
    LIST_FEATURE_INDEX,
    N_STATS,
    STAT_NAMES,
    URL_FEATURE_INDEX,
    DescriptiveStats,
    compress_stats,
    compute_stats,
)
from repro.core.vocabulary import (
    TABLE1_CLASSES,
    TOOL_VOCABULARY,
    binarize,
    coverage_classes,
    tool_covers,
)

__all__ = [
    "CNNModel",
    "ColumnPrediction",
    "ColumnProfile",
    "DATETIME_FEATURE_INDEX",
    "DescriptiveStats",
    "FeatureSetBuilder",
    "KNNModel",
    "LIST_FEATURE_INDEX",
    "LabeledDataset",
    "LogRegModel",
    "ModelPersistenceError",
    "N_SAMPLE_VALUES",
    "N_STATS",
    "NewRF",
    "PAPER_GRIDS",
    "RandomForestModel",
    "Representation",
    "STAT_NAMES",
    "SVMModel",
    "TABLE1_CLASSES",
    "TABLE2_FEATURE_SETS",
    "TOOL_VOCABULARY",
    "TypeInferenceModel",
    "TypeInferencePipeline",
    "URL_FEATURE_INDEX",
    "binarize",
    "compress_stats",
    "compute_stats",
    "coverage_classes",
    "default_models",
    "feature_set_label",
    "load_model",
    "profile_column",
    "save_model",
    "profile_table",
    "tool_covers",
]
