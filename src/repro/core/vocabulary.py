"""Label-vocabulary utilities: binarization and tool coverage (Figure 3).

The paper's Table 1 reports *binarized* per-class metrics because no prior
tool supports the full 9-class vocabulary.  Figure 3 maps each tool's native
vocabulary onto ours; classes a tool cannot express are "uncovered" — the
tool can never predict them, and Table 1 leaves those cells blank.
"""

from __future__ import annotations

from repro.types import ALL_FEATURE_TYPES, FeatureType

#: Which of our nine classes each existing tool's vocabulary covers
#: (paper Figure 3).  Uncovered classes are unreachable predictions.
TOOL_VOCABULARY: dict[str, frozenset[FeatureType]] = {
    "tfdv": frozenset(
        {
            FeatureType.NUMERIC,
            FeatureType.CATEGORICAL,
            FeatureType.DATETIME,
            FeatureType.SENTENCE,
        }
    ),
    "pandas": frozenset(
        {
            FeatureType.NUMERIC,
            FeatureType.DATETIME,
            FeatureType.CONTEXT_SPECIFIC,  # "object" maps to a catch-all
        }
    ),
    "transmogrifai": frozenset(
        {
            FeatureType.NUMERIC,
            FeatureType.DATETIME,
            FeatureType.CONTEXT_SPECIFIC,  # Text primitive
        }
    ),
    "autogluon": frozenset(
        {
            FeatureType.NUMERIC,
            FeatureType.CATEGORICAL,
            FeatureType.DATETIME,
            FeatureType.SENTENCE,
            FeatureType.NOT_GENERALIZABLE,  # "discard" bucket
        }
    ),
}

#: The classes each tool's row reports in Table 1 (blank cells elsewhere).
TABLE1_CLASSES: tuple[FeatureType, ...] = (
    FeatureType.NUMERIC,
    FeatureType.CATEGORICAL,
    FeatureType.DATETIME,
    FeatureType.SENTENCE,
    FeatureType.NOT_GENERALIZABLE,
    FeatureType.CONTEXT_SPECIFIC,
)


def binarize(labels, positive: FeatureType) -> list[bool]:
    """One-vs-rest view of a label sequence."""
    return [label == positive for label in labels]


def tool_covers(tool: str, feature_type: FeatureType) -> bool:
    """True when ``tool``'s native vocabulary can express ``feature_type``."""
    try:
        return feature_type in TOOL_VOCABULARY[tool]
    except KeyError:
        raise ValueError(
            f"unknown tool {tool!r}; known: {sorted(TOOL_VOCABULARY)}"
        ) from None


def coverage_classes(tool: str) -> list[FeatureType]:
    """Our classes covered by ``tool``, in canonical order."""
    return [ft for ft in ALL_FEATURE_TYPES if tool_covers(tool, ft)]
