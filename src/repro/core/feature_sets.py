"""Feature-set assembly for the type-inference models (paper Table 2).

The paper evaluates nine combinations of X_stats (25 descriptive stats),
X2_name (bigrams of the attribute name), and X2_sample1/X2_sample2 (bigrams
of the first/second sample value).  Classical models consume hashed bigram
vectors; the CNN and k-NN consume raw characters (handled by their wrappers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.featurize import ColumnProfile
from repro.core.stats import N_STATS, compress_stats
from repro.ml.text import HashingVectorizer

#: The nine feature-set combinations of Table 2, by canonical key.
TABLE2_FEATURE_SETS: tuple[tuple[str, ...], ...] = (
    ("stats",),
    ("name",),
    ("sample1",),
    ("stats", "name"),
    ("stats", "sample1"),
    ("name", "sample1"),
    ("sample1", "sample2"),
    ("stats", "name", "sample1"),
    ("stats", "name", "sample1", "sample2"),
)

VALID_PARTS = ("stats", "name", "sample1", "sample2")


def feature_set_label(parts: tuple[str, ...]) -> str:
    """Human-readable label matching the paper's column headers."""
    rendered = {
        "stats": "X_stats",
        "name": "X2_name",
        "sample1": "X2_sample1",
        "sample2": "X2_sample2",
    }
    return ", ".join(rendered[p] for p in parts)


@dataclass
class FeatureSetBuilder:
    """Builds fixed-width numeric features from column profiles.

    ``parts`` selects which signals go in; bigrams are feature-hashed so the
    space is identical across train/test (no vocabulary leakage), and stats
    are log-compressed (see :func:`repro.core.stats.compress_stats`).
    ``drop_stat_indices`` removes individual descriptive stats — used by the
    Table 12 ablation.
    """

    parts: tuple[str, ...] = ("stats", "name")
    ngram: int = 2
    hash_dim: int = 192
    drop_stat_indices: tuple[int, ...] = ()
    _vectorizer: HashingVectorizer = field(init=False, repr=False)

    def __post_init__(self):
        unknown = [p for p in self.parts if p not in VALID_PARTS]
        if unknown:
            raise ValueError(f"unknown feature parts: {unknown}")
        if not self.parts:
            raise ValueError("feature set cannot be empty")
        self._vectorizer = HashingVectorizer(
            analyzer="char", ngram=self.ngram, n_features=self.hash_dim
        )

    @property
    def n_features(self) -> int:
        width = 0
        if "stats" in self.parts:
            width += N_STATS - len(self.drop_stat_indices)
        for part in ("name", "sample1", "sample2"):
            if part in self.parts:
                width += self.hash_dim
        return width

    def transform(self, profiles: list[ColumnProfile]) -> np.ndarray:
        """Profiles → (n, n_features) matrix."""
        blocks: list[np.ndarray] = []
        if "stats" in self.parts:
            stats = np.stack([p.stats_vector for p in profiles])
            stats = compress_stats(stats)
            if self.drop_stat_indices:
                keep = [
                    i for i in range(N_STATS) if i not in set(self.drop_stat_indices)
                ]
                stats = stats[:, keep]
            blocks.append(stats)
        if "name" in self.parts:
            blocks.append(self._vectorizer.transform([p.name for p in profiles]))
        if "sample1" in self.parts:
            blocks.append(self._vectorizer.transform([p.sample(0) for p in profiles]))
        if "sample2" in self.parts:
            blocks.append(self._vectorizer.transform([p.sample(1) for p in profiles]))
        return np.hstack(blocks)
