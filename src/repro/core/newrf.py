"""NewRF: confidence-thresholded double representation (Appendix I.5.2).

For integer columns, instead of routing to an exclusive Numeric or
Categorical representation, the adapted model routes *low-confidence*
predictions to both representations at once.  The paper sets the threshold
to 0.4 — twice random-guessing confidence on the Numeric/Categorical
dichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.featurize import ColumnProfile
from repro.core.models import TypeInferenceModel
from repro.types import FeatureType

DEFAULT_THRESHOLD = 0.4


@dataclass(frozen=True)
class Representation:
    """How a column should be represented for the downstream model."""

    feature_type: FeatureType
    double: bool  # when True: route to BOTH numeric and one-hot encodings

    @property
    def as_numeric(self) -> bool:
        return self.double or self.feature_type is FeatureType.NUMERIC

    @property
    def as_categorical(self) -> bool:
        return self.double or self.feature_type is FeatureType.CATEGORICAL


class NewRF:
    """Wraps a fitted model to emit double representations when unsure."""

    def __init__(self, model: TypeInferenceModel, threshold: float = DEFAULT_THRESHOLD):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.model = model
        self.threshold = threshold

    def predict(self, profiles: list[ColumnProfile]) -> list[Representation]:
        probs = self.model.predict_proba(profiles)
        classes = self.model.classes_
        out = []
        for profile, row in zip(profiles, probs):
            best = int(np.argmax(row))
            feature_type = classes[best]
            confidence = float(row[best])
            integer_dichotomy = feature_type in (
                FeatureType.NUMERIC,
                FeatureType.CATEGORICAL,
            )
            is_integer_column = _is_integer_profile(profile)
            double = (
                integer_dichotomy
                and is_integer_column
                and confidence < self.threshold
            )
            out.append(Representation(feature_type=feature_type, double=double))
        return out


def _is_integer_profile(profile: ColumnProfile) -> bool:
    """True when the profiled column's sampled values are integers."""
    from repro.tabular.dtypes import is_integer_literal

    samples = [s for s in profile.samples if s]
    return bool(samples) and all(is_integer_literal(s) for s in samples)
