"""The 25 descriptive statistics of base featurization (paper Appendix E).

For every raw column we compute aggregate signals a data scientist would
glance at: counts of values/NaNs/distincts, moments of the values and of
string shape measures (word/stop-word/char/whitespace/delimiter counts),
min/max, and boolean regex probes (URL, e-mail, delimiter sequence, list)
plus a timestamp check over the five sample values.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

import numpy as np

from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_email,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)

#: Small English stop-word list (enough to separate prose from codes).
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on or that the
    this to was were will with not but they you i we she his her them our
    their there then than so if about into over after before all any each
    out up down no yes do does did have had can could would should may
    """.split()
)

_DELIMITERS = ",;|:"

#: Every date format requires at least one digit, so a failed digit search
#: lets the probe skip the (comparatively pricey) combined date regex.
_HAS_DIGIT_SEARCH = re.compile(r"\d").search

#: Names of the 25 features, in vector order.
STAT_NAMES: tuple[str, ...] = (
    "total_values",
    "num_nans",
    "pct_nans",
    "num_distinct",
    "pct_distinct",
    "mean_value",
    "std_value",
    "min_value",
    "max_value",
    "mean_word_count",
    "std_word_count",
    "mean_stopword_count",
    "std_stopword_count",
    "mean_char_count",
    "std_char_count",
    "mean_whitespace_count",
    "std_whitespace_count",
    "mean_delimiter_count",
    "std_delimiter_count",
    "numeric_fraction",
    "sample_has_url",
    "sample_has_email",
    "sample_has_delimiter_seq",
    "sample_has_list",
    "sample_has_date",
)

N_STATS = len(STAT_NAMES)

#: name → vector index, precomputed once (``tuple.index`` is a linear scan).
STAT_INDEX: dict[str, int] = {name: i for i, name in enumerate(STAT_NAMES)}

#: Indices of the three type-specific boolean probes ablated in Table 12.
URL_FEATURE_INDEX = STAT_INDEX["sample_has_url"]
LIST_FEATURE_INDEX = STAT_INDEX["sample_has_list"]
DATETIME_FEATURE_INDEX = STAT_INDEX["sample_has_date"]

#: Indices of the unbounded (log-compressed) stats, in vector order.
UNBOUNDED_STAT_INDICES: tuple[int, ...] = tuple(
    STAT_INDEX[name]
    for name in (
        "total_values",
        "num_nans",
        "num_distinct",
        "mean_value",
        "std_value",
        "min_value",
        "max_value",
        "mean_char_count",
        "std_char_count",
        "mean_word_count",
        "std_word_count",
        "mean_stopword_count",
        "std_stopword_count",
        "mean_whitespace_count",
        "std_whitespace_count",
        "mean_delimiter_count",
        "std_delimiter_count",
    )
)


@dataclass(frozen=True)
class DescriptiveStats:
    """The 25 descriptive statistics, both named and as a vector."""

    values: np.ndarray

    def __post_init__(self):
        if self.values.shape != (N_STATS,):
            raise ValueError(f"expected {N_STATS} stats, got {self.values.shape}")

    def __getitem__(self, name: str) -> float:
        return float(self.values[STAT_INDEX[name]])

    def as_dict(self) -> dict[str, float]:
        return {name: float(v) for name, v in zip(STAT_NAMES, self.values)}


_FLOAT_CAP = 1e18  # larger magnitudes are clamped (squares overflow float64)


def _finite(value) -> float:
    """Clamp to a finite, capped float (guards against 1e300-scale outliers)."""
    value = float(value)
    if not math.isfinite(value):
        return 0.0
    if value > _FLOAT_CAP:
        return _FLOAT_CAP
    if value < -_FLOAT_CAP:
        return -_FLOAT_CAP
    return value


def _moments(counts: list[float]) -> tuple[float, float]:
    if not counts:
        return 0.0, 0.0
    arr = np.asarray(counts, dtype=float)
    return float(arr.mean()), float(arr.std())


def _word_count(text: str) -> int:
    return len(text.split())


def _stopword_count(text: str) -> int:
    return sum(1 for token in text.lower().split() if token in STOPWORDS)


def _whitespace_count(text: str) -> int:
    return sum(1 for ch in text if ch.isspace())


def _delimiter_count(text: str) -> int:
    return sum(1 for ch in text if ch in _DELIMITERS)


#: LUT coverage: Unicode whitespace ends at U+3000; codepoints above fall
#: back to the per-value scalar path (they never occur in benchmark corpora).
_LUT_MAX = 0x3000

_LUTS: dict[str, np.ndarray] | None = None


#: Base-33 positional weights for the token hash; position clamps at 7.
_POW33 = 33 ** np.arange(8, dtype=np.int64)


def _stopword_hashes() -> np.ndarray:
    """Base-33 positional hashes of the stop words (digits 1..26 = a..z)."""
    hashes = {
        sum((ord(ch) - 96) * 33**p for p, ch in enumerate(word))
        for word in STOPWORDS
    }
    return np.array(sorted(hashes), dtype=np.int64)


def _char_luts() -> dict[str, np.ndarray]:
    """Lazily-built codepoint lookup tables driving the vectorized kernel."""
    global _LUTS
    if _LUTS is None:
        size = _LUT_MAX + 2  # one extra slot for clipped (out-of-range) codes
        ws = np.zeros(size, dtype=bool)
        digit = np.zeros(size, dtype=bool)
        # token-hash digit: 0 for whitespace (no contribution), 1..26 for
        # chars whose str.lower() is a single a..z (the only chars that can
        # appear in a stop word), 28 otherwise (poisons the hash)
        stop_digit = np.full(size, 28, dtype=np.int64)
        for code in range(_LUT_MAX + 1):
            ch = chr(code)
            if ch.isspace():
                ws[code] = True
                stop_digit[code] = 0
            else:
                low = ch.lower()
                if len(low) == 1 and "a" <= low <= "z":
                    stop_digit[code] = ord(low) - 96
            if ch.isdecimal():  # what regex \d can match below the cap
                digit[code] = True
        delim = np.zeros(size, dtype=bool)
        for ch in _DELIMITERS:
            delim[ord(ch)] = True
        numeric_ok = digit.copy()
        numeric_ok |= ws  # strippable padding around a numeric literal
        for ch in "+-.eE":
            numeric_ok[ord(ch)] = True
        _LUTS = {
            "ws": ws, "digit": digit, "delim": delim,
            "numeric_ok": numeric_ok, "stop_digit": stop_digit,
            "stop_hashes": _stopword_hashes(),
        }
    return _LUTS


def _scan_value(text: str) -> tuple[float, float, float, float, float, float]:
    """Scalar reference scan of one value: the 5 shape counts + parse."""
    tokens = text.split()
    value = try_parse_float(text)
    return (
        float(len(tokens)),
        float(sum(1 for t in tokens if t.lower() in STOPWORDS)),
        float(len(text)),
        float(len(text) - sum(map(len, tokens))),
        float(sum(text.count(ch) for ch in _DELIMITERS)),
        np.nan if value is None else value,
    )


def _scan_distinct(values: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized scan of the distinct values producing all measures at once.

    Returns ``(counts, parsed)`` where ``counts`` is a (5, n_distinct) float
    matrix of word/stopword/char/whitespace/delimiter counts and ``parsed``
    holds ``try_parse_float`` results (NaN where the value is not numeric).

    All character classification runs as LUT lookups over one flat codepoint
    array covering every distinct value; per-value totals are recovered with
    segment sums (prefix-sum differences).  Python falls back per value only
    where it must: stop-word membership for values containing letters, the
    numeric parse for values that pass the numeric-charset prefilter, and
    codepoints beyond the LUT range.
    """
    d = len(values)
    luts = _char_luts()
    lengths = np.fromiter(map(len, values), count=d, dtype=np.intp)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    flat = "".join(values)
    codes = np.frombuffer(flat.encode("utf-32-le"), dtype=np.uint32)
    exotic_codes = codes > _LUT_MAX
    idx = codes.astype(np.intp)
    np.minimum(idx, _LUT_MAX + 1, out=idx)

    total_chars = len(codes)
    # int32 prefix: totals stay below 2**31 and the cumsum is memory-bound
    prefix = np.empty(total_chars + 1, dtype=np.int32)

    def segment_sum(mask: np.ndarray) -> np.ndarray:
        prefix[0] = 0
        np.cumsum(mask, out=prefix[1:])
        return prefix[ends] - prefix[starts]

    ws_mask = luts["ws"][idx]
    # a word starts at a non-space char preceded by a space or a boundary
    word_start = ~ws_mask
    prev_ws = np.empty(total_chars, dtype=bool)
    if total_chars:
        prev_ws[0] = True
        prev_ws[1:] = ws_mask[:-1]
        prev_ws[starts] = True
    word_start &= prev_ws

    counts = np.empty((5, d), dtype=float)
    counts[2] = lengths
    counts[3] = segment_sum(ws_mask)
    counts[4] = segment_sum(luts["delim"][idx])

    # numeric parse candidates: >=1 digit, every char in the numeric charset.
    # Within that charset ``float()`` accepts exactly what the literal regex
    # in ``try_parse_float`` does, so the regex is skipped.
    parsed = np.full(d, np.nan)
    candidate = (segment_sum(luts["digit"][idx]) > 0) & (
        segment_sum(luts["numeric_ok"][idx]) == lengths
    )

    # The word-count prefix sum runs last so its cumsum doubles as the
    # per-char token id (prefix[i+1] - 1) for the stop-word hashing below.
    counts[0] = segment_sum(word_start)

    # Stop-word counting without touching Python strings: hash every token
    # positionally in base 33 over per-char lowercase digits (whitespace
    # contributes 0, non-letter chars poison the hash with digit 28) and
    # membership-test the hashes against the precomputed stop-word set.
    # Tokens longer than any stop word pick up a contribution >= 33**6,
    # which already exceeds every stop-word hash, so no length mask is
    # needed; the position clamp at 7 only guards against int64 overflow.
    token_starts = np.flatnonzero(word_start)
    if token_starts.size:
        dig = luts["stop_digit"][idx]
        token_id = prefix[1:]  # cumsum(word_start), mutated in place
        token_id -= 1
        np.maximum(token_id, 0, out=token_id)  # leading-whitespace chars
        pos = np.arange(total_chars, dtype=np.int64) - token_starts[token_id]
        np.minimum(pos, 7, out=pos)
        token_hash = np.add.reduceat(dig * _POW33[pos], token_starts)
        stop_hashes = luts["stop_hashes"]
        loc = np.searchsorted(stop_hashes, token_hash)
        np.minimum(loc, len(stop_hashes) - 1, out=loc)
        is_stop = stop_hashes[loc] == token_hash
        value_of_token = np.searchsorted(ends, token_starts, side="right")
        counts[1] = np.bincount(value_of_token[is_stop], minlength=d)
    else:
        counts[1] = 0.0
    isfinite = math.isfinite
    for i in np.flatnonzero(candidate):
        try:
            value = float(values[i])
        except ValueError:
            continue
        if isfinite(value):
            parsed[i] = value

    # values with out-of-LUT codepoints rerun through the scalar reference
    if exotic_codes.any():
        for i in np.flatnonzero(segment_sum(exotic_codes) > 0):
            scan = _scan_value(values[i])
            counts[:, i] = scan[:5]
            parsed[i] = scan[5]
    return counts, parsed


def _probe_samples(
    samples: list[str], cache: dict[str, tuple[bool, bool, bool, bool, bool]]
) -> tuple[float, float, float, float, float]:
    """The five boolean sample probes, memoized per distinct sample value."""
    url = email = delim_seq = lst = date = False
    for s in samples:
        hit = cache.get(s)
        if hit is None:
            # cheap literal prefilters the regexes require anyway: URLs
            # need "://", emails "@", lists one of ",;|", dates a digit
            hit = (
                "://" in s and looks_like_url(s),
                "@" in s and looks_like_email(s),
                _delimiter_count(s) >= 2,
                ("," in s or ";" in s or "|" in s) and looks_like_list(s),
                _HAS_DIGIT_SEARCH(s) is not None and looks_like_datetime(s),
            )
            cache[s] = hit
        url = url or hit[0]
        email = email or hit[1]
        delim_seq = delim_seq or hit[2]
        lst = lst or hit[3]
        date = date or hit[4]
        if url and email and delim_seq and lst and date:
            break
    return float(url), float(email), float(delim_seq), float(lst), float(date)


class _Interner(dict):
    """value → code dict that assigns the next code on first lookup.

    ``list(map(interner.__getitem__, cells))`` interns and encodes a whole
    column in one C-speed pass; only novel values drop into Python via
    ``__missing__``.
    """

    def __init__(self, values: list[str]):
        super().__init__()
        self.value_list = values

    def __missing__(self, key: str) -> int:
        code = len(self)
        self[key] = code
        self.value_list.append(key)
        return code


class StatsScanCache:
    """Cross-batch memo of per-value scan results.

    Featurizing a corpus scans each *distinct cell value of the corpus* once:
    the cache holds the interning table plus the scanned count/parse arrays,
    so later tables reuse the work of earlier ones (category vocabularies,
    small integers, and common tokens repeat heavily across files).  Pass one
    instance through successive :func:`compute_stats_batch` calls.

    ``counts``/``parsed`` are views into capacity-doubled buffers, so the
    per-batch growth in :meth:`scan_novel` is amortized O(1) per value.
    """

    def __init__(self):
        self.values: list[str] = []
        self.value_index: dict[str, int] = _Interner(self.values)
        self._counts_buf = np.zeros((5, 0))
        self._parsed_buf = np.zeros(0)
        self.counts = self._counts_buf
        self.parsed = self._parsed_buf
        self.probe_cache: dict[str, tuple[bool, bool, bool, bool, bool]] = {}

    def scan_novel(self) -> None:
        """Scan any interned values that do not have measures yet."""
        n_scanned = self.counts.shape[1]
        total = len(self.values)
        if total == n_scanned:
            return
        counts, parsed = _scan_distinct(self.values[n_scanned:])
        if total > self._counts_buf.shape[1]:
            capacity = max(total, 2 * self._counts_buf.shape[1])
            grown = np.zeros((5, capacity))
            grown[:, :n_scanned] = self._counts_buf[:, :n_scanned]
            self._counts_buf = grown
            grown_parsed = np.zeros(capacity)
            grown_parsed[:n_scanned] = self._parsed_buf[:n_scanned]
            self._parsed_buf = grown_parsed
        self._counts_buf[:, n_scanned:total] = counts
        self._parsed_buf[n_scanned:total] = parsed
        self.counts = self._counts_buf[:, :total]
        self.parsed = self._parsed_buf[:total]


def compute_stats_batch(
    columns: list[Column],
    samples_list: list[list[str] | None] | None = None,
    scan_cache: StatsScanCache | None = None,
) -> list[DescriptiveStats]:
    """Compute the 25 descriptive statistics for a batch of raw columns.

    The batched kernel shares one vectorized scan across every column: cell
    values are interned into one distinct table (values repeated across
    columns — category levels, small integers — are scanned once), the flat
    codepoint array of the distinct values goes through the LUT/segment
    kernel in :func:`_scan_distinct`, and per-column moments are recovered
    from frequency-weighted exact sums.  Sample probes are memoized.  With a
    ``scan_cache``, interning and scan results persist across calls so a
    whole corpus pays each distinct value once.  Results are identical to
    calling :func:`compute_stats` per column; the batch amortizes the numpy
    call overhead over the whole table.
    """
    if samples_list is None:
        samples_list = [None] * len(columns)
    if len(samples_list) != len(columns):
        raise ValueError("samples_list must align with columns")

    cache = scan_cache if scan_cache is not None else StatsScanCache()
    interned = cache.value_index.__getitem__
    values = cache.values

    n_cols = len(columns)
    codes_flat: list[int] = []
    extend_flat = codes_flat.extend
    per_column: list[tuple[list[int], int, list[str] | None]] = []
    for column, samples in zip(columns, samples_list):
        cells = column.cells
        present = [cell for cell in cells if cell is not None]
        # one C-speed pass encodes the column; __missing__ interns novelty
        codes = list(map(interned, present))
        if not codes:
            telemetry.count("stats.empty_columns")
        extend_flat(codes)
        per_column.append((codes, len(cells) - len(present), samples))
    if telemetry.enabled:
        telemetry.count("stats.columns", n_cols)
        telemetry.count("stats.cells", sum(len(c) for c in columns))

    cache.scan_novel()
    counts = cache.counts
    parsed = cache.parsed

    # One reduceat over the whole batch recovers every column's count
    # moments: the gathered per-cell counts are small integers, so segment
    # sums are exact in float64 and the closed-form variance matches the
    # per-column two-pass reference bit for bit.
    n_present = np.fromiter(
        (len(codes) for codes, _, _ in per_column), count=n_cols, dtype=np.intp
    )
    starts = np.zeros(n_cols, dtype=np.intp)
    if n_cols > 1:
        np.cumsum(n_present[:-1], out=starts[1:])
    nonempty = np.flatnonzero(n_present)
    means = np.zeros((5, n_cols))
    stds = np.zeros((5, n_cols))
    if nonempty.size:
        code_arr = np.asarray(codes_flat, dtype=np.intp)
        gathered = counts[:, code_arr]
        seg = starts[nonempty]
        sums = np.add.reduceat(gathered, seg, axis=1)
        sumsq = np.add.reduceat(gathered * gathered, seg, axis=1)
        seg_n = n_present[nonempty].astype(float)
        seg_means = sums / seg_n
        variances = np.maximum(sumsq / seg_n - seg_means * seg_means, 0.0)
        means[:, nonempty] = seg_means
        stds[:, nonempty] = np.sqrt(variances)
        parsed_flat = parsed[code_arr]
    else:
        parsed_flat = np.zeros(0)

    matrix = np.zeros((n_cols, N_STATS))
    totals = np.fromiter(map(len, columns), count=n_cols, dtype=float)
    matrix[:, 0] = totals
    matrix[:, 1] = totals - n_present
    distincts = np.fromiter(
        (len(set(codes)) for codes, _, _ in per_column), count=n_cols, dtype=float
    )
    matrix[:, 3] = distincts
    sized = totals > 0
    matrix[sized, 2] = matrix[sized, 1] / totals[sized]
    matrix[sized, 4] = distincts[sized] / totals[sized]
    matrix[:, 9:19:2] = means.T  # mean word/stop/char/ws/delim counts
    matrix[:, 10:20:2] = stds.T

    probe_cache = cache.probe_cache
    out: list[DescriptiveStats] = []
    for i, (codes, _, samples) in enumerate(per_column):
        row = matrix[i]
        npres = len(codes)
        if npres:
            start = starts[i]
            chunk = parsed_flat[start : start + npres]
            numeric = chunk[~np.isnan(chunk)]
            if numeric.size:
                with np.errstate(over="ignore", invalid="ignore"):
                    row[5] = _finite(numeric.mean())
                    row[6] = _finite(numeric.std())
                row[7] = _finite(numeric.min())
                row[8] = _finite(numeric.max())
            row[19] = numeric.size / npres
        if samples is None:
            samples = _first_distinct(codes, values, 5)
        row[20:25] = _probe_samples(samples, probe_cache)
        out.append(DescriptiveStats(row))
    return out


def _first_distinct(codes: list[int], values: list[str], k: int) -> list[str]:
    """First ``k`` distinct values of a column, in first-seen cell order."""
    seen: set[int] = set()
    out: list[str] = []
    for code in codes:
        if code not in seen:
            seen.add(code)
            out.append(values[code])
            if len(out) == k:
                break
    return out


def compute_stats(column: Column, samples: list[str] | None = None) -> DescriptiveStats:
    """Compute the 25 descriptive statistics for one raw column.

    ``samples`` are the (up to five) sampled distinct values the regex/date
    probes run over; when omitted the first five distinct values are used.
    Batch-of-one wrapper over :func:`compute_stats_batch`; featurize a whole
    table through the batch API when possible — it amortizes the vectorized
    scan across columns.
    """
    return compute_stats_batch([column], [samples])[0]


def compress_stats(matrix: np.ndarray) -> np.ndarray:
    """Signed log compression of the unbounded stats columns.

    Raw columns like ``mean_value`` span 18 orders of magnitude (paper
    Table 18 reports means up to 8.8e17), which destabilizes scale-sensitive
    models.  ``sign(x) * log1p(|x|)`` preserves ordering while bounding scale;
    bounded columns (fractions, booleans) pass through unchanged.
    """
    matrix = np.asarray(matrix, dtype=float).copy()
    unbounded = list(UNBOUNDED_STAT_INDICES)
    cols = matrix[:, unbounded]
    matrix[:, unbounded] = np.sign(cols) * np.log1p(np.abs(cols))
    return matrix
