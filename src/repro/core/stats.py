"""The 25 descriptive statistics of base featurization (paper Appendix E).

For every raw column we compute aggregate signals a data scientist would
glance at: counts of values/NaNs/distincts, moments of the values and of
string shape measures (word/stop-word/char/whitespace/delimiter counts),
min/max, and boolean regex probes (URL, e-mail, delimiter sequence, list)
plus a timestamp check over the five sample values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_email,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)

#: Small English stop-word list (enough to separate prose from codes).
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on or that the
    this to was were will with not but they you i we she his her them our
    their there then than so if about into over after before all any each
    out up down no yes do does did have had can could would should may
    """.split()
)

_DELIMITERS = ",;|:"

#: Names of the 25 features, in vector order.
STAT_NAMES: tuple[str, ...] = (
    "total_values",
    "num_nans",
    "pct_nans",
    "num_distinct",
    "pct_distinct",
    "mean_value",
    "std_value",
    "min_value",
    "max_value",
    "mean_word_count",
    "std_word_count",
    "mean_stopword_count",
    "std_stopword_count",
    "mean_char_count",
    "std_char_count",
    "mean_whitespace_count",
    "std_whitespace_count",
    "mean_delimiter_count",
    "std_delimiter_count",
    "numeric_fraction",
    "sample_has_url",
    "sample_has_email",
    "sample_has_delimiter_seq",
    "sample_has_list",
    "sample_has_date",
)

N_STATS = len(STAT_NAMES)

#: Indices of the three type-specific boolean probes ablated in Table 12.
URL_FEATURE_INDEX = STAT_NAMES.index("sample_has_url")
LIST_FEATURE_INDEX = STAT_NAMES.index("sample_has_list")
DATETIME_FEATURE_INDEX = STAT_NAMES.index("sample_has_date")


@dataclass(frozen=True)
class DescriptiveStats:
    """The 25 descriptive statistics, both named and as a vector."""

    values: np.ndarray

    def __post_init__(self):
        if self.values.shape != (N_STATS,):
            raise ValueError(f"expected {N_STATS} stats, got {self.values.shape}")

    def __getitem__(self, name: str) -> float:
        return float(self.values[STAT_NAMES.index(name)])

    def as_dict(self) -> dict[str, float]:
        return {name: float(v) for name, v in zip(STAT_NAMES, self.values)}


_FLOAT_CAP = 1e18  # larger magnitudes are clamped (squares overflow float64)


def _finite(value) -> float:
    """Clamp to a finite, capped float (guards against 1e300-scale outliers)."""
    value = float(value)
    if not np.isfinite(value):
        return 0.0
    return float(np.clip(value, -_FLOAT_CAP, _FLOAT_CAP))


def _moments(counts: list[float]) -> tuple[float, float]:
    if not counts:
        return 0.0, 0.0
    arr = np.asarray(counts, dtype=float)
    return float(arr.mean()), float(arr.std())


def _word_count(text: str) -> int:
    return len(text.split())


def _stopword_count(text: str) -> int:
    return sum(1 for token in text.lower().split() if token in STOPWORDS)


def _whitespace_count(text: str) -> int:
    return sum(1 for ch in text if ch.isspace())


def _delimiter_count(text: str) -> int:
    return sum(1 for ch in text if ch in _DELIMITERS)


def compute_stats(column: Column, samples: list[str] | None = None) -> DescriptiveStats:
    """Compute the 25 descriptive statistics for one raw column.

    ``samples`` are the (up to five) sampled distinct values the regex/date
    probes run over; when omitted the first five distinct values are used.
    """
    telemetry.count("stats.columns")
    telemetry.count("stats.cells", len(column))
    present = column.non_missing()
    total = len(column)
    n_nans = column.n_missing()
    distinct = column.distinct()
    if not present:
        telemetry.count("stats.empty_columns")
    if samples is None:
        samples = distinct[:5]

    numeric = [try_parse_float(cell) for cell in present]
    numeric = [v for v in numeric if v is not None]
    if numeric:
        arr = np.asarray(numeric, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            mean_value = _finite(arr.mean())
            std_value = _finite(arr.std())
        min_value = _finite(arr.min())
        max_value = _finite(arr.max())
    else:
        mean_value = std_value = min_value = max_value = 0.0

    mean_word, std_word = _moments([_word_count(c) for c in present])
    mean_stop, std_stop = _moments([_stopword_count(c) for c in present])
    mean_char, std_char = _moments([len(c) for c in present])
    mean_ws, std_ws = _moments([_whitespace_count(c) for c in present])
    mean_delim, std_delim = _moments([_delimiter_count(c) for c in present])

    numeric_fraction = len(numeric) / len(present) if present else 0.0

    has_url = float(any(looks_like_url(s) for s in samples))
    has_email = float(any(looks_like_email(s) for s in samples))
    has_delim_seq = float(any(_delimiter_count(s) >= 2 for s in samples))
    has_list = float(any(looks_like_list(s) for s in samples))
    has_date = float(any(looks_like_datetime(s) for s in samples))

    vector = np.array(
        [
            float(total),
            float(n_nans),
            n_nans / total if total else 0.0,
            float(len(distinct)),
            len(distinct) / total if total else 0.0,
            mean_value,
            std_value,
            min_value,
            max_value,
            mean_word,
            std_word,
            mean_stop,
            std_stop,
            mean_char,
            std_char,
            mean_ws,
            std_ws,
            mean_delim,
            std_delim,
            numeric_fraction,
            has_url,
            has_email,
            has_delim_seq,
            has_list,
            has_date,
        ]
    )
    return DescriptiveStats(vector)


def compress_stats(matrix: np.ndarray) -> np.ndarray:
    """Signed log compression of the unbounded stats columns.

    Raw columns like ``mean_value`` span 18 orders of magnitude (paper
    Table 18 reports means up to 8.8e17), which destabilizes scale-sensitive
    models.  ``sign(x) * log1p(|x|)`` preserves ordering while bounding scale;
    bounded columns (fractions, booleans) pass through unchanged.
    """
    matrix = np.asarray(matrix, dtype=float).copy()
    unbounded = [
        STAT_NAMES.index(name)
        for name in (
            "total_values",
            "num_nans",
            "num_distinct",
            "mean_value",
            "std_value",
            "min_value",
            "max_value",
            "mean_char_count",
            "std_char_count",
            "mean_word_count",
            "std_word_count",
            "mean_stopword_count",
            "std_stopword_count",
            "mean_whitespace_count",
            "std_whitespace_count",
            "mean_delimiter_count",
            "std_delimiter_count",
        )
    ]
    cols = matrix[:, unbounded]
    matrix[:, unbounded] = np.sign(cols) * np.log1p(np.abs(cols))
    return matrix
