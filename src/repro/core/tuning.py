"""Hyper-parameter tuning per the paper's methodology (Section 4.1).

"We perform 5-fold nested cross-validation of the train set, with a random
fourth of the examples in a training fold being used for validation during
hyper-parameter tuning.  We use a standard grid search" — over the grids of
Appendix B (:data:`repro.core.models.PAPER_GRIDS`).

Classical models are tuned on a pre-built feature matrix; the k-NN is tuned
over (n_neighbors, gamma) with its name/stats distance.

Cache-aware grid search: with an active :class:`repro.cache.ArtifactCache`
every nested-CV grid point — one ``(dataset digest, model, params, fold)``
fit/score — is memoized under kind ``"tune"``, and each completed outer
fold (best params + test score) is memoized as a whole.  Grid points are
therefore computed once across repeated tuning runs, overlapping grids,
and sub-experiment shards; tuning itself is deterministic, so the cached
and uncached :class:`TuningResult` are exactly equal
(``tests/test_core_tuning.py`` locks this down).  The digest covers the
feature matrix and labels byte-for-byte, so any perturbation of the data,
the params, or the fold layout addresses a different entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cache import active_cache, artifact_key
from repro.core.feature_sets import FeatureSetBuilder
from repro.core.featurize import LabeledDataset
from repro.core.models import (
    KNNModel,
    PAPER_GRIDS,
    TypeInferenceModel,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import GridSearchCV, StratifiedKFold
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import RBFSVM
from repro.obs import telemetry

_ESTIMATORS = {
    "logreg": (LogisticRegression, True),
    "svm": (RBFSVM, True),
    "rf": (RandomForestClassifier, False),
}

#: GridSearchCV's held-out-validation fraction (the paper's protocol);
#: part of every tuning cache key because it shapes the inner split.
VALIDATION_FRACTION = 0.25


def matrix_digest(X: np.ndarray, y: list) -> str:
    """Content hash of one tuning problem (feature matrix + labels).

    Any change to the data — a perturbed cell, a reordered row, a changed
    label — yields a different digest, and therefore different cache keys
    for every grid point computed on it.
    """
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    digest = hashlib.sha256()
    digest.update(str(X.shape).encode("ascii"))
    digest.update(X.tobytes())
    digest.update("\x1f".join(repr(label) for label in y).encode("utf-8"))
    return digest.hexdigest()


def _canonical_grid(grid: dict) -> dict:
    return {key: [repr(v) for v in grid[key]] for key in sorted(grid)}


def _canonical_params(params: dict) -> dict:
    return {key: repr(params[key]) for key in sorted(params)}


def tuning_cache_key(
    role: str,
    *,
    digest: str,
    model_name: str,
    fold_index: int,
    n_folds: int,
    random_state: int,
    params: dict | None = None,
    grid: dict | None = None,
) -> str:
    """The content address of one tuning memo entry.

    ``role`` is ``"candidate"`` (one grid point's validation score, keyed
    by its ``params``) or ``"fold"`` (one completed outer fold, keyed by
    its whole ``grid``).  The key changes with any perturbation of the
    dataset content (via ``digest``), the params/grid, or the fold layout
    (``fold_index``/``n_folds``/``random_state``).
    """
    payload: dict = {
        "role": role,
        "digest": digest,
        "model": model_name,
        "fold": int(fold_index),
        "n_folds": int(n_folds),
        "random_state": int(random_state),
        "validation_fraction": VALIDATION_FRACTION,
    }
    if params is not None:
        payload["params"] = _canonical_params(params)
    if grid is not None:
        payload["grid"] = _canonical_grid(grid)
    return artifact_key("tune", payload)


class _GridPointMemo:
    """Per-candidate fit/score memo handed to :class:`GridSearchCV`.

    One entry per ``(dataset digest, model, params, fold)`` — shared by
    every tuning run, shard, or overlapping grid that lands on the same
    grid point.
    """

    def __init__(self, cache, digest, model_name, fold_index, n_folds,
                 random_state):
        self.cache = cache
        self.key_kwargs = dict(
            digest=digest, model_name=model_name, fold_index=fold_index,
            n_folds=n_folds, random_state=random_state,
        )

    def _key(self, params: dict) -> str:
        return tuning_cache_key("candidate", params=params, **self.key_kwargs)

    def get(self, params: dict) -> float | None:
        value = self.cache.get("tune", self._key(params))
        if value is not None:
            telemetry.count("tuning.gridpoint_hits")
        return value

    def put(self, params: dict, score: float) -> None:
        try:
            self.cache.put("tune", self._key(params), float(score))
        except OSError as exc:
            # A sick cache dir slows tuning down, never fails it.
            telemetry.warning("tuning.memo_store_failed", error=str(exc))


@dataclass
class TuningResult:
    """Outcome of one nested-CV tuning run."""

    model_name: str
    best_params: dict
    fold_scores: list[float]

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.fold_scores))


def _tuning_matrix(
    model_name: str,
    dataset: LabeledDataset,
    feature_set: tuple[str, ...],
) -> tuple[np.ndarray, list]:
    """The (scaled) feature matrix and label list one model tunes on."""
    if model_name not in _ESTIMATORS:
        raise ValueError(
            f"unknown classical model {model_name!r}; "
            f"choose from {sorted(_ESTIMATORS)}"
        )
    _, needs_scaling = _ESTIMATORS[model_name]
    builder = FeatureSetBuilder(parts=feature_set)
    X = builder.transform(dataset.profiles)
    y = [label.value for label in dataset.labels]
    if needs_scaling:
        X = StandardScaler().fit_transform(X)
    return X, y


def tune_fold(
    model_name: str,
    X: np.ndarray,
    y: list,
    grid: dict,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    *,
    fold_index: int,
    n_folds: int,
    random_state: int = 0,
    cache=None,
    digest: str | None = None,
) -> dict:
    """One outer fold of the nested-CV protocol on a pre-built matrix.

    Returns ``{"best_params", "best_score", "test_score"}``.  With a cache
    and digest, the completed fold is memoized under kind ``"tune"`` and
    each grid candidate's fit/score is memoized individually (so a
    different grid that shares candidates still reuses them).
    """
    fold_key_params = None
    if cache is not None and digest is not None:
        fold_key = tuning_cache_key(
            "fold", digest=digest, model_name=model_name, grid=grid,
            fold_index=fold_index, n_folds=n_folds, random_state=random_state,
        )
        cached = cache.get("tune", fold_key)
        if cached is not None:
            telemetry.count("tuning.fold_hits")
            return cached
        fold_key_params = fold_key

    estimator_cls, _ = _ESTIMATORS[model_name]
    memo = None
    if cache is not None and digest is not None:
        memo = _GridPointMemo(
            cache, digest, model_name, fold_index, n_folds, random_state
        )
    search = GridSearchCV(
        estimator_cls(),
        grid,
        validation_fraction=VALIDATION_FRACTION,
        random_state=random_state,
        candidate_memo=memo,
    )
    search.fit(X[train_idx], [y[i] for i in train_idx])
    score = search.score(X[test_idx], [y[i] for i in test_idx])
    fold = {
        "best_params": dict(search.best_params_),
        "best_score": float(search.best_score_),
        "test_score": float(score),
    }
    if fold_key_params is not None:
        try:
            cache.put("tune", fold_key_params, fold)
        except OSError as exc:
            telemetry.warning("tuning.memo_store_failed", error=str(exc))
    return fold


def tune_classical_fold(
    model_name: str,
    dataset: LabeledDataset,
    fold_index: int,
    feature_set: tuple[str, ...] = ("stats", "name"),
    param_grid: dict | None = None,
    n_folds: int = 5,
    random_state: int = 0,
    use_cache: bool = True,
) -> dict:
    """One outer fold of :func:`tune_classical_model`, dataset-in.

    The sub-task body for sharded tuning experiments: folds are
    independent (the splitter is deterministic in ``random_state``), so
    they can run in any worker in any order and
    :func:`reduce_tuning_folds` recovers exactly the serial result.
    """
    if not 0 <= fold_index < n_folds:
        raise ValueError(f"fold_index {fold_index} outside 0..{n_folds - 1}")
    X, y = _tuning_matrix(model_name, dataset, feature_set)
    grid = param_grid if param_grid is not None else PAPER_GRIDS[model_name]
    cache = active_cache() if use_cache else None
    digest = matrix_digest(X, y) if cache is not None else None
    splitter = StratifiedKFold(n_splits=n_folds, random_state=random_state)
    folds = list(splitter.split(y))
    train_idx, test_idx = folds[fold_index]
    return tune_fold(
        model_name, X, y, grid, train_idx, test_idx,
        fold_index=fold_index, n_folds=n_folds, random_state=random_state,
        cache=cache, digest=digest,
    )


def reduce_tuning_folds(model_name: str, folds: list[dict]) -> TuningResult:
    """Fold records (in outer-fold order) → the serial TuningResult.

    Mirrors the serial reduction exactly: the overall best params come
    from the fold with the strictly highest inner validation score, ties
    resolved in favour of the earliest fold.
    """
    fold_scores = [float(fold["test_score"]) for fold in folds]
    best_params: dict = {}
    best_score = -np.inf
    for fold in folds:
        if fold["best_score"] > best_score:
            best_score = fold["best_score"]
            best_params = dict(fold["best_params"])
    return TuningResult(model_name, best_params, fold_scores)


def tune_classical_model(
    model_name: str,
    dataset: LabeledDataset,
    feature_set: tuple[str, ...] = ("stats", "name"),
    param_grid: dict | None = None,
    n_folds: int = 5,
    random_state: int = 0,
    use_cache: bool = True,
) -> TuningResult:
    """Nested CV + grid search for logreg / svm / rf.

    Outer folds estimate generalization; within each outer training fold a
    random fourth validates the grid candidates (the paper's protocol).
    ``param_grid`` defaults to the Appendix B grid for the model (pass a
    smaller grid to keep runs fast).  With an active artifact cache (and
    ``use_cache``), folds and grid points are memoized — the result is
    exactly equal to an uncached run, just served from disk.
    """
    X, y = _tuning_matrix(model_name, dataset, feature_set)
    grid = param_grid if param_grid is not None else PAPER_GRIDS[model_name]
    cache = active_cache() if use_cache else None
    digest = matrix_digest(X, y) if cache is not None else None

    splitter = StratifiedKFold(n_splits=n_folds, random_state=random_state)
    folds = [
        tune_fold(
            model_name, X, y, grid, train_idx, test_idx,
            fold_index=fold_index, n_folds=n_folds,
            random_state=random_state, cache=cache, digest=digest,
        )
        for fold_index, (train_idx, test_idx) in enumerate(splitter.split(y))
    ]
    return reduce_tuning_folds(model_name, folds)


def tune_knn(
    dataset: LabeledDataset,
    n_neighbors_grid: tuple[int, ...] = (1, 3, 5, 7, 9),
    gamma_grid: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0),
    validation_fraction: float = 0.25,
    random_state: int = 0,
) -> TuningResult:
    """Grid-search the k-NN's (k, gamma) on a held-out validation slice."""
    rng = np.random.default_rng(random_state)
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(validation_fraction * n))
    val_idx, fit_idx = order[:n_val], order[n_val:]
    fit_split = dataset.subset(fit_idx)
    val_split = dataset.subset(val_idx)

    best = (-np.inf, {})
    for k in n_neighbors_grid:
        for gamma in gamma_grid:
            model = KNNModel(n_neighbors=k, gamma=gamma).fit(fit_split)
            score = model.score(val_split)
            if score > best[0]:
                best = (score, {"n_neighbors": k, "gamma": gamma})
    return TuningResult("knn", best[1], [best[0]])


def fit_tuned(
    result: TuningResult,
    dataset: LabeledDataset,
    feature_set: tuple[str, ...] = ("stats", "name"),
) -> TypeInferenceModel:
    """Fit a fresh wrapper model on the whole dataset with the tuned params."""
    from repro.core.models import LogRegModel, RandomForestModel, SVMModel

    if result.model_name == "logreg":
        model = LogRegModel(C=result.best_params["C"], feature_set=feature_set)
    elif result.model_name == "svm":
        model = SVMModel(
            C=result.best_params["C"],
            gamma=result.best_params["gamma"],
            feature_set=feature_set,
        )
    elif result.model_name == "rf":
        model = RandomForestModel(
            n_estimators=result.best_params["n_estimators"],
            max_depth=result.best_params["max_depth"],
            feature_set=feature_set,
        )
    elif result.model_name == "knn":
        model = KNNModel(**result.best_params)
    else:
        raise ValueError(f"unknown model {result.model_name!r}")
    return model.fit(dataset)
