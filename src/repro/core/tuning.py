"""Hyper-parameter tuning per the paper's methodology (Section 4.1).

"We perform 5-fold nested cross-validation of the train set, with a random
fourth of the examples in a training fold being used for validation during
hyper-parameter tuning.  We use a standard grid search" — over the grids of
Appendix B (:data:`repro.core.models.PAPER_GRIDS`).

Classical models are tuned on a pre-built feature matrix; the k-NN is tuned
over (n_neighbors, gamma) with its name/stats distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feature_sets import FeatureSetBuilder
from repro.core.featurize import LabeledDataset
from repro.core.models import (
    KNNModel,
    PAPER_GRIDS,
    TypeInferenceModel,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import GridSearchCV, StratifiedKFold
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import RBFSVM

_ESTIMATORS = {
    "logreg": (LogisticRegression, True),
    "svm": (RBFSVM, True),
    "rf": (RandomForestClassifier, False),
}


@dataclass
class TuningResult:
    """Outcome of one nested-CV tuning run."""

    model_name: str
    best_params: dict
    fold_scores: list[float]

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.fold_scores))


def tune_classical_model(
    model_name: str,
    dataset: LabeledDataset,
    feature_set: tuple[str, ...] = ("stats", "name"),
    param_grid: dict | None = None,
    n_folds: int = 5,
    random_state: int = 0,
) -> TuningResult:
    """Nested CV + grid search for logreg / svm / rf.

    Outer folds estimate generalization; within each outer training fold a
    random fourth validates the grid candidates (the paper's protocol).
    ``param_grid`` defaults to the Appendix B grid for the model (pass a
    smaller grid to keep runs fast).
    """
    if model_name not in _ESTIMATORS:
        raise ValueError(
            f"unknown classical model {model_name!r}; "
            f"choose from {sorted(_ESTIMATORS)}"
        )
    estimator_cls, needs_scaling = _ESTIMATORS[model_name]
    grid = param_grid if param_grid is not None else PAPER_GRIDS[model_name]

    builder = FeatureSetBuilder(parts=feature_set)
    X = builder.transform(dataset.profiles)
    y = [label.value for label in dataset.labels]
    if needs_scaling:
        X = StandardScaler().fit_transform(X)

    splitter = StratifiedKFold(n_splits=n_folds, random_state=random_state)
    fold_scores: list[float] = []
    best_params: dict = {}
    best_score = -np.inf
    for train_idx, test_idx in splitter.split(y):
        search = GridSearchCV(
            estimator_cls(),
            grid,
            validation_fraction=0.25,
            random_state=random_state,
        )
        search.fit(X[train_idx], [y[i] for i in train_idx])
        score = search.score(X[test_idx], [y[i] for i in test_idx])
        fold_scores.append(float(score))
        if search.best_score_ > best_score:
            best_score = search.best_score_
            best_params = dict(search.best_params_)
    return TuningResult(model_name, best_params, fold_scores)


def tune_knn(
    dataset: LabeledDataset,
    n_neighbors_grid: tuple[int, ...] = (1, 3, 5, 7, 9),
    gamma_grid: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0),
    validation_fraction: float = 0.25,
    random_state: int = 0,
) -> TuningResult:
    """Grid-search the k-NN's (k, gamma) on a held-out validation slice."""
    rng = np.random.default_rng(random_state)
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(validation_fraction * n))
    val_idx, fit_idx = order[:n_val], order[n_val:]
    fit_split = dataset.subset(fit_idx)
    val_split = dataset.subset(val_idx)

    best = (-np.inf, {})
    for k in n_neighbors_grid:
        for gamma in gamma_grid:
            model = KNNModel(n_neighbors=k, gamma=gamma).fit(fit_split)
            score = model.score(val_split)
            if score > best[0]:
                best = (score, {"n_neighbors": k, "gamma": gamma})
    return TuningResult("knn", best[1], [best[0]])


def fit_tuned(
    result: TuningResult,
    dataset: LabeledDataset,
    feature_set: tuple[str, ...] = ("stats", "name"),
) -> TypeInferenceModel:
    """Fit a fresh wrapper model on the whole dataset with the tuned params."""
    from repro.core.models import LogRegModel, RandomForestModel, SVMModel

    if result.model_name == "logreg":
        model = LogRegModel(C=result.best_params["C"], feature_set=feature_set)
    elif result.model_name == "svm":
        model = SVMModel(
            C=result.best_params["C"],
            gamma=result.best_params["gamma"],
            feature_set=feature_set,
        )
    elif result.model_name == "rf":
        model = RandomForestModel(
            n_estimators=result.best_params["n_estimators"],
            max_depth=result.best_params["max_depth"],
            feature_set=feature_set,
        )
    elif result.model_name == "knn":
        model = KNNModel(**result.best_params)
    else:
        raise ValueError(f"unknown model {result.model_name!r}")
    return model.fit(dataset)
