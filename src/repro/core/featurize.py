"""Base featurization: raw column → (name, 5 sample values, 25 stats).

This is the paper's Section 2.3 step.  A :class:`ColumnProfile` is the unit
"example" of the benchmark: everything downstream (hand labeling, the ML
models, the error analyses) operates on profiles, never on raw columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stats import (
    DescriptiveStats,
    StatsScanCache,
    compute_stats,
    compute_stats_batch,
)
from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import FeatureType

N_SAMPLE_VALUES = 5

#: Low-level failures the stats kernels can hit on pathological cells
#: (lone surrogates that cannot encode, degenerate shapes); re-raised as
#: the typed :class:`ProfileError` so ingestion surfaces (CLI exit codes,
#: HTTP 400s) never leak an ``IndexError``/``UnicodeDecodeError``.
_KERNEL_ERRORS = (IndexError, KeyError, UnicodeError, OverflowError,
                  ZeroDivisionError)


class ProfileError(ValueError):
    """A column whose cells cannot be base-featurized.

    Raised by :func:`profile_column` / :func:`profile_columns` in place of
    the untyped kernel-level exception, with the offending table/column
    named in the message and the original exception chained as the cause.
    """


@dataclass
class ColumnProfile:
    """A base-featurized column: one labeled example of the benchmark."""

    name: str
    samples: list[str]
    stats: DescriptiveStats
    source_file: str = ""
    label: FeatureType | None = None

    def sample(self, index: int) -> str:
        """The index-th sample value, or "" when the column has fewer."""
        if index < len(self.samples):
            return self.samples[index]
        return ""

    @property
    def stats_vector(self) -> np.ndarray:
        return self.stats.values


def profile_column(
    column: Column,
    source_file: str = "",
    label: FeatureType | None = None,
    rng: np.random.Generator | None = None,
) -> ColumnProfile:
    """Base-featurize one raw column.

    With an ``rng``, sample values are 5 randomly chosen distinct values
    (the paper's procedure); without one, the first 5 distinct values are
    used, which keeps profiling deterministic.
    """
    with telemetry.span("featurize.column", column=column.name):
        if rng is None:
            samples = column.head_distinct(N_SAMPLE_VALUES)
        else:
            samples = column.sample_distinct(N_SAMPLE_VALUES, rng)
        try:
            stats = compute_stats(column, samples=samples)
        except _KERNEL_ERRORS as exc:
            raise ProfileError(
                f"cannot featurize column {column.name!r}"
                f"{f' of {source_file!r}' if source_file else ''}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    telemetry.count("featurize.columns")
    return ColumnProfile(
        name=column.name,
        samples=samples,
        stats=stats,
        source_file=source_file,
        label=label,
    )


def profile_columns(
    columns: list[Column],
    source_file: str = "",
    labels: list[FeatureType | None] | None = None,
    rng: np.random.Generator | None = None,
    scan_cache: StatsScanCache | None = None,
) -> list[ColumnProfile]:
    """Base-featurize a batch of raw columns through the vectorized kernel.

    Sample values are drawn per column in order (so the ``rng`` stream is
    identical to featurizing the columns one at a time), then the descriptive
    stats of the whole batch are computed in one
    :func:`~repro.core.stats.compute_stats_batch` call, which amortizes the
    character-scan kernel across every column of the table.  A ``scan_cache``
    carried across calls additionally dedups the scan work across tables.
    """
    if labels is None:
        labels = [None] * len(columns)
    samples_list: list[list[str]] = []
    for column in columns:
        with telemetry.span("featurize.column", column=column.name):
            if rng is None:
                samples_list.append(column.head_distinct(N_SAMPLE_VALUES))
            else:
                samples_list.append(column.sample_distinct(N_SAMPLE_VALUES, rng))
    try:
        stats_list = compute_stats_batch(columns, list(samples_list), scan_cache)
    except _KERNEL_ERRORS as exc:
        names = ", ".join(repr(c.name) for c in columns[:5])
        raise ProfileError(
            f"cannot featurize columns [{names}{', ...' if len(columns) > 5 else ''}]"
            f"{f' of {source_file!r}' if source_file else ''}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    telemetry.count("featurize.columns", len(columns))
    return [
        ColumnProfile(
            name=column.name,
            samples=samples,
            stats=stats,
            source_file=source_file,
            label=label,
        )
        for column, samples, stats, label in zip(
            columns, samples_list, stats_list, labels
        )
    ]


def profile_table(
    table: Table, rng: np.random.Generator | None = None
) -> list[ColumnProfile]:
    """Base-featurize every column of a raw table."""
    with telemetry.span(
        "featurize.table", table=table.name, n_columns=len(table.column_names)
    ):
        profiles = profile_columns(
            list(table), source_file=table.name, rng=rng
        )
    telemetry.count("featurize.tables")
    return profiles


@dataclass
class LabeledDataset:
    """A set of labeled profiles — the benchmark's "labeled dataset"."""

    profiles: list[ColumnProfile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return LabeledDataset(self.profiles[index])
        return self.profiles[index]

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.profiles]

    @property
    def labels(self) -> list[FeatureType]:
        missing = [p.name for p in self.profiles if p.label is None]
        if missing:
            raise ValueError(f"unlabeled profiles present: {missing[:5]}")
        return [p.label for p in self.profiles]

    @property
    def groups(self) -> list[str]:
        """Source-file of each profile (for leave-datafile-out CV)."""
        return [p.source_file for p in self.profiles]

    def stats_matrix(self) -> np.ndarray:
        return np.stack([p.stats_vector for p in self.profiles])

    def sample_column(self, index: int) -> list[str]:
        """The index-th sample value of every profile."""
        return [p.sample(index) for p in self.profiles]

    def subset(self, indices) -> "LabeledDataset":
        return LabeledDataset([self.profiles[int(i)] for i in indices])

    def class_distribution(self) -> dict[FeatureType, float]:
        labels = self.labels
        total = len(labels)
        out: dict[FeatureType, float] = {}
        for label in labels:
            out[label] = out.get(label, 0.0) + 1.0
        return {k: v / total for k, v in out.items()}
