"""Save/load trained type-inference models.

The paper's public repository ships pre-trained models (k-NN, logistic
regression, RBF-SVM, Random Forest, CNN) so platforms can integrate type
inference without retraining.  This module provides the same artifact:
a versioned pickle with an integrity header.
"""

from __future__ import annotations

import io
import os
import pickle

from repro.core.models import TypeInferenceModel

_MAGIC = b"REPRO-SORTINGHAT-MODEL\x00"
_FORMAT_VERSION = 1


class ModelPersistenceError(RuntimeError):
    """Raised when a model artifact cannot be read."""


def save_model(model: TypeInferenceModel, path: str | os.PathLike) -> None:
    """Serialize a fitted model to ``path``."""
    buffer = io.BytesIO()
    pickle.dump(
        {"format_version": _FORMAT_VERSION, "model": model},
        buffer,
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(buffer.getvalue())


def load_model(path: str | os.PathLike) -> TypeInferenceModel:
    """Load a model previously written by :func:`save_model`.

    Only load artifacts you produced yourself — this uses pickle.
    """
    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC))
        if header != _MAGIC:
            raise ModelPersistenceError(
                f"{os.fspath(path)!r} is not a repro model artifact"
            )
        payload = pickle.load(handle)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ModelPersistenceError(
            f"unsupported model format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    model = payload["model"]
    if not isinstance(model, TypeInferenceModel):
        raise ModelPersistenceError("artifact does not contain a model")
    return model
