"""Save/load trained type-inference models.

The paper's public repository ships pre-trained models (k-NN, logistic
regression, RBF-SVM, Random Forest, CNN) so platforms can integrate type
inference without retraining.  This module provides the same artifact:
a versioned pickle with an integrity header.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle

from repro.core.models import TypeInferenceModel
from repro.faults import faults

_MAGIC = b"REPRO-SORTINGHAT-MODEL\x00"
_FORMAT_VERSION = 1


class ModelPersistenceError(RuntimeError):
    """Raised when a model artifact cannot be read."""


class ModelFormatError(ModelPersistenceError):
    """Raised when an artifact is readable but its format is wrong: bad
    magic header, missing/unknown ``format_version``, or a payload that is
    not a model.  Lets callers distinguish "not our file / wrong version"
    from I/O-level corruption."""


def model_dtype(model: TypeInferenceModel) -> str | None:
    """The numeric dtype a model computes in, or ``None`` if it has no
    dtype policy (classical models always run float64).

    The CharCNN family exposes ``dtype`` ("float32"/"float64"); artifacts
    record it so a deployment can tell which numeric contract a model was
    trained under before loading it (see docs/performance.md, "Kernel
    frontier").
    """
    dtype = getattr(model, "dtype", None)
    return str(dtype) if dtype is not None else None


def _payload(model: TypeInferenceModel) -> dict:
    """The exact dict both :func:`save_model` and
    :func:`fingerprint_model` serialize, so on-disk and in-memory
    fingerprints agree — and both cover the recorded dtype."""
    return {
        "format_version": _FORMAT_VERSION,
        "model": model,
        "dtype": model_dtype(model),
    }


def save_model(model: TypeInferenceModel, path: str | os.PathLike) -> None:
    """Serialize a fitted model to ``path``."""
    buffer = io.BytesIO()
    pickle.dump(_payload(model), buffer, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(buffer.getvalue())


def load_model(path: str | os.PathLike) -> TypeInferenceModel:
    """Load a model previously written by :func:`save_model`.

    Only load artifacts you produced yourself — this uses pickle.
    """
    faults.point("model.load", path=os.fspath(path))
    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC))
        if header != _MAGIC:
            raise ModelFormatError(
                f"{os.fspath(path)!r} is not a repro model artifact"
            )
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or "format_version" not in payload:
        raise ModelFormatError(
            f"{os.fspath(path)!r} has no format_version header"
        )
    version = payload["format_version"]
    if version != _FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported model format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    model = payload["model"]
    if not isinstance(model, TypeInferenceModel):
        raise ModelFormatError("artifact does not contain a model")
    return model


def model_fingerprint(path: str | os.PathLike) -> str:
    """sha256 hex digest of an artifact's payload (header excluded).

    Two artifacts with the same fingerprint decode to byte-identical model
    payloads; surfaced in ``/healthz`` and run manifests so a serving
    deployment can be tied back to the exact model it answered with.
    """
    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC))
        if header != _MAGIC:
            raise ModelFormatError(
                f"{os.fspath(path)!r} is not a repro model artifact"
            )
        return hashlib.sha256(handle.read()).hexdigest()


def fingerprint_model(model: TypeInferenceModel) -> str:
    """sha256 of the payload :func:`save_model` would write for ``model``.

    Matches :func:`model_fingerprint` of the saved file, so freshly trained
    (never-saved) models report the same identity they would have on disk.
    """
    return hashlib.sha256(
        pickle.dumps(_payload(model), protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
