"""End-to-end type inference: raw CSV file → per-column feature types.

This is the user-facing entry point an AutoML platform would call: load a
file, base-featurize every column, and run a trained model to get a feature
type and a confidence score per column (Section 3.3 / Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.featurize import ColumnProfile, profile_table
from repro.core.models import TypeInferenceModel
from repro.obs import telemetry
from repro.tabular.csv_io import read_csv, read_csv_text
from repro.tabular.table import Table
from repro.types import FeatureType


@dataclass(frozen=True)
class ColumnPrediction:
    """Predicted feature type of one column, with its confidence."""

    column: str
    feature_type: FeatureType
    confidence: float

    @property
    def needs_review(self) -> bool:
        """Columns an AutoML platform should surface for human review.

        The paper (Section 3.3) recommends prioritizing intervention on
        Context-Specific predictions and low-confidence predictions.
        """
        return (
            self.feature_type is FeatureType.CONTEXT_SPECIFIC
            or self.confidence < 0.5
        )

    def as_dict(self) -> dict:
        """The canonical JSON shape of one prediction.

        Shared by ``repro-infer --json`` and the ``repro.serve`` HTTP
        responses so server output is byte-identical to offline output.
        """
        return {
            "column": self.column,
            "feature_type": self.feature_type.value,
            "confidence": round(self.confidence, 4),
            "needs_review": self.needs_review,
        }


class TypeInferencePipeline:
    """Wraps a fitted :class:`TypeInferenceModel` behind file-level helpers."""

    def __init__(self, model: TypeInferenceModel):
        self.model = model

    def predict_profiles(
        self, profiles: list[ColumnProfile]
    ) -> list[ColumnPrediction]:
        with telemetry.span("pipeline.predict_profiles", n_columns=len(profiles)):
            probs = self.model.predict_proba(profiles)
            classes = self.model.classes_
            out = []
            for profile, row in zip(profiles, probs):
                best = int(np.argmax(row))
                out.append(
                    ColumnPrediction(
                        column=profile.name,
                        feature_type=classes[best],
                        confidence=float(row[best]),
                    )
                )
        if telemetry.enabled:
            for prediction in out:
                telemetry.count(f"pipeline.class.{prediction.feature_type.short}")
                telemetry.observe("pipeline.confidence", prediction.confidence)
                if prediction.needs_review:
                    telemetry.count("pipeline.needs_review")
        return out

    def predict_table(self, table: Table) -> list[ColumnPrediction]:
        """Infer feature types for every column of an in-memory table."""
        with telemetry.span("pipeline.predict_table", table=table.name):
            return self.predict_profiles(profile_table(table))

    def predict_csv(self, path) -> list[ColumnPrediction]:
        """Infer feature types for every column of a CSV file on disk."""
        with telemetry.span("pipeline.predict_csv", path=str(path)):
            return self.predict_table(read_csv(path))

    def predict_csv_text(self, text: str) -> list[ColumnPrediction]:
        """Infer feature types for CSV content provided as a string."""
        return self.predict_table(read_csv_text(text))

    def review_queue(self, table: Table) -> list[ColumnPrediction]:
        """Only the predictions that warrant human attention."""
        return [p for p in self.predict_table(table) if p.needs_review]
