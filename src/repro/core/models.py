"""Type-inference model wrappers (the "models trained on our data").

Every wrapper shares one interface: ``fit(dataset)``, ``predict(profiles)``,
``predict_proba(profiles)`` — mapping column profiles to feature types.  The
classical models consume :class:`~repro.core.feature_sets.FeatureSetBuilder`
output (scale-sensitive ones standardized); the CNN consumes raw characters;
the k-NN uses the paper's weighted name/stats distance.

``PAPER_GRIDS`` reproduces the Appendix B hyper-parameter grids.
"""

from __future__ import annotations

import numpy as np

from repro.core.feature_sets import FeatureSetBuilder
from repro.core.featurize import ColumnProfile, LabeledDataset
from repro.core.stats import compress_stats
from repro.ml.base import BaseEstimator
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.neighbors import NameStatsKNN
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import RBFSVM
from repro.nn.charcnn import CharCNNClassifier
from repro.types import FeatureType

#: Appendix B grids (abbreviated names match the paper's).
PAPER_GRIDS: dict[str, dict[str, list]] = {
    "logreg": {"C": [1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3]},
    "svm": {"C": [1e-1, 1, 10, 100, 1e3], "gamma": [1e-4, 1e-3, 0.01, 0.1, 1, 10]},
    "rf": {"n_estimators": [5, 25, 50, 75, 100], "max_depth": [5, 10, 25, 50, 100]},
    "knn": {"n_neighbors": list(range(1, 11)), "gamma": [1e-3, 0.01, 0.1, 1, 10, 100, 1e3]},
    "cnn": {
        "embed_dim": [64, 128, 256],
        "num_filters": [32, 64, 128],
        "filter_size": [2],
        "hidden_units": [250, 500, 1000],
        "dropout": [0.25],
    },
}


class TypeInferenceModel:
    """Shared plumbing for type-inference models."""

    name: str = "base"

    def fit(self, dataset: LabeledDataset) -> "TypeInferenceModel":
        raise NotImplementedError

    def predict(self, profiles: list[ColumnProfile]) -> list[FeatureType]:
        raise NotImplementedError

    def predict_proba(self, profiles: list[ColumnProfile]) -> np.ndarray:
        raise NotImplementedError

    def score(self, dataset: LabeledDataset) -> float:
        predictions = self.predict(dataset.profiles)
        truth = dataset.labels
        return float(np.mean([p == t for p, t in zip(predictions, truth)]))

    @property
    def classes_(self) -> list[FeatureType]:
        raise NotImplementedError


class _ClassicalModel(TypeInferenceModel):
    """A classical estimator over a FeatureSetBuilder matrix."""

    def __init__(
        self,
        estimator: BaseEstimator,
        feature_set: tuple[str, ...] = ("stats", "name"),
        standardize: bool = False,
        hash_dim: int = 192,
        drop_stat_indices: tuple[int, ...] = (),
    ):
        self.estimator = estimator
        self.builder = FeatureSetBuilder(
            parts=feature_set, hash_dim=hash_dim, drop_stat_indices=drop_stat_indices
        )
        self.standardize = standardize
        self._scaler: StandardScaler | None = None

    def _matrix(self, profiles: list[ColumnProfile], fit: bool) -> np.ndarray:
        X = self.builder.transform(profiles)
        if self.standardize:
            if fit:
                self._scaler = StandardScaler().fit(X)
            X = self._scaler.transform(X)
        return X

    def fit(self, dataset: LabeledDataset):
        X = self._matrix(dataset.profiles, fit=True)
        self.estimator.fit(X, dataset.labels)
        return self

    def predict(self, profiles: list[ColumnProfile]) -> list[FeatureType]:
        X = self._matrix(profiles, fit=False)
        return self.estimator.predict(X)

    def predict_proba(self, profiles: list[ColumnProfile]) -> np.ndarray:
        X = self._matrix(profiles, fit=False)
        return self.estimator.predict_proba(X)

    @property
    def classes_(self) -> list[FeatureType]:
        return list(self.estimator.classes_)


class LogRegModel(_ClassicalModel):
    """L2 multinomial logistic regression on a hashed feature set."""

    name = "logreg"

    def __init__(self, C: float = 1.0, feature_set=("stats", "name"), **kwargs):
        super().__init__(
            LogisticRegression(C=C), feature_set=feature_set, standardize=True,
            **kwargs,
        )


class SVMModel(_ClassicalModel):
    """RBF-SVM on a hashed feature set (standardized)."""

    name = "svm"

    def __init__(
        self, C: float = 10.0, gamma: float = 0.01,
        feature_set=("stats", "name"), max_landmarks: int = 1200, **kwargs,
    ):
        super().__init__(
            RBFSVM(C=C, gamma=gamma, max_landmarks=max_landmarks),
            feature_set=feature_set,
            standardize=True,
            **kwargs,
        )


class RandomForestModel(_ClassicalModel):
    """Random Forest — the paper's best type-inference model ("OurRF")."""

    name = "rf"

    def __init__(
        self, n_estimators: int = 75, max_depth: int = 25,
        feature_set=("stats", "name"), random_state: int = 0, **kwargs,
    ):
        super().__init__(
            RandomForestClassifier(
                n_estimators=n_estimators,
                max_depth=max_depth,
                random_state=random_state,
            ),
            feature_set=feature_set,
            standardize=False,
            **kwargs,
        )


class KNNModel(TypeInferenceModel):
    """The paper's k-NN with d = ED(X_name) + gamma * EC(X_stats)."""

    name = "knn"

    def __init__(
        self, n_neighbors: int = 5, gamma: float = 1.0,
        use_stats: bool = True, use_name: bool = True,
        name_cap: int | None = None,
    ):
        self.knn = NameStatsKNN(
            n_neighbors=n_neighbors, gamma=gamma,
            use_stats=use_stats, use_name=use_name, name_cap=name_cap,
        )
        self._scaler = StandardScaler()

    def _stats(self, profiles: list[ColumnProfile], fit: bool) -> np.ndarray:
        stats = compress_stats(np.stack([p.stats_vector for p in profiles]))
        if fit:
            self._scaler.fit(stats)
        return self._scaler.transform(stats)

    def fit(self, dataset: LabeledDataset):
        stats = self._stats(dataset.profiles, fit=True)
        self.knn.fit(dataset.names, stats, dataset.labels)
        return self

    def predict(self, profiles: list[ColumnProfile]) -> list[FeatureType]:
        stats = self._stats(profiles, fit=False)
        return self.knn.predict([p.name for p in profiles], stats)

    def predict_proba(self, profiles: list[ColumnProfile]) -> np.ndarray:
        # Vote fractions over the k neighbors (batched distance matrix).
        stats = self._stats(profiles, fit=False)
        return self.knn.predict_proba([p.name for p in profiles], stats)

    @property
    def classes_(self) -> list[FeatureType]:
        return list(self.knn.classes_)


class CNNModel(TypeInferenceModel):
    """Character-level CNN over raw name/sample characters + stats."""

    name = "cnn"

    def __init__(
        self,
        feature_set: tuple[str, ...] = ("stats", "name", "sample1"),
        embed_dim: int = 32,
        num_filters: int = 32,
        hidden_units: int = 128,
        epochs: int = 15,
        random_state: int = 0,
        dtype: str = "float64",
    ):
        self.feature_set = feature_set
        self.dtype = dtype
        self.cnn = CharCNNClassifier(
            embed_dim=embed_dim,
            num_filters=num_filters,
            hidden_units=hidden_units,
            epochs=epochs,
            random_state=random_state,
            dtype=dtype,
        )

    def _inputs(self, profiles: list[ColumnProfile]):
        text_fields: list[list[str]] = []
        if "name" in self.feature_set:
            text_fields.append([p.name for p in profiles])
        if "sample1" in self.feature_set:
            text_fields.append([p.sample(0) for p in profiles])
        if "sample2" in self.feature_set:
            text_fields.append([p.sample(1) for p in profiles])
        stats = None
        if "stats" in self.feature_set:
            stats = compress_stats(np.stack([p.stats_vector for p in profiles]))
        return text_fields, stats

    def fit(self, dataset: LabeledDataset):
        text_fields, stats = self._inputs(dataset.profiles)
        self.cnn.fit(text_fields, stats, dataset.labels)
        return self

    def predict(self, profiles: list[ColumnProfile]) -> list[FeatureType]:
        text_fields, stats = self._inputs(profiles)
        return self.cnn.predict(text_fields, stats)

    def predict_proba(self, profiles: list[ColumnProfile]) -> np.ndarray:
        text_fields, stats = self._inputs(profiles)
        return self.cnn.predict_proba(text_fields, stats)

    @property
    def classes_(self) -> list[FeatureType]:
        return list(self.cnn.classes_)


def default_models(feature_set=("stats", "name")) -> dict[str, TypeInferenceModel]:
    """The paper's five model families with sensible laptop-scale defaults."""
    return {
        "logreg": LogRegModel(feature_set=feature_set),
        "svm": SVMModel(feature_set=feature_set),
        "rf": RandomForestModel(feature_set=feature_set),
        "cnn": CNNModel(feature_set=feature_set),
        "knn": KNNModel(),
    }
