"""The nine-class ML feature type vocabulary of the benchmark.

The paper (Section 2.1) distills a common, practically useful label set from
the vocabularies of TFDV, TransmogrifAI, and AutoGluon.  Every column of a raw
data file is labeled with exactly one of these nine classes.
"""

from __future__ import annotations

import enum


class FeatureType(enum.Enum):
    """ML feature type of a raw column (paper Section 2.1)."""

    NUMERIC = "Numeric"
    CATEGORICAL = "Categorical"
    DATETIME = "Datetime"
    SENTENCE = "Sentence"
    URL = "URL"
    EMBEDDED_NUMBER = "Embedded Number"
    LIST = "List"
    NOT_GENERALIZABLE = "Not-Generalizable"
    CONTEXT_SPECIFIC = "Context-Specific"

    @property
    def short(self) -> str:
        """Two/three-letter code used in the paper's tables (NU, CA, ...)."""
        return _SHORT_CODES[self]

    @classmethod
    def from_short(cls, code: str) -> "FeatureType":
        """Inverse of :attr:`short` (case-insensitive)."""
        try:
            return _FROM_SHORT[code.upper()]
        except KeyError:
            raise ValueError(f"unknown feature type code: {code!r}") from None

    @classmethod
    def from_label(cls, label: str) -> "FeatureType":
        """Parse a human-readable label such as ``"Embedded Number"``."""
        for member in cls:
            if member.value.lower() == label.lower():
                return member
        raise ValueError(f"unknown feature type label: {label!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_SHORT_CODES = {
    FeatureType.NUMERIC: "NU",
    FeatureType.CATEGORICAL: "CA",
    FeatureType.DATETIME: "DT",
    FeatureType.SENTENCE: "ST",
    FeatureType.URL: "URL",
    FeatureType.EMBEDDED_NUMBER: "EN",
    FeatureType.LIST: "LST",
    FeatureType.NOT_GENERALIZABLE: "NG",
    FeatureType.CONTEXT_SPECIFIC: "CS",
}

_FROM_SHORT = {code: ftype for ftype, code in _SHORT_CODES.items()}

#: Canonical ordering of the nine classes, as used throughout the paper's
#: tables and our confusion matrices.
ALL_FEATURE_TYPES: tuple[FeatureType, ...] = (
    FeatureType.NUMERIC,
    FeatureType.CATEGORICAL,
    FeatureType.DATETIME,
    FeatureType.SENTENCE,
    FeatureType.URL,
    FeatureType.EMBEDDED_NUMBER,
    FeatureType.LIST,
    FeatureType.NOT_GENERALIZABLE,
    FeatureType.CONTEXT_SPECIFIC,
)

#: Class prior of the paper's labeled dataset (Section 2.5).  Our synthetic
#: corpus generator reproduces this distribution.
PAPER_CLASS_DISTRIBUTION: dict[FeatureType, float] = {
    FeatureType.NUMERIC: 0.366,
    FeatureType.CATEGORICAL: 0.233,
    FeatureType.DATETIME: 0.070,
    FeatureType.SENTENCE: 0.039,
    FeatureType.URL: 0.015,
    FeatureType.EMBEDDED_NUMBER: 0.057,
    FeatureType.LIST: 0.024,
    FeatureType.NOT_GENERALIZABLE: 0.106,
    FeatureType.CONTEXT_SPECIFIC: 0.089,
}

N_CLASSES = len(ALL_FEATURE_TYPES)
