"""The 30-task downstream benchmark suite runner (Tables 4 and 5).

Compares type assignments from ground truth, the industrial tools, and a
trained model ("OurRF") by the downstream performance they yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.featurize import profile_table
from repro.core.models import TypeInferenceModel
from repro.datagen.downstream import DownstreamDataset
from repro.downstream.featurize import TypeAssignment
from repro.downstream.harness import (
    FOREST,
    LINEAR,
    DownstreamScore,
    evaluate_assignment,
)
from repro.tools.base import InferenceTool
from repro.types import FeatureType

#: Score differences within these tolerances count as "matching the truth".
CLASSIFICATION_TOLERANCE = 0.5  # accuracy points (of 100)
REGRESSION_TOLERANCE = 0.02  # relative RMSE


def truth_assignments(dataset: DownstreamDataset) -> TypeAssignment:
    """The hand-labeled ground-truth types."""
    return dict(dataset.true_types)


def tool_assignments(
    dataset: DownstreamDataset, tool: InferenceTool
) -> TypeAssignment:
    """Types inferred by a rule/syntax-based tool."""
    return dict(tool.infer_table(dataset.table))


def model_assignments(
    dataset: DownstreamDataset, model: TypeInferenceModel
) -> TypeAssignment:
    """Types inferred by a trained type-inference model."""
    profiles = profile_table(dataset.table)
    predictions = model.predict(profiles)
    return {p.name: pred for p, pred in zip(profiles, predictions)}


def served_assignments(
    dataset: DownstreamDataset, client, model: str | None = None
) -> TypeAssignment:
    """Types inferred by a live ``repro-serve`` instance.

    ``client`` is a :class:`~repro.serve.client.ServeClient` (or
    :class:`~repro.serve.balance.FleetClient`); ``model`` optionally routes
    to one registered model.  This closes the ROADMAP's "Table 5 against a
    live server" gap: the downstream harness consumes served predictions
    exactly like offline ones, so offline-vs-served score parity is a
    one-line comparison (see ``tests/test_serve_fleet.py``).
    """
    columns = [
        {"name": column.name, "cells": list(column)}
        for column in dataset.table
    ]
    response = client.infer_columns(
        columns, table=dataset.name, model=model
    )
    return {
        p["column"]: FeatureType(p["feature_type"])
        for p in response["predictions"]
    }


@dataclass(frozen=True)
class InferenceAccuracy:
    """Table 4(A) row: column coverage and accuracy given coverage."""

    approach: str
    covered: int
    total: int
    correct_given_coverage: int

    @property
    def accuracy(self) -> float:
        if self.covered == 0:
            return 0.0
        return self.correct_given_coverage / self.covered


def inference_accuracy_on_suite(
    datasets: list[DownstreamDataset],
    approach: str,
    assignment_fn: Callable[[DownstreamDataset], TypeAssignment],
    coverage_fn: Callable[[DownstreamDataset, str], bool] | None = None,
) -> InferenceAccuracy:
    """Type-inference coverage/accuracy over all suite columns (Table 4A)."""
    covered = correct = total = 0
    for dataset in datasets:
        assignments = assignment_fn(dataset)
        for name, truth in dataset.true_types.items():
            total += 1
            is_covered = (
                coverage_fn(dataset, name) if coverage_fn is not None else True
            )
            if not is_covered:
                continue
            covered += 1
            if assignments.get(name) == truth:
                correct += 1
    return InferenceAccuracy(approach, covered, total, correct)


@dataclass
class SuiteResult:
    """All scores: result[approach][model_kind][dataset] -> DownstreamScore."""

    scores: dict[str, dict[str, dict[str, DownstreamScore]]] = field(
        default_factory=dict
    )

    def add(self, approach: str, score: DownstreamScore) -> None:
        self.scores.setdefault(approach, {}).setdefault(score.model_kind, {})[
            score.dataset
        ] = score

    def approaches(self) -> list[str]:
        return list(self.scores)

    def delta_vs_truth(
        self, approach: str, model_kind: str, dataset: str
    ) -> float:
        """Signed improvement over truth (positive = outperforms truth)."""
        score = self.scores[approach][model_kind][dataset]
        truth = self.scores["truth"][model_kind][dataset]
        return score.delta_vs(truth)


def _matches(score: DownstreamScore, truth: DownstreamScore) -> bool:
    if score.higher_is_better:
        return abs(score.value - truth.value) <= CLASSIFICATION_TOLERANCE
    scale = max(abs(truth.value), 1e-9)
    return abs(score.value - truth.value) / scale <= REGRESSION_TOLERANCE


@dataclass(frozen=True)
class TruthComparison:
    """Table 4(B) row: datasets where an approach under/matches/outperforms."""

    approach: str
    model_kind: str
    underperform: int
    match: int
    outperform: int
    best_tool_count: int


def compare_to_truth(
    result: SuiteResult, approaches: list[str], model_kind: str
) -> list[TruthComparison]:
    """Summarize each approach against truth and against the other tools."""
    truth_scores = result.scores["truth"][model_kind]
    rows = []
    for approach in approaches:
        under = match = over = best = 0
        for dataset, truth in truth_scores.items():
            score = result.scores[approach][model_kind][dataset]
            if _matches(score, truth):
                match += 1
            elif score.delta_vs(truth) > 0:
                over += 1
            else:
                under += 1
            rival_deltas = [
                result.scores[other][model_kind][dataset].delta_vs(truth)
                for other in approaches
            ]
            if score.delta_vs(truth) >= max(rival_deltas) - 1e-12:
                best += 1
        rows.append(
            TruthComparison(approach, model_kind, under, match, over, best)
        )
    return rows


def run_suite(
    datasets: list[DownstreamDataset],
    approaches: dict[str, Callable[[DownstreamDataset], TypeAssignment]],
    model_kinds: tuple[str, ...] = (LINEAR, FOREST),
    seed: int = 0,
) -> SuiteResult:
    """Evaluate every (approach, model kind, dataset) combination.

    ``approaches`` must include a "truth" entry for the comparisons.
    """
    if "truth" not in approaches:
        raise ValueError('approaches must include a "truth" assignment')
    result = SuiteResult()
    for dataset in datasets:
        assignment_cache = {
            name: fn(dataset) for name, fn in approaches.items()
        }
        for model_kind in model_kinds:
            for name, assignments in assignment_cache.items():
                score = evaluate_assignment(
                    dataset, assignments, model_kind=model_kind, seed=seed
                )
                result.add(name, score)
    return result
