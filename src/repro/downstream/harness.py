"""Run one downstream model under one feature-type assignment.

The paper's methodology (Section 5.2/5.3): featurize per inferred type,
train both ends of the bias-variance spectrum — an L2-regularized linear
model and a Random Forest — and report accuracy (scaled to 100) for
classification or RMSE for regression.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cache import active_cache, artifact_key
from repro.core.newrf import Representation
from repro.datagen.downstream import DownstreamDataset
from repro.downstream.featurize import TypeAssignment, featurize_split
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LogisticRegression, RidgeRegression
from repro.ml.metrics import accuracy_score, rmse
from repro.ml.preprocessing import StandardScaler
from repro.obs import telemetry
from repro.tabular.column import Column
from repro.tabular.table import Table

LINEAR = "linear"
FOREST = "forest"
MODEL_KINDS = (LINEAR, FOREST)


@dataclass(frozen=True)
class DownstreamScore:
    """Score of one (dataset, assignment, model) run.

    ``value`` is accuracy*100 for classification (higher better) or RMSE for
    regression (lower better); ``higher_is_better`` disambiguates.
    """

    dataset: str
    model_kind: str
    value: float
    higher_is_better: bool

    def delta_vs(self, baseline: "DownstreamScore") -> float:
        """Signed improvement over a baseline score (positive = better)."""
        if self.higher_is_better != baseline.higher_is_better:
            raise ValueError("cannot compare scores with different metrics")
        raw = self.value - baseline.value
        return raw if self.higher_is_better else -raw


def _split_table(table: Table, test_mask: np.ndarray) -> tuple[Table, Table]:
    train_cols, test_cols = [], []
    for column in table:
        cells = list(column.cells)
        train_cols.append(
            Column(column.name, [cells[i] for i in np.nonzero(~test_mask)[0]])
        )
        test_cols.append(
            Column(column.name, [cells[i] for i in np.nonzero(test_mask)[0]])
        )
    return Table(train_cols, name=table.name), Table(test_cols, name=table.name)


def _dataset_digest(dataset: DownstreamDataset) -> str:
    """Content hash of a downstream dataset (features + target)."""
    digest = hashlib.sha256()
    digest.update(f"{dataset.name}\x1e{dataset.task}\x1e".encode("utf-8"))
    digest.update("\x1f".join(repr(v) for v in dataset.target).encode("utf-8"))
    for column in dataset.table:
        digest.update(f"\x1e{column.name}\x1e".encode("utf-8"))
        digest.update(
            "\x1f".join("\x00" if c is None else c for c in column.cells)
            .encode("utf-8")
        )
    return digest.hexdigest()


def _canonical_assignment(assignments: TypeAssignment) -> list[list]:
    """A JSON-stable form of a type assignment for cache addressing."""
    out = []
    for name in sorted(assignments):
        value = assignments[name]
        if isinstance(value, Representation):
            out.append([name, value.feature_type.value, bool(value.double)])
        else:
            out.append([name, value.value])
    return out


def evaluate_assignment(
    dataset: DownstreamDataset,
    assignments: TypeAssignment,
    model_kind: str = LINEAR,
    test_size: float = 0.2,
    seed: int = 0,
) -> DownstreamScore:
    """Train/evaluate one downstream model under a type assignment.

    Each call is a pure function of its arguments (the split and model
    RNGs are seeded locally), so with an active artifact cache the score
    is served from disk by content address instead of retraining.
    """
    if model_kind not in MODEL_KINDS:
        raise ValueError(f"model_kind must be one of {MODEL_KINDS}")
    cache = active_cache()
    key = None
    if cache is not None:
        key = artifact_key(
            "score",
            {
                "dataset": _dataset_digest(dataset),
                "assignment": _canonical_assignment(assignments),
                "model_kind": model_kind,
                "test_size": test_size,
                "seed": seed,
            },
        )
        score = cache.get("score", key)
        if score is not None:
            if telemetry.enabled:
                telemetry.count("downstream.evaluations")
                telemetry.count(f"downstream.model.{model_kind}")
                telemetry.observe(
                    f"downstream.score.{dataset.task}", score.value
                )
            return score
    with telemetry.span(
        "downstream.evaluate",
        dataset=dataset.name,
        model=model_kind,
        task=dataset.task,
    ):
        score = _evaluate_assignment(dataset, assignments, model_kind,
                                     test_size, seed)
    if cache is not None:
        cache.put("score", key, score)
    if telemetry.enabled:
        telemetry.count("downstream.evaluations")
        telemetry.count(f"downstream.model.{model_kind}")
        telemetry.observe(f"downstream.score.{dataset.task}", score.value)
    return score


def _evaluate_assignment(
    dataset: DownstreamDataset,
    assignments: TypeAssignment,
    model_kind: str,
    test_size: float,
    seed: int,
) -> DownstreamScore:
    n = len(dataset.table)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(test_size * n)))
    test_mask = np.zeros(n, dtype=bool)
    test_mask[order[:n_test]] = True

    train_table, test_table = _split_table(dataset.table, test_mask)
    y = np.asarray(dataset.target, dtype=object)
    y_train = y[~test_mask]
    y_test = y[test_mask]

    X_train, X_test = featurize_split(train_table, test_table, assignments)

    if dataset.task == "classification":
        if model_kind == LINEAR:
            scaler = StandardScaler().fit(X_train)
            X_train = scaler.transform(X_train)
            X_test = scaler.transform(X_test)
            model = LogisticRegression(C=1.0, max_iter=150)
        else:
            model = RandomForestClassifier(
                n_estimators=40, max_depth=25, random_state=seed
            )
        if len(set(y_train.tolist())) < 2:
            # degenerate split; predict the majority class
            majority = y_train[0]
            value = 100.0 * float(np.mean(y_test == majority))
        else:
            model.fit(X_train, list(y_train))
            value = 100.0 * accuracy_score(list(y_test), model.predict(X_test))
        return DownstreamScore(dataset.name, model_kind, value, True)

    y_train_f = y_train.astype(float)
    y_test_f = y_test.astype(float)
    if model_kind == LINEAR:
        scaler = StandardScaler().fit(X_train)
        X_train = scaler.transform(X_train)
        X_test = scaler.transform(X_test)
        model = RidgeRegression(alpha=1.0)
    else:
        model = RandomForestRegressor(
            n_estimators=40, max_depth=25, random_state=seed
        )
    model.fit(X_train, y_train_f)
    value = rmse(y_test_f, np.asarray(model.predict(X_test), dtype=float))
    return DownstreamScore(dataset.name, model_kind, value, False)
