"""Type-routed featurization for downstream models (paper Section 5.3).

Columns inferred Numeric are retained as-is, Categorical columns are one-hot
encoded, Sentence columns go through TF-IDF, URLs through word-level
bigrams, Not-Generalizable columns are dropped, and the remaining types
(Datetime, Embedded Number, List, Context-Specific) are featurized with
character bigrams.  All fitted state (means, vocabularies, encoders) comes
from the training split only.
"""

from __future__ import annotations

import numpy as np

from repro.core.newrf import Representation
from repro.ml.preprocessing import OneHotEncoder
from repro.ml.text import HashingVectorizer, TfidfVectorizer
from repro.tabular.column import Column
from repro.tabular.dtypes import try_parse_float
from repro.tabular.table import Table
from repro.types import FeatureType

_MAX_ONEHOT = 60
_TFIDF_FEATURES = 200
_BIGRAM_DIM = 48
_URL_DIM = 32


def _numeric_block(train: Column, test: Column) -> tuple[np.ndarray, np.ndarray]:
    def parse(column: Column, fill: float) -> np.ndarray:
        out = np.full(len(column), fill)
        for i, cell in enumerate(column.cells):
            if cell is None:
                continue
            value = try_parse_float(cell)
            if value is not None:
                out[i] = value
        return out

    train_raw = [try_parse_float(c) for c in train.non_missing()]
    train_vals = [v for v in train_raw if v is not None]
    fill = float(np.mean(train_vals)) if train_vals else 0.0
    return parse(train, fill)[:, None], parse(test, fill)[:, None]


def _onehot_block(train: Column, test: Column) -> tuple[np.ndarray, np.ndarray]:
    encoder = OneHotEncoder(max_categories=_MAX_ONEHOT, handle_unknown="ignore")
    encoder.fit(list(train.cells))
    return encoder.transform(list(train.cells)), encoder.transform(list(test.cells))


def _tfidf_block(train: Column, test: Column) -> tuple[np.ndarray, np.ndarray]:
    vectorizer = TfidfVectorizer(analyzer="word", ngram=1,
                                 max_features=_TFIDF_FEATURES)
    train_texts = ["" if c is None else c for c in train.cells]
    test_texts = ["" if c is None else c for c in test.cells]
    vectorizer.fit(train_texts)
    return vectorizer.transform(train_texts), vectorizer.transform(test_texts)


def _url_block(train: Column, test: Column) -> tuple[np.ndarray, np.ndarray]:
    vectorizer = HashingVectorizer(analyzer="word", ngram=2, n_features=_URL_DIM)

    def clean(column: Column) -> list[str]:
        texts = []
        for cell in column.cells:
            text = "" if cell is None else cell
            for ch in ":/.?=&-_":
                text = text.replace(ch, " ")
            texts.append(text)
        return texts

    return vectorizer.transform(clean(train)), vectorizer.transform(clean(test))


def _bigram_block(train: Column, test: Column) -> tuple[np.ndarray, np.ndarray]:
    vectorizer = HashingVectorizer(analyzer="char", ngram=2,
                                   n_features=_BIGRAM_DIM)
    train_texts = ["" if c is None else c for c in train.cells]
    test_texts = ["" if c is None else c for c in test.cells]
    return vectorizer.transform(train_texts), vectorizer.transform(test_texts)


_ROUTES = {
    FeatureType.NUMERIC: _numeric_block,
    FeatureType.CATEGORICAL: _onehot_block,
    FeatureType.SENTENCE: _tfidf_block,
    FeatureType.URL: _url_block,
    FeatureType.DATETIME: _bigram_block,
    FeatureType.EMBEDDED_NUMBER: _bigram_block,
    FeatureType.LIST: _bigram_block,
    FeatureType.CONTEXT_SPECIFIC: _bigram_block,
}

TypeAssignment = dict[str, "FeatureType | Representation | None"]


def featurize_split(
    train_table: Table,
    test_table: Table,
    assignments: TypeAssignment,
) -> tuple[np.ndarray, np.ndarray]:
    """Featurize train/test tables under a feature-type assignment.

    ``assignments`` maps column name → FeatureType, a NewRF
    :class:`Representation` (possibly double), or ``None`` to drop the
    column (uncovered / Not-Generalizable).
    """
    train_blocks: list[np.ndarray] = []
    test_blocks: list[np.ndarray] = []
    for name in train_table.column_names:
        assignment = assignments.get(name)
        if assignment is None:
            continue
        train_col = train_table[name]
        test_col = test_table[name]
        if isinstance(assignment, Representation):
            routes = []
            if assignment.double:
                routes = [_numeric_block, _onehot_block]
            else:
                if assignment.feature_type is FeatureType.NOT_GENERALIZABLE:
                    continue
                routes = [_ROUTES[assignment.feature_type]]
        else:
            if assignment is FeatureType.NOT_GENERALIZABLE:
                continue
            routes = [_ROUTES[assignment]]
        for route in routes:
            train_block, test_block = route(train_col, test_col)
            train_blocks.append(train_block)
            test_blocks.append(test_block)
    X_train = (
        np.hstack(train_blocks)
        if train_blocks
        else np.empty((len(train_table), 0))
    )
    X_test = (
        np.hstack(test_blocks) if test_blocks else np.empty((len(test_table), 0))
    )
    if X_train.shape[1] == 0:
        # Degenerate assignment: everything dropped, or every retained block
        # produced zero features (e.g. TF-IDF fit on an all-missing column).
        # Emit an intercept column so downstream models always see >= 1
        # feature and X_train/X_test stay aligned.
        return (
            np.ones((len(train_table), 1)),
            np.ones((len(test_table), 1)),
        )
    return X_train, X_test
