"""Downstream benchmark suite: type-routed featurization + model harness."""

from repro.downstream.featurize import TypeAssignment, featurize_split
from repro.downstream.harness import (
    FOREST,
    LINEAR,
    MODEL_KINDS,
    DownstreamScore,
    evaluate_assignment,
)
from repro.downstream.suite import (
    CLASSIFICATION_TOLERANCE,
    InferenceAccuracy,
    REGRESSION_TOLERANCE,
    SuiteResult,
    TruthComparison,
    compare_to_truth,
    inference_accuracy_on_suite,
    model_assignments,
    run_suite,
    tool_assignments,
    truth_assignments,
)

__all__ = [
    "CLASSIFICATION_TOLERANCE",
    "DownstreamScore",
    "FOREST",
    "InferenceAccuracy",
    "LINEAR",
    "MODEL_KINDS",
    "REGRESSION_TOLERANCE",
    "SuiteResult",
    "TruthComparison",
    "TypeAssignment",
    "compare_to_truth",
    "evaluate_assignment",
    "featurize_split",
    "inference_accuracy_on_suite",
    "model_assignments",
    "run_suite",
    "tool_assignments",
    "truth_assignments",
]
