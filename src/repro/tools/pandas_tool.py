"""Pandas-style syntactic type inference (paper Section 3.1).

Pandas infers syntactic dtypes — int64/float64 for numeric literals,
``object`` otherwise — plus a ``to_datetime`` utility probe that parses a
wide set of date formats.  Per Figure 3, int/float map to Numeric, parseable
datetimes map to Datetime, and the ``object`` catch-all maps to
Context-Specific.  Integer-encoded categoricals and integer primary keys
therefore come out as Numeric — the semantic gap in its purest form.
"""

from __future__ import annotations

from repro.tabular.column import Column
from repro.tools.base import InferenceTool
from repro.tools.heuristics import date_fraction, float_fraction
from repro.types import FeatureType

#: pandas.to_datetime is permissive: everything but compact YYYYMMDD digit
#: strings (those parse as integers first).
PANDAS_DATE_FORMATS = (
    "iso", "iso_ts", "us_slash", "eu_slash", "long", "time", "mon_year",
)

_DTYPE_THRESHOLD = 0.98  # a couple of stray strings demote a column to object


class PandasTool(InferenceTool):
    """Simulates ``pandas.read_csv`` dtype inference + ``to_datetime``."""

    name = "pandas"

    def infer_column(self, column: Column) -> FeatureType:
        if float_fraction(column) >= _DTYPE_THRESHOLD:
            return FeatureType.NUMERIC
        if date_fraction(column, PANDAS_DATE_FORMATS) >= _DTYPE_THRESHOLD:
            return FeatureType.DATETIME
        return FeatureType.CONTEXT_SPECIFIC  # dtype "object" (Figure 3)

    def covers_column(self, column: Column) -> bool:
        """Pandas' native vocabulary only truly captures numeric/datetime.

        The ``object`` dtype is a syntactic catch-all, not a feature type —
        Table 4(A) counts such columns as uncovered.
        """
        return self.infer_column(column) is not FeatureType.CONTEXT_SPECIFIC
