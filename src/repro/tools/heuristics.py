"""Shared column-level heuristics used by the tool simulators.

Each tool recognizes its own subset of date formats — that subset gap is
exactly why the paper reports high Datetime precision but low recall for
rule-based tools (they miss "BirthDate 19980112"-style instances).
"""

from __future__ import annotations

import re

from repro.tabular.column import Column
from repro.tabular.dtypes import is_float_literal, is_integer_literal

_ISO_DATE = re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$")
_ISO_TIMESTAMP = re.compile(
    r"^\d{4}-\d{1,2}-\d{1,2}[ T]\d{1,2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)
_US_SLASH = re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$")
_EU_SLASH = re.compile(r"^\d{1,2}/\d{1,2}/\d{4}$")
_LONG_DATE = re.compile(
    r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2},?\s+\d{4}$",
    re.IGNORECASE,
)
_TIME_ONLY = re.compile(r"^\d{1,2}:\d{2}(:\d{2})?$")
_MON_YEAR = re.compile(
    r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*-\d{2,4}$",
    re.IGNORECASE,
)
_COMPACT = re.compile(r"^(19|20)\d{2}(0[1-9]|1[0-2])(0[1-9]|[12]\d|3[01])$")

#: Named date-format matchers; tools opt into subsets.
DATE_FORMATS = {
    "iso": _ISO_DATE,
    "iso_ts": _ISO_TIMESTAMP,
    "us_slash": _US_SLASH,
    "eu_slash": _EU_SLASH,
    "long": _LONG_DATE,
    "time": _TIME_ONLY,
    "mon_year": _MON_YEAR,
    "compact": _COMPACT,
}


def matches_formats(cell: str, formats: tuple[str, ...]) -> bool:
    """True when the cell matches any of the named date formats."""
    text = cell.strip()
    return any(DATE_FORMATS[name].match(text) for name in formats)


def fraction(column: Column, predicate) -> float:
    """Fraction of present cells satisfying ``predicate`` (0 when empty)."""
    present = column.non_missing()
    if not present:
        return 0.0
    return sum(1 for cell in present if predicate(cell)) / len(present)


def integer_fraction(column: Column) -> float:
    return fraction(column, is_integer_literal)


def float_fraction(column: Column) -> float:
    """Fraction parseable as numbers (ints included)."""
    return fraction(column, is_float_literal)


def date_fraction(column: Column, formats: tuple[str, ...]) -> float:
    return fraction(column, lambda cell: matches_formats(cell, formats))


def mean_word_count(column: Column) -> float:
    present = column.non_missing()
    if not present:
        return 0.0
    return sum(len(cell.split()) for cell in present) / len(present)


def distinct_fraction(column: Column) -> float:
    if len(column) == 0:
        return 0.0
    return len(column.distinct()) / len(column)


def missing_fraction(column: Column) -> float:
    if len(column) == 0:
        return 1.0
    return column.n_missing() / len(column)
