"""The paper's 11-rule flowchart baseline (Section 3.2, Figure 5).

A hand-written decision procedure over the base-featurized signals that
covers the full 9-class vocabulary.  The paper reports ~54% 9-class accuracy
for this approach — rules capture the easy syntax but fail exactly where the
semantic gap bites (integer categoricals are rule-8'd into Numeric).
"""

from __future__ import annotations

from repro.tabular.column import Column
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_embedded_number,
    looks_like_list,
    looks_like_url,
)
from repro.tools.base import InferenceTool
from repro.tools.heuristics import (
    distinct_fraction,
    float_fraction,
    fraction,
    mean_word_count,
    missing_fraction,
)
from repro.types import FeatureType

_NG_EXTREME = 0.9999  # "% of NaNs or % of unique values > 99.99%"
_MATCH_THRESHOLD = 0.9
_SENTENCE_MEAN_WORDS = 3.0
_CATEGORICAL_DISTINCT_FRACTION = 0.1


class RuleBaselineTool(InferenceTool):
    """Flowchart of 11 rules covering all nine classes (Figure 5)."""

    name = "rules"

    def infer_column(self, column: Column) -> FeatureType:
        # Rule 1: no informative values at all.
        if not column.non_missing():
            return FeatureType.NOT_GENERALIZABLE
        # Rule 2: extreme missingness or an (almost) all-unique string key.
        if missing_fraction(column) > _NG_EXTREME:
            return FeatureType.NOT_GENERALIZABLE
        # Rule 3: single unique value offers no discriminative power.
        if len(column.distinct()) == 1:
            return FeatureType.NOT_GENERALIZABLE
        # Rule 4: URL regex over the sample values.
        if fraction(column, looks_like_url) >= _MATCH_THRESHOLD:
            return FeatureType.URL
        # Rule 5: delimiter-separated series of items.
        if fraction(column, looks_like_list) >= _MATCH_THRESHOLD:
            return FeatureType.LIST
        # Rule 6: date/timestamp formats.
        if fraction(column, looks_like_datetime) >= _MATCH_THRESHOLD:
            return FeatureType.DATETIME
        # Rule 7: all-unique numeric integers look like keys.
        if (
            float_fraction(column) >= _MATCH_THRESHOLD
            and distinct_fraction(column) > _NG_EXTREME
            and _is_integer_sequence(column)
        ):
            return FeatureType.NOT_GENERALIZABLE
        # Rule 8: castable to numbers -> Numeric (the big semantic-gap miss:
        # integer-coded categories land here).
        if float_fraction(column) >= _MATCH_THRESHOLD:
            return FeatureType.NUMERIC
        # Rule 9: messy numbers with units/symbols/grouping.
        if fraction(column, looks_like_embedded_number) >= _MATCH_THRESHOLD:
            return FeatureType.EMBEDDED_NUMBER
        # Rule 10: long natural-language values.
        if mean_word_count(column) >= _SENTENCE_MEAN_WORDS:
            return FeatureType.SENTENCE
        # Rule 11: small string domains are categorical; the rest needs a human.
        if distinct_fraction(column) <= _CATEGORICAL_DISTINCT_FRACTION:
            return FeatureType.CATEGORICAL
        return FeatureType.CONTEXT_SPECIFIC


def _is_integer_sequence(column: Column) -> bool:
    """Monotonic-ish integer keys: all values integral and distinct."""
    values = column.numeric_values()
    if not values:
        return False
    return all(float(v).is_integer() for v in values) and (
        len(set(values)) == len(values)
    )
