"""TransmogrifAI-style primitive type inference (paper Section 3.1).

TransmogrifAI (Salesforce Einstein) supports rudimentary automatic inference
over primitive types: Integer/Long/Double → Numeric, Timestamp → Datetime,
everything else → Text.  Its richer vocabulary (email, phone, zipcode...)
exists but requires *manual* specification, so the automatic path never uses
it.  Per Figure 3, Text maps onto our Context-Specific.
"""

from __future__ import annotations

from repro.tabular.column import Column
from repro.tools.base import InferenceTool
from repro.tools.heuristics import date_fraction, float_fraction
from repro.types import FeatureType

#: Timestamp primitive: strict ISO parsing only.
TRANSMOGRIFAI_DATE_FORMATS = ("iso", "iso_ts")

_PRIMITIVE_THRESHOLD = 0.98


class TransmogrifAITool(InferenceTool):
    """Simulates TransmogrifAI's automatic primitive-type inference."""

    name = "transmogrifai"

    def infer_column(self, column: Column) -> FeatureType:
        if float_fraction(column) >= _PRIMITIVE_THRESHOLD:
            return FeatureType.NUMERIC
        if date_fraction(column, TRANSMOGRIFAI_DATE_FORMATS) >= _PRIMITIVE_THRESHOLD:
            return FeatureType.DATETIME
        return FeatureType.CONTEXT_SPECIFIC  # the Text primitive

    def covers_column(self, column: Column) -> bool:
        """Only Integer/Long/Double/Timestamp are real automatic inferences."""
        return self.infer_column(column) is not FeatureType.CONTEXT_SPECIFIC
