"""Rule-based resolution of Sherlock semantic types to feature types.

Appendix H: a semantic type mapping to several feature types is resolved
per-column with an ordered rule chain (small domain → Categorical, castable
→ Numeric, timestamp → Datetime, long values → Sentence, messy numbers →
Embedded Number, else the primary mapping).
"""

from __future__ import annotations

from repro.core.featurize import ColumnProfile
from repro.tabular.column import Column
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_embedded_number,
    try_parse_float,
)
from repro.tools.base import InferenceTool
from repro.tools.sherlock.model import SherlockModel
from repro.tools.sherlock.semantic_types import BY_NAME, SemanticType
from repro.types import FeatureType

_SMALL_DOMAIN = 20
_SENTENCE_MEAN_WORDS = 3.0


def resolve_feature_type(
    semantic_type: SemanticType, profile: ColumnProfile
) -> FeatureType:
    """Map one predicted semantic type to a single feature type."""
    candidates = semantic_type.labels
    if len(candidates) == 1:
        return candidates[0]

    n_distinct = profile.stats["num_distinct"]
    if FeatureType.CATEGORICAL in candidates and n_distinct < _SMALL_DOMAIN:
        return FeatureType.CATEGORICAL
    samples = [s for s in profile.samples if s]
    if FeatureType.NUMERIC in candidates and samples:
        if all(try_parse_float(s) is not None for s in samples):
            return FeatureType.NUMERIC
    if FeatureType.DATETIME in candidates and samples:
        if all(looks_like_datetime(s) for s in samples):
            return FeatureType.DATETIME
    if FeatureType.SENTENCE in candidates:
        if profile.stats["mean_word_count"] > _SENTENCE_MEAN_WORDS:
            return FeatureType.SENTENCE
    if FeatureType.EMBEDDED_NUMBER in candidates and samples:
        if any(looks_like_embedded_number(s) for s in samples):
            return FeatureType.EMBEDDED_NUMBER
    return candidates[0]


class SherlockTool(InferenceTool):
    """Sherlock + the rule-based mapping, as evaluated in Table 1."""

    name = "sherlock"

    def __init__(self, model: SherlockModel | None = None):
        self.model = model if model is not None else SherlockModel().fit()

    def infer_profile(self, profile: ColumnProfile) -> FeatureType:
        semantic_name = self.model.predict([profile])[0]
        return resolve_feature_type(BY_NAME[semantic_name], profile)

    def infer_profiles(self, profiles: list[ColumnProfile]) -> list[FeatureType]:
        """Batch prediction (one forest pass, then per-column resolution)."""
        semantic_names = self.model.predict(profiles)
        return [
            resolve_feature_type(BY_NAME[name], profile)
            for name, profile in zip(semantic_names, profiles)
        ]

    def infer_column(self, column: Column) -> FeatureType:
        from repro.core.featurize import profile_column

        return self.infer_profile(profile_column(column))
