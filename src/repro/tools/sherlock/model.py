"""The simulated Sherlock semantic-type model.

A Random Forest over base features trained on the distantly-supervised
synthetic corpus of :mod:`repro.tools.sherlock.generator` — it predicts one
of 78 *semantic* types for a column.  Its vocabulary mismatch with ML
feature types (not its raw quality) is what the paper's Sherlock rows
measure.
"""

from __future__ import annotations

import numpy as np

from repro.core.feature_sets import FeatureSetBuilder
from repro.core.featurize import ColumnProfile
from repro.ml.forest import RandomForestClassifier
from repro.tools.sherlock.generator import generate_sherlock_training_data


class SherlockModel:
    """Predicts Sherlock semantic types for column profiles."""

    def __init__(
        self,
        per_type: int = 20,
        n_estimators: int = 40,
        seed: int = 0,
    ):
        self.per_type = per_type
        self.n_estimators = n_estimators
        self.seed = seed
        self._builder = FeatureSetBuilder(parts=("stats", "name", "sample1"))
        self._forest: RandomForestClassifier | None = None

    def fit(self) -> "SherlockModel":
        """Train on the synthetic distantly-supervised corpus."""
        dataset, labels = generate_sherlock_training_data(
            per_type=self.per_type, seed=self.seed
        )
        X = self._builder.transform(dataset.profiles)
        self._forest = RandomForestClassifier(
            n_estimators=self.n_estimators, max_depth=25, random_state=self.seed
        )
        self._forest.fit(X, labels)
        return self

    def predict(self, profiles: list[ColumnProfile]) -> list[str]:
        if self._forest is None:
            raise RuntimeError("SherlockModel is not fitted; call fit() first")
        X = self._builder.transform(profiles)
        return self._forest.predict(X)

    def predict_proba(self, profiles: list[ColumnProfile]) -> np.ndarray:
        if self._forest is None:
            raise RuntimeError("SherlockModel is not fitted; call fit() first")
        X = self._builder.transform(profiles)
        return self._forest.predict_proba(X)

    @property
    def classes_(self) -> list[str]:
        if self._forest is None:
            raise RuntimeError("SherlockModel is not fitted; call fit() first")
        return list(self._forest.classes_)
