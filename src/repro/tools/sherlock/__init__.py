"""Simulated Sherlock: 78 semantic types, model, and feature-type mapping."""

from repro.tools.sherlock.generator import (
    generate_sherlock_training_data,
    sample_columns_of_type,
)
from repro.tools.sherlock.mapping import SherlockTool, resolve_feature_type
from repro.tools.sherlock.model import SherlockModel
from repro.tools.sherlock.semantic_types import (
    BY_NAME,
    SEMANTIC_TYPES,
    SemanticType,
    mapping_summary,
    types_mapped_to,
)

__all__ = [
    "BY_NAME",
    "SEMANTIC_TYPES",
    "SemanticType",
    "SherlockModel",
    "SherlockTool",
    "generate_sherlock_training_data",
    "mapping_summary",
    "resolve_feature_type",
    "sample_columns_of_type",
    "types_mapped_to",
]
