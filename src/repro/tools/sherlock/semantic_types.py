"""Sherlock's 78 semantic types and their mapping to our vocabulary.

Reproduces the paper's Appendix H / Table 19: each semantic type maps to one
or more of our nine feature types (55 map uniquely; the rest span 2-4
classes because a semantic type like *duration* can be Numeric, Categorical,
Datetime, or Sentence depending on the column's surface form).

``style`` drives the synthetic training-data generator for the simulated
Sherlock model: it describes the dominant surface form of that type's
columns in Sherlock's (distantly-supervised) training corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import FeatureType as FT


@dataclass(frozen=True)
class SemanticType:
    """One Sherlock semantic type with its feature-type mapping."""

    name: str
    labels: tuple[FT, ...]  # candidate feature types, primary first
    style: str  # value-surface style for the data generator


SEMANTIC_TYPES: tuple[SemanticType, ...] = (
    SemanticType("address", (FT.CONTEXT_SPECIFIC,), "address"),
    SemanticType("affiliate", (FT.CATEGORICAL,), "entity"),
    SemanticType("affiliation", (FT.CATEGORICAL,), "entity"),
    SemanticType("age", (FT.NUMERIC, FT.EMBEDDED_NUMBER, FT.CATEGORICAL), "number"),
    SemanticType("album", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("area", (FT.NUMERIC, FT.CATEGORICAL), "number"),
    SemanticType("artist", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("birth_date", (FT.DATETIME,), "date"),
    SemanticType("birth_place", (FT.CONTEXT_SPECIFIC,), "address"),
    SemanticType("brand", (FT.CATEGORICAL,), "entity"),
    SemanticType("capacity", (FT.NUMERIC, FT.EMBEDDED_NUMBER, FT.CATEGORICAL,
                              FT.SENTENCE), "number"),
    SemanticType("category", (FT.CATEGORICAL,), "entity"),
    SemanticType("city", (FT.CONTEXT_SPECIFIC,), "entity"),
    SemanticType("class", (FT.CATEGORICAL,), "code"),
    SemanticType("classification", (FT.CATEGORICAL,), "entity"),
    SemanticType("club", (FT.CATEGORICAL,), "code"),
    SemanticType("code", (FT.CATEGORICAL, FT.NOT_GENERALIZABLE), "code"),
    SemanticType("collection", (FT.CATEGORICAL, FT.LIST), "entity"),
    SemanticType("command", (FT.CATEGORICAL, FT.SENTENCE), "title"),
    SemanticType("company", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("component", (FT.CATEGORICAL,), "entity"),
    SemanticType("continent", (FT.CATEGORICAL,), "code"),
    SemanticType("country", (FT.CATEGORICAL,), "country"),
    SemanticType("county", (FT.CATEGORICAL,), "entity"),
    SemanticType("creator", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("credit", (FT.CATEGORICAL,), "smallint"),
    SemanticType("currency", (FT.CATEGORICAL,), "entity"),
    SemanticType("day", (FT.CATEGORICAL, FT.DATETIME), "weekday"),
    SemanticType("depth", (FT.NUMERIC, FT.EMBEDDED_NUMBER), "number"),
    SemanticType("description", (FT.SENTENCE,), "prose"),
    SemanticType("director", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("duration", (FT.NUMERIC, FT.CATEGORICAL, FT.DATETIME,
                              FT.SENTENCE), "number"),
    SemanticType("education", (FT.CATEGORICAL,), "entity"),
    SemanticType("elevation", (FT.NUMERIC,), "number"),
    SemanticType("family", (FT.CATEGORICAL,), "entity"),
    SemanticType("file_size", (FT.NUMERIC, FT.EMBEDDED_NUMBER), "number"),
    SemanticType("format", (FT.CATEGORICAL,), "entity"),
    SemanticType("gender", (FT.CATEGORICAL,), "gender"),
    SemanticType("genre", (FT.CATEGORICAL, FT.LIST), "genre"),
    SemanticType("grades", (FT.CATEGORICAL,), "code"),
    SemanticType("industry", (FT.CATEGORICAL,), "entity"),
    SemanticType("isbn", (FT.CATEGORICAL, FT.NOT_GENERALIZABLE), "code"),
    SemanticType("jockey", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("language", (FT.CATEGORICAL,), "entity"),
    SemanticType("location", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("manufacturer", (FT.CATEGORICAL,), "entity"),
    SemanticType("name", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("nationality", (FT.CATEGORICAL,), "entity"),
    SemanticType("notes", (FT.SENTENCE,), "prose"),
    SemanticType("operator", (FT.CATEGORICAL,), "entity"),
    SemanticType("order", (FT.CATEGORICAL, FT.CONTEXT_SPECIFIC), "smallint"),
    SemanticType("organisation", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("origin", (FT.CATEGORICAL,), "country"),
    SemanticType("owner", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("person", (FT.CONTEXT_SPECIFIC,), "person"),
    SemanticType("plays", (FT.NUMERIC, FT.EMBEDDED_NUMBER), "number"),
    SemanticType("position", (FT.NUMERIC, FT.CATEGORICAL), "smallint"),
    SemanticType("product", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("publisher", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("range", (FT.CATEGORICAL, FT.EMBEDDED_NUMBER), "entity"),
    SemanticType("rank", (FT.CATEGORICAL, FT.EMBEDDED_NUMBER), "smallint"),
    SemanticType("ranking", (FT.NUMERIC, FT.CATEGORICAL, FT.EMBEDDED_NUMBER),
                 "smallint"),
    SemanticType("region", (FT.CATEGORICAL,), "entity"),
    SemanticType("religion", (FT.CATEGORICAL,), "entity"),
    SemanticType("requirement", (FT.SENTENCE,), "prose"),
    SemanticType("result", (FT.NUMERIC, FT.CATEGORICAL, FT.SENTENCE), "code"),
    SemanticType("sales", (FT.NUMERIC, FT.EMBEDDED_NUMBER), "number"),
    SemanticType("service", (FT.CATEGORICAL,), "code"),
    SemanticType("sex", (FT.CATEGORICAL,), "gender"),
    SemanticType("species", (FT.CATEGORICAL,), "entity"),
    SemanticType("state", (FT.CATEGORICAL,), "state"),
    SemanticType("status", (FT.CATEGORICAL,), "entity"),
    SemanticType("symbol", (FT.CATEGORICAL,), "entity"),
    SemanticType("team", (FT.CATEGORICAL,), "code"),
    SemanticType("team_name", (FT.CONTEXT_SPECIFIC,), "title"),
    SemanticType("type", (FT.CATEGORICAL,), "entity"),
    SemanticType("weight", (FT.NUMERIC, FT.EMBEDDED_NUMBER), "number"),
    SemanticType("year", (FT.CATEGORICAL, FT.DATETIME), "year"),
)

BY_NAME: dict[str, SemanticType] = {st.name: st for st in SEMANTIC_TYPES}


def mapping_summary() -> dict[int, int]:
    """How many semantic types map to 1, 2, 3, 4 of our classes.

    The paper reports 55 / 18 / 3 / 2.
    """
    out: dict[int, int] = {}
    for st in SEMANTIC_TYPES:
        out[len(st.labels)] = out.get(len(st.labels), 0) + 1
    return out


def types_mapped_to(feature_type: FT) -> list[str]:
    """Semantic types that include ``feature_type`` among their candidates."""
    return [st.name for st in SEMANTIC_TYPES if feature_type in st.labels]
