"""Synthetic training data for the simulated Sherlock model.

Sherlock is distantly supervised on web-table columns whose headers match
its 78 semantic types.  We recreate that corpus shape: for each semantic
type, columns named after the type with values in the type's dominant
surface style.
"""

from __future__ import annotations

import numpy as np

from repro.core.featurize import ColumnProfile, LabeledDataset, profile_column
from repro.datagen import lexicon
from repro.datagen.colnames import render_name
from repro.tabular.column import Column
from repro.tools.sherlock.semantic_types import SEMANTIC_TYPES, SemanticType

Rng = np.random.Generator

_STYLE_DOMAINS = {
    "entity": lexicon.PRODUCT_TYPES + lexicon.DEPARTMENTS + lexicon.GENRES,
    "country": lexicon.COUNTRIES,
    "state": lexicon.STATE_CODES + lexicon.US_STATES,
    "gender": ["Male", "Female", "M", "F"],
    "genre": lexicon.GENRES,
    "weekday": lexicon.WEEKDAYS,
}


def _values_for_style(style: str, rng: Rng, n: int) -> list[str]:
    if style in _STYLE_DOMAINS:
        domain = _STYLE_DOMAINS[style]
        k = min(len(domain), int(rng.integers(2, 12)))
        chosen = list(rng.choice(domain, size=k, replace=False))
        return [str(chosen[int(rng.integers(k))]) for _ in range(n)]
    if style == "number":
        scale = 10 ** int(rng.integers(1, 6))
        return [f"{rng.uniform(0, scale):.1f}" for _ in range(n)]
    if style == "smallint":
        cap = int(rng.integers(2, 30))
        return [str(int(rng.integers(0, cap))) for _ in range(n)]
    if style == "year":
        start = int(rng.integers(1950, 2015))
        return [str(start + int(rng.integers(0, 15))) for _ in range(n)]
    if style == "date":
        return [
            f"{int(rng.integers(1950, 2024)):04d}-{int(rng.integers(1, 13)):02d}-"
            f"{int(rng.integers(1, 29)):02d}"
            for _ in range(n)
        ]
    if style == "code":
        width = int(rng.integers(2, 5))
        alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        domain = [
            "".join(alphabet[int(rng.integers(26))] for _ in range(width))
            for _ in range(int(rng.integers(3, 12)))
        ]
        return [domain[int(rng.integers(len(domain)))] for _ in range(n)]
    if style == "person":
        return [
            f"{lexicon.FIRST_NAMES[int(rng.integers(len(lexicon.FIRST_NAMES)))]} "
            f"{lexicon.LAST_NAMES[int(rng.integers(len(lexicon.LAST_NAMES)))]}"
            for _ in range(n)
        ]
    if style == "title":
        return [
            " ".join(
                lexicon.WORDS[int(rng.integers(len(lexicon.WORDS)))].capitalize()
                for _ in range(int(rng.integers(2, 5)))
            )
            for _ in range(n)
        ]
    if style == "address":
        return [
            f"{int(rng.integers(1, 9999))} "
            f"{lexicon.LAST_NAMES[int(rng.integers(len(lexicon.LAST_NAMES)))]} "
            f"{lexicon.STREET_SUFFIXES[int(rng.integers(len(lexicon.STREET_SUFFIXES)))]}"
            for _ in range(n)
        ]
    if style == "prose":
        return [
            " ".join(
                lexicon.WORDS[int(rng.integers(len(lexicon.WORDS)))]
                for _ in range(int(rng.integers(6, 25)))
            ).capitalize()
            + "."
            for _ in range(n)
        ]
    raise ValueError(f"unknown style: {style!r}")


def generate_sherlock_column(
    semantic_type: SemanticType, rng: Rng, n_rows: int
) -> ColumnProfile:
    """One training example (a profiled column) for a semantic type."""
    name = render_name(rng, semantic_type.name)
    cells = _values_for_style(semantic_type.style, rng, n_rows)
    column = Column(name, cells)
    profile = profile_column(column, source_file="sherlock", rng=rng)
    return profile


def generate_sherlock_training_data(
    per_type: int = 20, seed: int = 0, n_rows: int = 60
) -> tuple[LabeledDataset, list[str]]:
    """Profiles + semantic-type labels for all 78 types."""
    rng = np.random.default_rng(seed)
    dataset = LabeledDataset()
    labels: list[str] = []
    for semantic_type in SEMANTIC_TYPES:
        for _ in range(per_type):
            dataset.profiles.append(
                generate_sherlock_column(semantic_type, rng, n_rows)
            )
            labels.append(semantic_type.name)
    return dataset, labels


def sample_columns_of_type(
    type_name: str, count: int, seed: int = 0, n_rows: int = 60
) -> list[ColumnProfile]:
    """Weakly-labeled example columns of one semantic type.

    Used by the vocabulary-extension experiment (Table 11), which pulls
    Country/State examples from "the Sherlock data repository".
    """
    from repro.tools.sherlock.semantic_types import BY_NAME

    rng = np.random.default_rng(seed)
    semantic_type = BY_NAME[type_name]
    return [
        generate_sherlock_column(semantic_type, rng, n_rows) for _ in range(count)
    ]
