"""Baseline type-inference tools re-implemented per the paper's Section 3."""

from repro.tools.autogluon_tool import AutoGluonTool
from repro.tools.base import InferenceTool, column_from_cells
from repro.tools.pandas_tool import PandasTool
from repro.tools.rules import RuleBaselineTool
from repro.tools.sherlock import SherlockModel, SherlockTool
from repro.tools.tfdv_tool import TFDVTool
from repro.tools.transmogrifai_tool import TransmogrifAITool

#: The four open-source industrial tools of Table 1, by paper name.
INDUSTRIAL_TOOLS = {
    "tfdv": TFDVTool,
    "pandas": PandasTool,
    "transmogrifai": TransmogrifAITool,
    "autogluon": AutoGluonTool,
}

__all__ = [
    "AutoGluonTool",
    "INDUSTRIAL_TOOLS",
    "InferenceTool",
    "PandasTool",
    "RuleBaselineTool",
    "SherlockModel",
    "SherlockTool",
    "TFDVTool",
    "TransmogrifAITool",
    "column_from_cells",
]
