"""Common interface for the baseline type-inference tools.

Every tool maps a raw column to a feature type from *its own* vocabulary,
already translated to ours per the paper's Figure 3.  ``covers(column)``
says whether the column falls inside the tool's native vocabulary at all —
the "column coverage" notion of Table 4(A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.featurize import ColumnProfile
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import FeatureType


class InferenceTool(ABC):
    """A rule/syntax-based feature type inference tool."""

    name: str = "tool"

    @abstractmethod
    def infer_column(self, column: Column) -> FeatureType:
        """Predict the feature type of one raw column."""

    def covers_column(self, column: Column) -> bool:
        """Whether the column is inside the tool's native vocabulary."""
        return True

    def infer_table(self, table: Table) -> dict[str, FeatureType]:
        """Predict for every column of a table, keyed by column name."""
        return {column.name: self.infer_column(column) for column in table}

    def infer_profile(self, profile: ColumnProfile) -> FeatureType:
        """Predict from a base-featurized profile (rebuilds a column view).

        Tools operate on raw columns; for benchmark convenience profiles
        carry enough raw signal (samples + stats) for the heuristics.
        Subclasses that only need samples/stats may override this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} infers from raw columns; use infer_column"
        )


def column_from_cells(name: str, cells) -> Column:
    """Helper for tests/benchmarks: build a raw column in one call."""
    return Column(name, cells)
