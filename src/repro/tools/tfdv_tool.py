"""TFDV-style heuristic type inference (paper Section 3.1).

TensorFlow Data Validation infers feature types from descriptive statistics:
integer/float columns become numeric (it "wrongly calls many Categorical
features with integer values as Numeric, e.g. ZipCode"), string columns with
many words become natural-language text, a narrow set of date formats is
recognized, and remaining strings become categorical.
"""

from __future__ import annotations

from repro.tabular.column import Column
from repro.tools.base import InferenceTool
from repro.tools.heuristics import (
    date_fraction,
    float_fraction,
    mean_word_count,
)
from repro.types import FeatureType

#: TFDV's time/date domain detector only handles ISO-like formats.
TFDV_DATE_FORMATS = ("iso", "iso_ts", "us_slash")

_NUMERIC_THRESHOLD = 0.95
_DATE_THRESHOLD = 0.95
_TEXT_MEAN_WORDS = 3.0  # the word-count heuristic the paper calls out


class TFDVTool(InferenceTool):
    """Simulates TFDV's stats-driven feature type inference."""

    name = "tfdv"

    def infer_column(self, column: Column) -> FeatureType:
        if float_fraction(column) >= _NUMERIC_THRESHOLD:
            return FeatureType.NUMERIC
        if date_fraction(column, TFDV_DATE_FORMATS) >= _DATE_THRESHOLD:
            return FeatureType.DATETIME
        # "largely dependent upon the number of words in a string" — multi-
        # word categoricals and JSON blobs satisfy this too (low precision).
        if mean_word_count(column) >= _TEXT_MEAN_WORDS:
            return FeatureType.SENTENCE
        return FeatureType.CATEGORICAL

    def covers_column(self, column: Column) -> bool:
        # TFDV computes stats from present values; empty columns yield no
        # domain at all (part of why its Table 4 coverage is below total).
        return bool(column.non_missing())
