"""AutoGluon-Tabular-style type inference (paper Section 3.1).

AutoGluon classifies columns into numeric, categorical, date/time, text, or
"discard".  Unlike TFDV it demotes *low-cardinality* integer columns to
categorical, which is why its Categorical recall (0.534 in Table 1) sits
between TFDV's and the ML models'.  Columns with a single unique value or
no values are discarded — mapped to Not-Generalizable per Figure 3.
"""

from __future__ import annotations

from repro.tabular.column import Column
from repro.tools.base import InferenceTool
from repro.tools.heuristics import (
    date_fraction,
    float_fraction,
    mean_word_count,
    missing_fraction,
)
from repro.types import FeatureType

AUTOGLUON_DATE_FORMATS = ("iso", "iso_ts", "us_slash", "eu_slash", "long", "time")

_NUMERIC_THRESHOLD = 0.95
_DATE_THRESHOLD = 0.95
_TEXT_MEAN_WORDS = 3.0
_CATEGORICAL_UNIQUE_CAP = 20  # low-cardinality ints become categorical


class AutoGluonTool(InferenceTool):
    """Simulates AutoGluon-Tabular's column type classification."""

    name = "autogluon"

    def infer_column(self, column: Column) -> FeatureType:
        present = column.non_missing()
        n_distinct = len(column.distinct())
        if not present or n_distinct <= 1:
            return FeatureType.NOT_GENERALIZABLE  # the "discard" bucket
        if float_fraction(column) >= _NUMERIC_THRESHOLD:
            if n_distinct <= _CATEGORICAL_UNIQUE_CAP:
                return FeatureType.CATEGORICAL
            return FeatureType.NUMERIC
        if date_fraction(column, AUTOGLUON_DATE_FORMATS) >= _DATE_THRESHOLD:
            return FeatureType.DATETIME
        if mean_word_count(column) >= _TEXT_MEAN_WORDS:
            return FeatureType.SENTENCE
        return FeatureType.CATEGORICAL

    def covers_column(self, column: Column) -> bool:
        # Near-total coverage; columns that are almost entirely missing fall
        # outside the classifier (matching Table 4's slightly-below-total count).
        return missing_fraction(column) < 0.999 or bool(column.non_missing())
