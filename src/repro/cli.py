"""repro-infer: command-line feature type inference for CSV files.

Usage:
    repro-infer data.csv                    # train a default model, infer
    repro-infer data.csv --model rf.model   # reuse a saved model artifact
    repro-infer data.csv --save rf.model    # persist the trained model
    repro-infer data.csv --json             # machine-readable output

The first run trains the benchmark's Random Forest on a synthetic labeled
corpus (~a minute); save the artifact once and reuse it for instant startup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.models import RandomForestModel
from repro.core.persistence import load_model, save_model
from repro.core.pipeline import TypeInferencePipeline
from repro.datagen.corpus import generate_corpus
from repro.obs import (
    RunManifest,
    add_observability_flags,
    configure_telemetry,
    telemetry,
)
from repro.obs.export import write_json

DEFAULT_TRAIN_EXAMPLES = 1500


def _obtain_model(args) -> RandomForestModel:
    if args.model and os.path.exists(args.model):
        with telemetry.span("infer.load_model", path=args.model):
            return load_model(args.model)
    model = RandomForestModel(
        n_estimators=args.trees, random_state=args.seed
    )
    with telemetry.span(
        "infer.train", n_examples=args.train_examples, trees=args.trees
    ):
        corpus = generate_corpus(n_examples=args.train_examples, seed=args.seed)
        model.fit(corpus.dataset)
    return model


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-infer",
        description="Infer ML feature types for every column of a CSV file.",
    )
    parser.add_argument("csv", help="path to the CSV file")
    parser.add_argument(
        "--model", default=None,
        help="saved model artifact to load (trains a fresh model if absent)",
    )
    parser.add_argument(
        "--save", default=None, help="save the (trained) model artifact here"
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit JSON instead of a table")
    parser.add_argument("--trees", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-examples", type=int, default=DEFAULT_TRAIN_EXAMPLES
    )
    add_observability_flags(parser)
    args = parser.parse_args(argv)

    if not os.path.exists(args.csv):
        parser.error(f"no such file: {args.csv}")

    observing = configure_telemetry(args)
    manifest = RunManifest(
        command="repro-infer",
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=args.seed,
        scale=args.train_examples,
    )

    model = _obtain_model(args)
    if args.save:
        save_model(model, args.save)

    pipeline = TypeInferencePipeline(model)
    predictions = pipeline.predict_csv(args.csv)

    if observing:
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)

    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "column": p.column,
                        "feature_type": p.feature_type.value,
                        "confidence": round(p.confidence, 4),
                        "needs_review": p.needs_review,
                    }
                    for p in predictions
                ],
                indent=2,
            )
        )
        return 0

    width = max(len(p.column) for p in predictions)
    print(f"{'column':<{width}}  {'feature type':<18} {'confidence':<10} review")
    for p in predictions:
        flag = "YES" if p.needs_review else ""
        print(
            f"{p.column:<{width}}  {p.feature_type.value:<18} "
            f"{p.confidence:<10.2f} {flag}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
