"""repro-infer: command-line feature type inference for CSV files.

Usage:
    repro-infer data.csv                    # train a default model, infer
    repro-infer data.csv --model rf.model   # reuse a saved model artifact
    repro-infer data.csv --save rf.model    # persist the trained model
    repro-infer data.csv --json             # machine-readable output
    repro-infer data.csv --server URL       # delegate to a repro-serve node
    repro-infer big.csv --stream            # bounded-memory streaming profile

The first run trains the benchmark's Random Forest on a synthetic labeled
corpus (~a minute); save the artifact once and reuse it for instant startup —
or point ``--server`` at a running ``repro-serve`` instance, which keeps the
model resident and batches concurrent invocations (see docs/serving.md).

``--stream`` profiles the CSV through :mod:`repro.sketch` instead of
materializing it, so memory stays bounded by the chunk size and the
distinct-value cap regardless of file size (see docs/performance.md for the
memory model and the stats-parity contract).  With ``--server`` it streams
the upload from disk instead of buffering it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.models import RandomForestModel
from repro.core.persistence import load_model, model_fingerprint, save_model
from repro.core.pipeline import TypeInferencePipeline
from repro.faults import add_fault_flags, configure_faults
from repro.obs import (
    RunManifest,
    add_observability_flags,
    configure_telemetry,
    telemetry,
)
from repro.obs.export import write_json, write_spans_jsonl
from repro.core.featurize import ProfileError
from repro.tabular.csv_io import CSVReadError, decode_csv_bytes, load_csv_table

DEFAULT_TRAIN_EXAMPLES = 1500


def _obtain_model(args, manifest: RunManifest) -> RandomForestModel:
    if args.model and os.path.exists(args.model):
        with telemetry.span("infer.load_model", path=args.model):
            model = load_model(args.model)
        manifest.extra["model_fingerprint"] = model_fingerprint(args.model)
        return model
    model = RandomForestModel(
        n_estimators=args.trees, random_state=args.seed
    )
    with telemetry.span(
        "infer.train", n_examples=args.train_examples, trees=args.trees
    ):
        from repro.datagen.corpus import generate_corpus

        corpus = generate_corpus(n_examples=args.train_examples, seed=args.seed)
        model.fit(corpus.dataset)
    return model


def _render(predictions: list[dict], as_json: bool) -> str:
    """Render prediction dicts (the :meth:`ColumnPrediction.as_dict` shape).

    Shared by the local and ``--server`` paths so both modes print
    byte-identical output for the same predictions.
    """
    if as_json:
        return json.dumps(predictions, indent=2)
    width = max(len(p["column"]) for p in predictions)
    lines = [
        f"{'column':<{width}}  {'feature type':<18} {'confidence':<10} review"
    ]
    for p in predictions:
        flag = "YES" if p["needs_review"] else ""
        lines.append(
            f"{p['column']:<{width}}  {p['feature_type']:<18} "
            f"{p['confidence']:<10.2f} {flag}"
        )
    return "\n".join(lines)


def _infer_via_server(args, observing: bool) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    client = ServeClient(args.server)
    server_model = getattr(args, "server_model", None)
    table = os.path.splitext(os.path.basename(args.csv))[0]
    if not args.stream:
        try:
            with open(args.csv, "rb") as handle:
                text = decode_csv_bytes(handle.read())
        except (OSError, CSVReadError) as exc:
            print(
                f"repro-infer: cannot read {args.csv!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        # The client mints the request's traceparent inside its own
        # "client.request" span; that span (exported via --trace-out) is
        # the root the server's spans hang off.
        with telemetry.span("infer.server", table=table, server=args.server):
            if args.stream:
                # Stream the upload from disk; the server profiles it
                # chunk by chunk instead of materializing the table.
                response = client.infer_csv_file(
                    args.csv, table=table, deadline_ms=args.deadline_ms,
                    model=server_model,
                )
            else:
                response = client.infer_csv_text(
                    text, table=table, deadline_ms=args.deadline_ms,
                    model=server_model,
                )
    except OSError as exc:
        print(f"repro-infer: cannot read {args.csv!r}: {exc}", file=sys.stderr)
        return 2
    except ServeClientError as exc:
        print(f"repro-infer: {exc}", file=sys.stderr)
        return 3
    finally:
        if observing:
            _write_server_mode_telemetry(args)
    if response.get("degraded"):
        print(
            "repro-infer: warning: server answered in degraded (rule-based) "
            "mode; primary model not loaded yet",
            file=sys.stderr,
        )
    if response.get("trace_id"):
        telemetry.info("infer.trace", trace_id=response["trace_id"])
    print(_render(response["predictions"], args.as_json))
    return 0


def _write_server_mode_telemetry(args) -> None:
    if args.metrics_out:
        write_json(args.metrics_out, telemetry.metrics.snapshot())
    if getattr(args, "trace_out", None):
        write_spans_jsonl(args.trace_out, telemetry.spans)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-infer",
        description="Infer ML feature types for every column of a CSV file.",
    )
    parser.add_argument("csv", help="path to the CSV file")
    parser.add_argument(
        "--model", default=None,
        help="saved model artifact to load (trains a fresh model if absent)",
    )
    parser.add_argument(
        "--save", default=None, help="save the (trained) model artifact here"
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit JSON instead of a table")
    parser.add_argument("--trees", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-examples", type=int, default=DEFAULT_TRAIN_EXAMPLES
    )
    streaming = parser.add_argument_group("streaming")
    streaming.add_argument(
        "--stream", action="store_true",
        help="profile the CSV in one bounded-memory pass (repro.sketch) "
             "instead of materializing it; with --server, stream the upload "
             "from disk",
    )
    streaming.add_argument(
        "--chunk-rows", type=int, default=None, metavar="N",
        help="rows per streamed chunk (default 16384; implies --stream)",
    )
    streaming.add_argument(
        "--distinct-cap", type=int, default=None, metavar="N",
        help="distinct values tracked per column before the sketch spills "
             "(default 65536; implies --stream)",
    )
    server = parser.add_argument_group("server mode")
    server.add_argument(
        "--server", default=None, metavar="URL",
        help="delegate inference to a running repro-serve instance "
             "(e.g. http://127.0.0.1:8099); no local model is loaded",
    )
    server.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline when using --server",
    )
    server.add_argument(
        "--server-model", default=None, metavar="NAME",
        help="route to one registered model on the server (X-Repro-Model "
             "header; default: the server's default route)",
    )
    add_fault_flags(parser)
    add_observability_flags(parser)
    args = parser.parse_args(argv)

    if not os.path.exists(args.csv):
        parser.error(f"no such file: {args.csv}")
    if args.chunk_rows is not None or args.distinct_cap is not None:
        args.stream = True

    observing = configure_telemetry(args)
    configure_faults(args)

    if args.server:
        return _infer_via_server(args, observing)

    manifest = RunManifest(
        command="repro-infer",
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=args.seed,
        scale=args.train_examples,
    )

    # --stream profiles the file in one bounded pass; the default path
    # materializes the table.  Either way the model trains/loads *after*
    # ingestion, so an unreadable file never costs a model fit.
    profiles = None
    table = None
    try:
        if args.stream:
            from repro.sketch import profile_csv_stream
            from repro.sketch.column import SketchConfig

            config = SketchConfig(
                distinct_cap=args.distinct_cap
                if args.distinct_cap is not None
                else SketchConfig().distinct_cap
            )
            kwargs = {"config": config}
            if args.chunk_rows is not None:
                kwargs["chunk_rows"] = args.chunk_rows
            with telemetry.span("infer.stream_profile", path=args.csv):
                profiles = profile_csv_stream(args.csv, **kwargs)
        else:
            table = load_csv_table(args.csv)
    except (CSVReadError, ProfileError) as exc:
        print(f"repro-infer: {exc}", file=sys.stderr)
        return 2

    model = _obtain_model(args, manifest)
    if args.save:
        save_model(model, args.save)

    pipeline = TypeInferencePipeline(model)
    try:
        if profiles is not None:
            predictions = pipeline.predict_profiles(profiles)
        else:
            predictions = pipeline.predict_table(table)
    except ProfileError as exc:
        print(f"repro-infer: {exc}", file=sys.stderr)
        return 2

    if observing:
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.trace_out:
            write_spans_jsonl(args.trace_out, telemetry.spans)
        if args.manifest:
            manifest.finalize(telemetry)
            manifest.write(args.manifest)

    print(_render([p.as_dict() for p in predictions], args.as_json))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
