"""XML ingestion: repeated-record documents → Table.

Completes the paper's "any format (CSV, JSON, XML, etc.)" scope.  The common
tabular XML shape is a root element containing one child element per row,
whose children (or attributes) are the columns:

    <rows>
      <row><salary>1500</salary><zip>92092</zip></row>
      <row salary="3400" zip="78712"/>
    </rows>

Nested structure below a cell is serialized back to XML text — the same
Context-Specific blob treatment JSON nesting gets.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET

from repro.tabular.table import Table


def read_xml(path: str | os.PathLike, record_tag: str | None = None) -> Table:
    """Read a tabular XML file from disk."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_xml_text(text, name=name, record_tag=record_tag)


def read_xml_text(
    text: str, name: str = "", record_tag: str | None = None
) -> Table:
    """Parse tabular XML text into a Table.

    ``record_tag`` selects which child elements of the root are rows; when
    omitted, the most frequent child tag is used (the natural guess for
    ``<rows><row>...</row></rows>`` documents).
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValueError(f"invalid XML: {exc}") from exc

    records = list(root) if record_tag is None else root.findall(record_tag)
    if record_tag is None and records:
        counts: dict[str, int] = {}
        for child in records:
            counts[child.tag] = counts.get(child.tag, 0) + 1
        majority = max(counts, key=counts.get)
        records = [child for child in records if child.tag == majority]
    if not records:
        raise ValueError(
            "no row elements found"
            + (f" for record tag {record_tag!r}" if record_tag else "")
        )

    header: list[str] = []
    seen: set[str] = set()
    rows: list[dict[str, str | None]] = []
    for record in records:
        cells: dict[str, str | None] = {}
        for key, value in record.attrib.items():
            cells[key] = value
            if key not in seen:
                seen.add(key)
                header.append(key)
        for child in record:
            value = _cell_text(child)
            cells[child.tag] = value
            if child.tag not in seen:
                seen.add(child.tag)
                header.append(child.tag)
        rows.append(cells)
    if not header:
        raise ValueError("row elements carry no columns (no children/attributes)")

    return Table.from_rows(
        header, ([row.get(column) for column in header] for row in rows),
        name=name,
    )


def _cell_text(element: ET.Element) -> str | None:
    """A leaf's text, or serialized XML for nested structure."""
    if len(element) == 0:
        text = element.text
        if text is None:
            return None
        stripped = text.strip()
        return stripped if stripped else None
    return ET.tostring(element, encoding="unicode").strip()
