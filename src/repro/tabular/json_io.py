"""JSON ingestion: arrays-of-objects and JSON-lines → Table.

The paper scopes the task to "relational/tabular data, which can be stored
in any format (CSV, JSON, XML, etc.)".  This module covers the two common
JSON shapes AutoML platforms ingest; all values are stringified to the raw
cell representation the benchmark operates on (nested objects/arrays are
kept as their JSON text — exactly the Context-Specific blobs of Section 2.1).
"""

from __future__ import annotations

import json
import os

from repro.tabular.table import Table


def read_json(path: str | os.PathLike) -> Table:
    """Read a JSON file (array of objects, or ``{column: values}``)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_json_text(text, name=name)


def read_jsonl(path: str | os.PathLike) -> Table:
    """Read a JSON-lines file (one object per line)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_jsonl_text(text, name=name)


def read_json_text(text: str, name: str = "") -> Table:
    """Parse JSON text into a Table.

    Accepts an array of objects (``[{...}, {...}]``) or a column-major
    object (``{"col": [v, v, ...], ...}``).
    """
    payload = json.loads(text)
    if isinstance(payload, list):
        return _from_records(payload, name)
    if isinstance(payload, dict):
        if all(isinstance(v, list) for v in payload.values()):
            cells = {
                key: [_stringify(v) for v in values]
                for key, values in payload.items()
            }
            return Table.from_dict(cells, name=name)
        return _from_records([payload], name)
    raise ValueError(
        f"JSON root must be an array or object, got {type(payload).__name__}"
    )


def read_jsonl_text(text: str, name: str = "") -> Table:
    """Parse JSON-lines text (one object per non-empty line) into a Table."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON on line {line_number}: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(
                f"line {line_number}: expected an object, got "
                f"{type(record).__name__}"
            )
        records.append(record)
    if not records:
        raise ValueError("empty JSON-lines input")
    return _from_records(records, name)


def _from_records(records: list, name: str) -> Table:
    if not records:
        raise ValueError("empty JSON array")
    header: list[str] = []
    seen: set[str] = set()
    for record in records:
        if not isinstance(record, dict):
            raise ValueError(
                f"array elements must be objects, got {type(record).__name__}"
            )
        for key in record:
            if key not in seen:
                seen.add(key)
                header.append(key)
    rows = [
        [_stringify(record.get(key)) for key in header] for record in records
    ]
    return Table.from_rows(header, rows, name=name)


def _stringify(value) -> str | None:
    """JSON value → raw string cell (None for null; JSON text for nested)."""
    if value is None:
        return None
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    # nested objects/arrays stay as JSON text — Context-Specific blobs
    return json.dumps(value, separators=(",", ":"))
