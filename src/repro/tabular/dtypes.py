"""Syntactic datatype detection for raw string cells.

These helpers read *syntax*, not semantics — they answer questions like "does
this string parse as an integer?" or "does it look like a timestamp?".  The
semantic gap between these answers and ML feature types is exactly what the
paper benchmarks.
"""

from __future__ import annotations

import enum
import math
import re

_MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "#null!", "#n/a", "?", "-", "missing"}
)

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_BOOL_TOKENS = frozenset({"true", "false", "yes", "no", "t", "f"})

# Date/time formats recognized syntactically.  Deliberately *not* exhaustive:
# real tools miss formats too (the paper notes low Datetime recall for rule
# based tools), and our TFDV/TransmogrifAI simulators use narrower subsets.
_DATE_PATTERNS = [
    re.compile(r"^\d{4}[-/]\d{1,2}[-/]\d{1,2}([ T]\d{1,2}:\d{2}(:\d{2})?)?$"),
    re.compile(r"^\d{1,2}[-/]\d{1,2}[-/]\d{2,4}([ T]\d{1,2}:\d{2}(:\d{2})?)?$"),
    re.compile(r"^\d{1,2}:\d{2}(:\d{2})?\s*([ap]m)?$", re.IGNORECASE),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2},?\s+\d{4}$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?,?\s+\d{4}$",
        re.IGNORECASE,
    ),
    re.compile(r"^\d{1,2}hrs:\d{1,2}min(:\d{1,2}sec)?$", re.IGNORECASE),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*-\d{2,4}$",
        re.IGNORECASE,
    ),
    re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"),
]

# One alternation over all date formats: a single regex-engine call where
# `any(p.match(...) for p in _DATE_PATTERNS)` would pay up to eight.  Each
# branch keeps its own case-sensitivity via an inline (?i:...) group.
_DATE_COMBINED_RE = re.compile(
    "|".join(
        f"(?i:{pattern.pattern})"
        if pattern.flags & re.IGNORECASE
        else f"(?:{pattern.pattern})"
        for pattern in _DATE_PATTERNS
    )
)

# A bare 8-digit string like "19980112" *is* a date to a human who read the
# column name "BirthDate" but is just an integer syntactically.  This pattern
# is used only by the broad `looks_like_datetime` check (with plausibility
# bounds), not by the narrow tool simulators.
_COMPACT_DATE_RE = re.compile(r"^(19|20)\d{2}(0[1-9]|1[0-2])(0[1-9]|[12]\d|3[01])$")

_URL_RE = re.compile(
    r"^(https?|ftp)://"  # protocol
    r"([\w-]+\.)+[a-zA-Z]{2,}"  # sub-domain(s) + domain
    r"(:\d+)?(/[^\s]*)?$"  # optional port and path
)

_EMAIL_RE = re.compile(r"^[\w.+-]+@([\w-]+\.)+[a-zA-Z]{2,}$")

_LIST_RE = re.compile(r"^[^,;|]+([,;|][^,;|]+){1,}$")

_EMBEDDED_NUMBER_RE = re.compile(
    r"(^[^\d]{1,12}\d[\d.,]*$)"  # unit/symbol prefix then number: "USD 45", "$5,000"
    r"|(^\d[\d.,]*\s*[^\d\s][^\d]{0,12}$)"  # number then unit: "30 Mhz", "18.90%"
    r"|(^\d{1,3}(,\d{2,3})+(\.\d+)?$)"  # grouped digits: "5,00,000"
)


class SyntacticType(enum.Enum):
    """The attribute-type level vocabulary of databases/files."""

    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    STRING = "string"
    MISSING = "missing"


def is_missing(cell: str) -> bool:
    """True when a raw cell should be treated as missing/NaN."""
    return cell.strip().lower() in _MISSING_TOKENS


def try_parse_float(cell: str) -> float | None:
    """Parse a plain numeric literal; return ``None`` on failure.

    Rejects "messy" numbers ("USD 45", "5,00,000") — those are Embedded
    Numbers, not parseable numerics.
    """
    text = cell.strip()
    if not _FLOAT_RE.match(text):
        return None
    try:
        value = float(text)
    except ValueError:  # pragma: no cover - regex already guards this
        return None
    # digit-strings like "12345678e9012345" (hex ids) overflow to inf
    if not math.isfinite(value):
        return None
    return value


def is_integer_literal(cell: str) -> bool:
    """True for optionally signed digit strings ("005" counts)."""
    return bool(_INT_RE.match(cell.strip()))


def is_float_literal(cell: str) -> bool:
    """True for int or float literals (scientific notation allowed)."""
    return bool(_FLOAT_RE.match(cell.strip()))


def is_boolean_literal(cell: str) -> bool:
    """True for common boolean tokens (true/false/yes/no/t/f)."""
    return cell.strip().lower() in _BOOL_TOKENS


def looks_like_datetime(cell: str, allow_compact: bool = False) -> bool:
    """Syntactic date/timestamp check over a broad set of formats.

    ``allow_compact=True`` additionally accepts 8-digit YYYYMMDD strings,
    which only a semantics-aware check would dare to call dates.
    """
    text = cell.strip()
    if _DATE_COMBINED_RE.match(text):
        return True
    if allow_compact and _COMPACT_DATE_RE.match(text):
        return True
    return False


def looks_like_url(cell: str) -> bool:
    """True when the cell follows the URL standard (protocol://domain...)."""
    return bool(_URL_RE.match(cell.strip()))


def looks_like_email(cell: str) -> bool:
    """True for e-mail shaped values."""
    return bool(_EMAIL_RE.match(cell.strip()))


def looks_like_list(cell: str) -> bool:
    """True for delimiter-separated series of items (";", "|", ",")."""
    text = cell.strip()
    if is_float_literal(text) or looks_like_datetime(text):
        return False
    if _EMBEDDED_NUMBER_RE.match(text):
        return False
    return bool(_LIST_RE.match(text))


def looks_like_embedded_number(cell: str) -> bool:
    """True for numbers wrapped in units/symbols/grouping ("USD 45", "30 Mhz")."""
    text = cell.strip()
    if is_float_literal(text):
        return False
    return bool(_EMBEDDED_NUMBER_RE.match(text))


def has_digit(cell: str) -> bool:
    """True when the cell contains at least one digit character."""
    return any(ch.isdigit() for ch in cell)


def syntactic_type(cell: str | None) -> SyntacticType:
    """Classify one cell into the database-level attribute type vocabulary."""
    if cell is None or is_missing(cell):
        return SyntacticType.MISSING
    text = cell.strip()
    if is_integer_literal(text):
        return SyntacticType.INTEGER
    if is_float_literal(text):
        return SyntacticType.FLOAT
    if is_boolean_literal(text):
        return SyntacticType.BOOLEAN
    if looks_like_datetime(text):
        return SyntacticType.DATE
    return SyntacticType.STRING


def column_syntactic_type(
    cells: list[str | None], threshold: float = 0.95
) -> SyntacticType:
    """Majority syntactic type of a column.

    A column is INTEGER/FLOAT/... when at least ``threshold`` of its present
    cells have that type (integers may widen to float).  Otherwise STRING.
    Columns with no present cells are MISSING.
    """
    counts: dict[SyntacticType, int] = {}
    present = 0
    for cell in cells:
        stype = syntactic_type(cell)
        if stype is SyntacticType.MISSING:
            continue
        present += 1
        counts[stype] = counts.get(stype, 0) + 1
    if present == 0:
        return SyntacticType.MISSING
    n_int = counts.get(SyntacticType.INTEGER, 0)
    n_float = counts.get(SyntacticType.FLOAT, 0)
    if n_int >= threshold * present:
        return SyntacticType.INTEGER
    if n_int + n_float >= threshold * present:
        return SyntacticType.FLOAT
    for stype in (SyntacticType.BOOLEAN, SyntacticType.DATE):
        if counts.get(stype, 0) >= threshold * present:
            return stype
    return SyntacticType.STRING
