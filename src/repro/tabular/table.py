"""A minimal immutable-ish table of named columns (the raw CSV file view)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.tabular.column import Column


class Table:
    """An ordered collection of equal-length :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column], name: str = ""):
        self.name = name
        self._columns: list[Column] = list(columns)
        if self._columns:
            n_rows = len(self._columns[0])
            for col in self._columns:
                if len(col) != n_rows:
                    raise ValueError(
                        f"column {col.name!r} has {len(col)} rows, expected {n_rows}"
                    )
        names = [col.name for col in self._columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        self._by_name = {col.name: col for col in self._columns}

    @classmethod
    def from_rows(
        cls, header: list[str], rows: Iterable[list[str | None]], name: str = ""
    ) -> "Table":
        """Build a table from a header and row-major cells."""
        cells: list[list[str | None]] = [[] for _ in header]
        for row in rows:
            if len(row) != len(header):
                # Ragged rows happen in the wild; pad/truncate like a lenient
                # CSV consumer would.
                row = (list(row) + [None] * len(header))[: len(header)]
            for j, cell in enumerate(row):
                cells[j].append(cell)
        columns = [Column(col_name, col) for col_name, col in zip(header, cells)]
        return cls(columns, name=name)

    @classmethod
    def from_dict(cls, data: dict[str, list[str | None]], name: str = "") -> "Table":
        """Build a table from ``{column name: cells}``."""
        return cls([Column(key, val) for key, val in data.items()], name=name)

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        """Number of rows."""
        return len(self._columns[0]) if self._columns else 0

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.name!r}; "
                f"available: {self.column_names}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(name={self.name!r}, shape=({len(self)}, {self.n_columns}))"

    # -- accessors -----------------------------------------------------------
    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self._columns]

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    def row(self, index: int) -> list[str | None]:
        """One row as a list of cells (column order)."""
        return [col[index] for col in self._columns]

    def rows(self) -> Iterator[list[str | None]]:
        """Iterate over rows."""
        for i in range(len(self)):
            yield self.row(i)

    def select(self, names: list[str]) -> "Table":
        """A new table with only the named columns, in the given order."""
        return Table([self[name] for name in names], name=self.name)

    def drop(self, names: list[str]) -> "Table":
        """A new table without the named columns."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"cannot drop missing columns: {missing}")
        keep = [col for col in self._columns if col.name not in set(names)]
        return Table(keep, name=self.name)

    def with_column(self, column: Column) -> "Table":
        """A new table with ``column`` appended (or replaced, if name exists)."""
        cols = [col for col in self._columns if col.name != column.name]
        cols.append(column)
        return Table(cols, name=self.name)
