"""Minimal columnar data layer: the raw-CSV substrate of the benchmark."""

from repro.tabular.column import Column, MISSING_TOKENS
from repro.tabular.csv_io import (
    CSVReadError,
    load_csv_table,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.tabular.dtypes import (
    SyntacticType,
    column_syntactic_type,
    is_float_literal,
    is_integer_literal,
    is_missing,
    looks_like_datetime,
    looks_like_embedded_number,
    looks_like_list,
    looks_like_url,
    syntactic_type,
    try_parse_float,
)
from repro.tabular.table import Table

__all__ = [
    "CSVReadError",
    "Column",
    "MISSING_TOKENS",
    "SyntacticType",
    "Table",
    "column_syntactic_type",
    "is_float_literal",
    "is_integer_literal",
    "is_missing",
    "looks_like_datetime",
    "looks_like_embedded_number",
    "looks_like_list",
    "looks_like_url",
    "load_csv_table",
    "read_csv",
    "read_csv_text",
    "syntactic_type",
    "to_csv_text",
    "try_parse_float",
    "write_csv",
]
