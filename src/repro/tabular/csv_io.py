"""CSV reading/writing for :class:`~repro.tabular.table.Table`.

Built on the stdlib :mod:`csv` module but presenting the lenient semantics an
AutoML ingestion layer needs: missing-token normalization, ragged-row repair,
and simple delimiter sniffing.
"""

from __future__ import annotations

import csv
import io
import os

from repro.tabular.table import Table

_SNIFF_DELIMITERS = ",;\t|"


class CSVReadError(ValueError):
    """Raised when CSV input cannot be turned into a usable :class:`Table`
    (unreadable file, undecodable bytes, empty input, no data columns).

    Subclasses :class:`ValueError` so call sites that caught the old
    untyped errors keep working; new call sites (the ``repro-infer`` CLI,
    the ``repro.serve`` HTTP layer) catch this to produce clean
    exit codes / 400 responses instead of tracebacks.
    """


def read_csv(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """Read a CSV file from disk into a :class:`Table`."""
    with open(path, newline="", encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_csv_text(text, name=name, delimiter=delimiter)


def load_csv_table(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """:func:`read_csv` with every failure mode folded into
    :class:`CSVReadError`.

    This is the ingestion entry point shared by ``repro-infer`` and the
    ``repro.serve`` service: a missing file, a permission error, bytes that
    are not UTF-8, or an empty file all surface as one typed error with a
    human-readable message.
    """
    try:
        return read_csv(path, delimiter=delimiter)
    except OSError as exc:
        raise CSVReadError(
            f"cannot read {os.fspath(path)!r}: {exc.strerror or exc}"
        ) from exc
    except UnicodeDecodeError as exc:
        raise CSVReadError(
            f"{os.fspath(path)!r} is not UTF-8 text ({exc.reason} at byte "
            f"{exc.start}); is this really a CSV file?"
        ) from exc


def read_csv_text(text: str, name: str = "", delimiter: str | None = None) -> Table:
    """Parse CSV text into a :class:`Table` (first row is the header).

    Raises :class:`CSVReadError` on empty input.
    """
    if delimiter is None:
        delimiter = sniff_delimiter(text)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise CSVReadError("empty CSV input") from None
    header = _dedupe_header([h.strip() for h in header])
    return Table.from_rows(header, reader, name=name)


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a :class:`Table` to a CSV file (missing cells as empty)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def to_csv_text(table: Table) -> str:
    """Render a :class:`Table` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def sniff_delimiter(text: str) -> str:
    """Pick the delimiter whose count is most consistent across sample lines."""
    lines = [line for line in text.splitlines()[:20] if line.strip()]
    if not lines:
        return ","
    best, best_score = ",", -1.0
    for cand in _SNIFF_DELIMITERS:
        counts = [line.count(cand) for line in lines]
        if min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - 0.5 * spread
        if score > best_score:
            best, best_score = cand, score
    return best


def _dedupe_header(header: list[str]) -> list[str]:
    """Make duplicate header names unique by suffixing .1, .2, ..."""
    seen: dict[str, int] = {}
    out = []
    for name in header:
        if name in seen:
            seen[name] += 1
            out.append(f"{name}.{seen[name]}")
        else:
            seen[name] = 0
            out.append(name)
    return out


def _write(table: Table, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow(["" if cell is None else cell for cell in row])
