"""CSV reading/writing for :class:`~repro.tabular.table.Table`.

Built on the stdlib :mod:`csv` module but presenting the lenient semantics an
AutoML ingestion layer needs: missing-token normalization, ragged-row repair,
and simple delimiter sniffing.

Real-world CSVs are hostile: NUL bytes from binary junk, mixed/mislabeled
encodings, rows of varying arity, unbalanced quotes.  This module absorbs
them deterministically — replacement-decoding non-UTF-8 bytes, stripping
NULs, padding/truncating ragged rows — counting each repair in telemetry
(``csv.decode_replaced`` / ``csv.nul_bytes`` / ``csv.ragged_rows``), and
raises the typed :class:`CSVReadError` for input that cannot become a table
at all.  The mangled-CSV fuzz corpus under ``tests/data/mangled/`` holds
this contract: any bytes either parse or raise ``CSVReadError``, never an
untyped crash.
"""

from __future__ import annotations

import codecs
import csv
import io
import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.faults import FaultInjectedError, faults
from repro.obs import telemetry
from repro.tabular.table import Table

_SNIFF_DELIMITERS = ",;\t|"

#: Bytes pulled from the source per read in :func:`iter_csv_chunks`.
DEFAULT_IO_CHUNK_BYTES = 1 << 20

#: Rows gathered per :class:`CSVChunk`.
DEFAULT_CHUNK_ROWS = 16_384

#: Decoded characters buffered for delimiter sniffing before giving up on
#: seeing 20 complete lines (absurdly long first lines).  Below this cap
#: the sniff sees exactly the lines the whole-text path sees.
DEFAULT_SNIFF_CHARS = 1 << 20


class CSVReadError(ValueError):
    """Raised when CSV input cannot be turned into a usable :class:`Table`
    (unreadable file, empty input, no data columns, csv-level parse
    failure).

    Subclasses :class:`ValueError` so call sites that caught the old
    untyped errors keep working; new call sites (the ``repro-infer`` CLI,
    the ``repro.serve`` HTTP layer) catch this to produce clean
    exit codes / 400 responses instead of tracebacks.
    """


# BOM → declared codec, longest signature first (UTF-32-LE's BOM starts
# with UTF-16-LE's).
_BOM_CODECS = (
    (b"\xff\xfe\x00\x00", "utf-32-le"),
    (b"\x00\x00\xfe\xff", "utf-32-be"),
    (b"\xff\xfe", "utf-16-le"),
    (b"\xfe\xff", "utf-16-be"),
)


def decode_csv_bytes(data: bytes) -> str:
    """Raw file bytes → parseable text, absorbing encoding damage.

    Strict UTF-8 when possible; otherwise replacement decoding (each bad
    byte becomes U+FFFD, counted in ``csv.decode_replaced``).  NUL bytes —
    which the :mod:`csv` module rejects outright on some versions — are
    stripped and counted; a UTF-8 BOM is dropped.

    Bytes that *declare* an encoding via a UTF-16/32 BOM are decoded with
    that codec; if the declared codec then fails, the file is lying about
    itself and replacement-salvage would only yield NUL-riddled mojibake,
    so that raises :class:`CSVReadError` instead.
    """
    for bom, codec in _BOM_CODECS:
        if data.startswith(bom):
            try:
                text = data[len(bom):].decode(codec)
            except UnicodeDecodeError as exc:
                raise CSVReadError(
                    f"input declares {codec} via its BOM but is not valid "
                    f"{codec}: {exc}"
                ) from exc
            break
    else:
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            text = data.decode("utf-8", errors="replace")
            telemetry.count("csv.decode_replaced")
    if text.startswith("\ufeff"):
        text = text[1:]
    if "\x00" in text:
        telemetry.count("csv.nul_bytes", text.count("\x00"))
        text = text.replace("\x00", "")
    return text


def read_csv(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """Read a CSV file from disk into a :class:`Table`."""
    with open(path, "rb") as handle:
        data = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_csv_text(decode_csv_bytes(data), name=name, delimiter=delimiter)


def load_csv_table(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """:func:`read_csv` with every failure mode folded into
    :class:`CSVReadError`.

    This is the ingestion entry point shared by ``repro-infer`` and the
    ``repro.serve`` service: a missing file, a permission error, or an
    empty/unparseable file all surface as one typed error with a
    human-readable message.  (Undecodable bytes no longer fail — they are
    replacement-decoded; see :func:`decode_csv_bytes`.)
    """
    try:
        faults.point("csv.read", path=os.fspath(path))
        return read_csv(path, delimiter=delimiter)
    except OSError as exc:
        raise CSVReadError(
            f"cannot read {os.fspath(path)!r}: {exc.strerror or exc}"
        ) from exc
    except FaultInjectedError as exc:
        raise CSVReadError(f"cannot read {os.fspath(path)!r}: {exc}") from exc


def read_csv_text(text: str, name: str = "", delimiter: str | None = None) -> Table:
    """Parse CSV text into a :class:`Table` (first row is the header).

    Raises :class:`CSVReadError` on empty input or a csv-level parse
    failure (e.g. a field past the parser's size limit).  Rows whose arity
    differs from the header are padded/truncated and counted in
    ``csv.ragged_rows``.
    """
    if "\x00" in text:
        # Callers that bypass decode_csv_bytes (HTTP bodies) get the same
        # NUL tolerance as the file path.
        telemetry.count("csv.nul_bytes", text.count("\x00"))
        text = text.replace("\x00", "")
    if delimiter is None:
        delimiter = sniff_delimiter(text)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        raw_rows = list(reader)
    except csv.Error as exc:
        raise CSVReadError(f"malformed CSV: {exc}") from exc
    # The header is the first row with any content; files of blank lines
    # are as empty as zero-byte ones.
    header_index = next(
        (i for i, row in enumerate(raw_rows) if any(cell.strip() for cell in row)),
        None,
    )
    if header_index is None:
        raise CSVReadError("empty CSV input")
    header = _dedupe_header([h.strip() for h in raw_rows[header_index]])
    width = len(header)
    rows: list[list[str | None]] = []
    ragged = 0
    for row in raw_rows[header_index + 1:]:
        if len(row) != width:
            ragged += 1
            row = (list(row) + [None] * width)[:width]
        rows.append(row)
    if ragged:
        telemetry.count("csv.ragged_rows", ragged)
    return Table.from_rows(header, rows, name=name)


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a :class:`Table` to a CSV file (missing cells as empty)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def to_csv_text(table: Table) -> str:
    """Render a :class:`Table` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def sniff_delimiter(text: str) -> str:
    """Pick the delimiter whose count is most consistent across sample lines."""
    lines = [line for line in text.splitlines()[:20] if line.strip()]
    if not lines:
        return ","
    best, best_score = ",", -1.0
    for cand in _SNIFF_DELIMITERS:
        counts = [line.count(cand) for line in lines]
        if min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - 0.5 * spread
        if score > best_score:
            best, best_score = cand, score
    return best


def _dedupe_header(header: list[str]) -> list[str]:
    """Make duplicate header names unique by suffixing .1, .2, ..."""
    seen: dict[str, int] = {}
    out = []
    for name in header:
        if name in seen:
            seen[name] += 1
            out.append(f"{name}.{seen[name]}")
        else:
            seen[name] = 0
            out.append(name)
    return out


def _write(table: Table, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow(["" if cell is None else cell for cell in row])


# ---------------------------------------------------------------------------
# Incremental (chunked) reading
# ---------------------------------------------------------------------------


@dataclass
class CSVChunk:
    """One bounded slice of a CSV stream.

    Every chunk of a stream carries the same deduped ``header``; ``rows``
    are already padded/truncated to the header width (missing overflow
    cells are ``None``, exactly as :func:`read_csv_text` repairs them).
    """

    header: list[str]
    rows: list[list[str | None]] = field(default_factory=list)
    index: int = 0
    delimiter: str = ","

    @property
    def n_rows(self) -> int:
        return len(self.rows)


class _IncrementalDecoder:
    """Incremental twin of :func:`decode_csv_bytes`: same text, same
    telemetry, same :class:`CSVReadError` on a lying UTF-16/32 BOM —
    without ever holding the whole byte stream.

    The first (up to) four bytes are buffered to classify the BOM; UTF-8
    input decodes strictly until the first bad byte, then switches to a
    replacement decoder replaying the strict decoder's pending bytes, so
    the emitted text matches ``data.decode("utf-8", "replace")`` of the
    whole stream.
    """

    def __init__(self):
        self._pending = b""
        self._decoder = None
        self._strict_utf8 = False
        self._replaced = False
        self._codec = "utf-8"
        self._check_bom_char = True

    def feed(self, data: bytes, final: bool = False) -> str:
        if self._decoder is None:
            self._pending += data
            if len(self._pending) < 4 and not final:
                return ""
            data = self._pending
            self._pending = b""
            codec = "utf-8"
            for bom, candidate in _BOM_CODECS:
                if data.startswith(bom):
                    codec = candidate
                    data = data[len(bom):]
                    break
            self._codec = codec
            self._strict_utf8 = codec == "utf-8"
            self._decoder = codecs.getincrementaldecoder(codec)("strict")
        text = self._decode(data, final)
        if text and self._check_bom_char:
            # decode_csv_bytes drops one leading U+FEFF from the decoded
            # text (the UTF-8 BOM, or a doubled BOM after UTF-16/32).
            self._check_bom_char = False
            if text[0] == "\ufeff":
                text = text[1:]
        if "\x00" in text:
            telemetry.count("csv.nul_bytes", text.count("\x00"))
            text = text.replace("\x00", "")
        return text

    def _decode(self, data: bytes, final: bool) -> str:
        if self._strict_utf8 and not self._replaced:
            state = self._decoder.getstate()
            try:
                return self._decoder.decode(data, final)
            except UnicodeDecodeError:
                telemetry.count("csv.decode_replaced")
                self._replaced = True
                # Replay the strict decoder's undecoded tail through a
                # replacement decoder; all further input goes there too.
                buffered = state[0]
                self._decoder = codecs.getincrementaldecoder("utf-8")("replace")
                return self._decoder.decode(buffered + data, final)
        try:
            return self._decoder.decode(data, final)
        except UnicodeDecodeError as exc:
            if self._codec != "utf-8":
                raise CSVReadError(
                    f"input declares {self._codec} via its BOM but is not "
                    f"valid {self._codec}: {exc}"
                ) from exc
            raise  # pragma: no cover - utf-8 is handled above


class _LineAssembler:
    """Split a decoded character stream into lines exactly like iterating
    ``io.StringIO(text)``: ``\\n`` is the only terminator (kept on the
    line); the final line may lack one.  Lone ``\\r`` stays embedded, so
    the csv module sees the identical character stream — including the
    same "new-line character seen in unquoted field" errors.
    """

    def __init__(self):
        self._buffer = ""

    def feed(self, text: str) -> list[str]:
        buffered = self._buffer + text
        if "\n" not in buffered:
            self._buffer = buffered
            return []
        parts = buffered.split("\n")
        self._buffer = parts.pop()
        return [part + "\n" for part in parts]

    def flush(self) -> str | None:
        buffered, self._buffer = self._buffer, ""
        return buffered if buffered else None


def _byte_pieces(source, io_chunk_bytes: int, display: str) -> Iterator[bytes]:
    """Bounded byte pieces of a path / binary file / bytes iterable.

    Every read passes the ``csv.read_chunk`` fault-injection point; I/O
    and injected failures both surface as :class:`CSVReadError`, matching
    :func:`load_csv_table`'s contract for whole-file reads.
    """
    handle = None
    close_handle = False
    try:
        if isinstance(source, (str, os.PathLike)):
            path = os.fspath(source)
            try:
                faults.point("csv.read", path=path)
                handle = open(path, "rb")
            except OSError as exc:
                raise CSVReadError(
                    f"cannot read {path!r}: {exc.strerror or exc}"
                ) from exc
            except FaultInjectedError as exc:
                raise CSVReadError(f"cannot read {path!r}: {exc}") from exc
            close_handle = True
        elif hasattr(source, "read"):
            handle = source
        if handle is not None:
            index = 0
            while True:
                try:
                    faults.point("csv.read_chunk", source=display, index=index)
                    data = handle.read(io_chunk_bytes)
                except OSError as exc:
                    raise CSVReadError(
                        f"cannot read {display!r}: {exc.strerror or exc}"
                    ) from exc
                except FaultInjectedError as exc:
                    raise CSVReadError(
                        f"cannot read {display!r}: {exc}"
                    ) from exc
                if not data:
                    return
                yield bytes(data)
                index += 1
        else:
            for index, data in enumerate(source):
                try:
                    faults.point("csv.read_chunk", source=display, index=index)
                except FaultInjectedError as exc:
                    raise CSVReadError(
                        f"cannot read {display!r}: {exc}"
                    ) from exc
                if not isinstance(data, (bytes, bytearray, memoryview)):
                    raise CSVReadError(
                        f"byte source for {display!r} yielded "
                        f"{type(data).__name__}, expected bytes"
                    )
                if data:
                    yield bytes(data)
    finally:
        if close_handle and handle is not None:
            handle.close()


def iter_csv_chunks(
    source,
    name: str = "",
    delimiter: str | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    io_chunk_bytes: int = DEFAULT_IO_CHUNK_BYTES,
    sniff_chars: int = DEFAULT_SNIFF_CHARS,
) -> Iterator[CSVChunk]:
    """Incrementally parse a CSV source into :class:`CSVChunk` slices.

    ``source`` is a filesystem path, a binary file-like object, or an
    iterable of ``bytes``.  Decoding, delimiter sniffing, header
    handling, ragged-row repair, and error behavior all match the
    whole-file path (:func:`load_csv_table` / :func:`read_csv_text`):
    concatenating every chunk's rows reproduces ``read_csv(path)`` row for
    row, and inputs the batch reader rejects raise the same typed
    :class:`CSVReadError` here — just possibly later, once the offending
    bytes stream in.  Split multi-byte codepoints and quoted fields (or
    quoted newlines) spanning chunk boundaries are handled by the
    incremental decoder / the line assembler.

    At least one chunk is always yielded for a non-empty stream, so
    consumers learn the header even for a header-only file.  Memory is
    bounded by ``io_chunk_bytes`` + ``chunk_rows`` rows + ``sniff_chars``,
    independent of the stream length.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    if io_chunk_bytes < 1:
        raise ValueError("io_chunk_bytes must be positive")
    display = name or (
        os.path.splitext(os.path.basename(os.fspath(source)))[0]
        if isinstance(source, (str, os.PathLike))
        else "<stream>"
    )
    pieces = _byte_pieces(source, io_chunk_bytes, display)
    decoder = _IncrementalDecoder()
    exhausted = False

    # Delimiter sniffing needs the first 20 lines; buffer decoded text
    # until they are complete (21 splitlines entries guarantee 20 full
    # lines), EOF, or the sniff cap.  The buffered text is then replayed
    # into the row parser, so nothing is read twice.
    sniff_text = ""
    if delimiter is None:
        while len(sniff_text) < sniff_chars:
            data = next(pieces, None)
            if data is None:
                sniff_text += decoder.feed(b"", final=True)
                exhausted = True
                break
            sniff_text += decoder.feed(data)
            if len(sniff_text.splitlines()) > 20:
                break
        delimiter = sniff_delimiter(sniff_text)

    assembler = _LineAssembler()

    def lines() -> Iterator[str]:
        yield from assembler.feed(sniff_text)
        if not exhausted:
            for data in pieces:
                text = decoder.feed(data)
                if text:
                    yield from assembler.feed(text)
            tail = decoder.feed(b"", final=True)
            if tail:
                yield from assembler.feed(tail)
        last = assembler.flush()
        if last is not None:
            yield last

    reader = csv.reader(lines(), delimiter=delimiter)
    header: list[str] | None = None
    width = 0
    rows: list[list[str | None]] = []
    index = 0
    try:
        for row in reader:
            if header is None:
                if not any(cell.strip() for cell in row):
                    continue
                header = _dedupe_header([h.strip() for h in row])
                width = len(header)
                continue
            if len(row) != width:
                telemetry.count("csv.ragged_rows")
                row = (list(row) + [None] * width)[:width]
            rows.append(row)
            if len(rows) >= chunk_rows:
                yield CSVChunk(
                    header=header, rows=rows, index=index, delimiter=delimiter
                )
                index += 1
                rows = []
    except csv.Error as exc:
        raise CSVReadError(f"malformed CSV: {exc}") from exc
    if header is None:
        raise CSVReadError("empty CSV input")
    if rows or index == 0:
        yield CSVChunk(
            header=header, rows=rows, index=index, delimiter=delimiter
        )
