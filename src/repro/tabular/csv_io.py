"""CSV reading/writing for :class:`~repro.tabular.table.Table`.

Built on the stdlib :mod:`csv` module but presenting the lenient semantics an
AutoML ingestion layer needs: missing-token normalization, ragged-row repair,
and simple delimiter sniffing.

Real-world CSVs are hostile: NUL bytes from binary junk, mixed/mislabeled
encodings, rows of varying arity, unbalanced quotes.  This module absorbs
them deterministically — replacement-decoding non-UTF-8 bytes, stripping
NULs, padding/truncating ragged rows — counting each repair in telemetry
(``csv.decode_replaced`` / ``csv.nul_bytes`` / ``csv.ragged_rows``), and
raises the typed :class:`CSVReadError` for input that cannot become a table
at all.  The mangled-CSV fuzz corpus under ``tests/data/mangled/`` holds
this contract: any bytes either parse or raise ``CSVReadError``, never an
untyped crash.
"""

from __future__ import annotations

import csv
import io
import os

from repro.faults import FaultInjectedError, faults
from repro.obs import telemetry
from repro.tabular.table import Table

_SNIFF_DELIMITERS = ",;\t|"


class CSVReadError(ValueError):
    """Raised when CSV input cannot be turned into a usable :class:`Table`
    (unreadable file, empty input, no data columns, csv-level parse
    failure).

    Subclasses :class:`ValueError` so call sites that caught the old
    untyped errors keep working; new call sites (the ``repro-infer`` CLI,
    the ``repro.serve`` HTTP layer) catch this to produce clean
    exit codes / 400 responses instead of tracebacks.
    """


# BOM → declared codec, longest signature first (UTF-32-LE's BOM starts
# with UTF-16-LE's).
_BOM_CODECS = (
    (b"\xff\xfe\x00\x00", "utf-32-le"),
    (b"\x00\x00\xfe\xff", "utf-32-be"),
    (b"\xff\xfe", "utf-16-le"),
    (b"\xfe\xff", "utf-16-be"),
)


def decode_csv_bytes(data: bytes) -> str:
    """Raw file bytes → parseable text, absorbing encoding damage.

    Strict UTF-8 when possible; otherwise replacement decoding (each bad
    byte becomes U+FFFD, counted in ``csv.decode_replaced``).  NUL bytes —
    which the :mod:`csv` module rejects outright on some versions — are
    stripped and counted; a UTF-8 BOM is dropped.

    Bytes that *declare* an encoding via a UTF-16/32 BOM are decoded with
    that codec; if the declared codec then fails, the file is lying about
    itself and replacement-salvage would only yield NUL-riddled mojibake,
    so that raises :class:`CSVReadError` instead.
    """
    for bom, codec in _BOM_CODECS:
        if data.startswith(bom):
            try:
                text = data[len(bom):].decode(codec)
            except UnicodeDecodeError as exc:
                raise CSVReadError(
                    f"input declares {codec} via its BOM but is not valid "
                    f"{codec}: {exc}"
                ) from exc
            break
    else:
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            text = data.decode("utf-8", errors="replace")
            telemetry.count("csv.decode_replaced")
    if text.startswith("\ufeff"):
        text = text[1:]
    if "\x00" in text:
        telemetry.count("csv.nul_bytes", text.count("\x00"))
        text = text.replace("\x00", "")
    return text


def read_csv(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """Read a CSV file from disk into a :class:`Table`."""
    with open(path, "rb") as handle:
        data = handle.read()
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return read_csv_text(decode_csv_bytes(data), name=name, delimiter=delimiter)


def load_csv_table(path: str | os.PathLike, delimiter: str | None = None) -> Table:
    """:func:`read_csv` with every failure mode folded into
    :class:`CSVReadError`.

    This is the ingestion entry point shared by ``repro-infer`` and the
    ``repro.serve`` service: a missing file, a permission error, or an
    empty/unparseable file all surface as one typed error with a
    human-readable message.  (Undecodable bytes no longer fail — they are
    replacement-decoded; see :func:`decode_csv_bytes`.)
    """
    try:
        faults.point("csv.read", path=os.fspath(path))
        return read_csv(path, delimiter=delimiter)
    except OSError as exc:
        raise CSVReadError(
            f"cannot read {os.fspath(path)!r}: {exc.strerror or exc}"
        ) from exc
    except FaultInjectedError as exc:
        raise CSVReadError(f"cannot read {os.fspath(path)!r}: {exc}") from exc


def read_csv_text(text: str, name: str = "", delimiter: str | None = None) -> Table:
    """Parse CSV text into a :class:`Table` (first row is the header).

    Raises :class:`CSVReadError` on empty input or a csv-level parse
    failure (e.g. a field past the parser's size limit).  Rows whose arity
    differs from the header are padded/truncated and counted in
    ``csv.ragged_rows``.
    """
    if "\x00" in text:
        # Callers that bypass decode_csv_bytes (HTTP bodies) get the same
        # NUL tolerance as the file path.
        telemetry.count("csv.nul_bytes", text.count("\x00"))
        text = text.replace("\x00", "")
    if delimiter is None:
        delimiter = sniff_delimiter(text)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        raw_rows = list(reader)
    except csv.Error as exc:
        raise CSVReadError(f"malformed CSV: {exc}") from exc
    # The header is the first row with any content; files of blank lines
    # are as empty as zero-byte ones.
    header_index = next(
        (i for i, row in enumerate(raw_rows) if any(cell.strip() for cell in row)),
        None,
    )
    if header_index is None:
        raise CSVReadError("empty CSV input")
    header = _dedupe_header([h.strip() for h in raw_rows[header_index]])
    width = len(header)
    rows: list[list[str | None]] = []
    ragged = 0
    for row in raw_rows[header_index + 1:]:
        if len(row) != width:
            ragged += 1
            row = (list(row) + [None] * width)[:width]
        rows.append(row)
    if ragged:
        telemetry.count("csv.ragged_rows", ragged)
    return Table.from_rows(header, rows, name=name)


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a :class:`Table` to a CSV file (missing cells as empty)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def to_csv_text(table: Table) -> str:
    """Render a :class:`Table` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def sniff_delimiter(text: str) -> str:
    """Pick the delimiter whose count is most consistent across sample lines."""
    lines = [line for line in text.splitlines()[:20] if line.strip()]
    if not lines:
        return ","
    best, best_score = ",", -1.0
    for cand in _SNIFF_DELIMITERS:
        counts = [line.count(cand) for line in lines]
        if min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - 0.5 * spread
        if score > best_score:
            best, best_score = cand, score
    return best


def _dedupe_header(header: list[str]) -> list[str]:
    """Make duplicate header names unique by suffixing .1, .2, ..."""
    seen: dict[str, int] = {}
    out = []
    for name in header:
        if name in seen:
            seen[name] += 1
            out.append(f"{name}.{seen[name]}")
        else:
            seen[name] = 0
            out.append(name)
    return out


def _write(table: Table, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow(["" if cell is None else cell for cell in row])
