"""A named column of raw string cells.

The benchmark operates on raw CSV data, so a :class:`Column` stores *strings*
exactly as read from the file.  Typed views (floats, parse checks) are
provided as methods; missing cells are represented by ``None``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.tabular.dtypes import is_missing, try_parse_float

# Tokens treated as missing/NaN when reading raw data (mirrors what pandas
# treats as NA plus the spreadsheet artifacts the paper calls out, e.g. #NULL!).
MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "#null!", "#n/a", "?", "-", "missing"}
)


class Column:
    """A single raw column: a name plus an ordered list of string cells."""

    __slots__ = ("name", "_cells")

    def __init__(self, name: str, cells: Iterable[str | None]):
        self.name = name
        normalized: list[str | None] = []
        for cell in cells:
            if cell is None:
                normalized.append(None)
                continue
            text = str(cell)
            normalized.append(None if is_missing(text) else text)
        self._cells = normalized

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[str | None]:
        return iter(self._cells)

    def __getitem__(self, index: int) -> str | None:
        return self._cells[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column(name={self.name!r}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self._cells == other._cells

    # -- views ---------------------------------------------------------------
    @property
    def cells(self) -> Sequence[str | None]:
        """The raw cells (``None`` where the value is missing)."""
        return self._cells

    def non_missing(self) -> list[str]:
        """All present (non-missing) cell values, in order."""
        return [cell for cell in self._cells if cell is not None]

    def n_missing(self) -> int:
        """Number of missing cells."""
        return sum(1 for cell in self._cells if cell is None)

    def distinct(self) -> list[str]:
        """Distinct non-missing values in first-seen order."""
        seen: set[str] = set()
        out: list[str] = []
        for cell in self._cells:
            if cell is not None and cell not in seen:
                seen.add(cell)
                out.append(cell)
        return out

    def numeric_values(self) -> list[float]:
        """Cells that parse as plain floats (``int``/``float`` literals)."""
        values = []
        for cell in self.non_missing():
            parsed = try_parse_float(cell)
            if parsed is not None:
                values.append(parsed)
        return values

    def numeric_fraction(self) -> float:
        """Fraction of present cells that parse as plain numbers."""
        present = self.non_missing()
        if not present:
            return 0.0
        return len(self.numeric_values()) / len(present)

    def sample_distinct(self, k: int, rng) -> list[str]:
        """``k`` randomly sampled *distinct* non-missing values.

        Mirrors the paper's base featurization (Section 2.3), which samples
        five distinct values per column.  Fewer than ``k`` values are returned
        when the column has a smaller domain.
        """
        pool = self.distinct()
        if len(pool) <= k:
            return list(pool)
        index = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in sorted(index)]

    def head_distinct(self, k: int) -> list[str]:
        """First ``k`` distinct non-missing values (deterministic sampling)."""
        return self.distinct()[:k]
