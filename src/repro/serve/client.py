"""Stdlib (``http.client``) client for a running ``repro-serve`` instance.

Used by ``repro-infer --server URL`` (so the CLI can delegate to a resident
server instead of training/loading a model per invocation) and by
``scripts/bench_serve.py``.  No third-party HTTP dependency.

Connections are persistent: each calling thread keeps one HTTP/1.1
keep-alive connection open (``http.client.HTTPConnection``), so a loop of
requests pays the TCP handshake once instead of per call.  A reused
connection the server closed in the meantime (keep-alive timeout, restart)
is transparently replaced with one fresh attempt before the error
surfaces — counted as ``client.reconnect``, invisible to the retry policy.
:meth:`ServeClient.close` releases the sockets; :meth:`infer_pipelined`
goes further and pipelines many requests down one connection without
waiting for each response.

Transient failures are retried by default: 429/503 responses (honoring
``Retry-After``) and transport errors (connection refused/reset, a server
dropping the socket mid-response) back off exponentially with jitter,
bounded by :class:`RetryPolicy.total_deadline_s`.  Retrying ``POST
/v1/infer`` is safe because inference is pure — the server holds no
per-request state, so a replayed request returns the same predictions.
Every retry is counted (``client.retry`` / ``client.retry.<reason>``).
Pass ``retry=None`` to get single-shot requests (the queue-shedding
benchmarks need to see their 429s).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro.faults import FaultInjectedError, faults
from repro.obs import TraceContext, span_context, telemetry


class ServeClientError(RuntimeError):
    """A non-2xx response (or transport failure) from the server.

    ``status`` is the HTTP status code (0 on transport errors);
    ``payload`` is the decoded JSON error body when one was returned;
    ``transport`` is True when the failure happened below HTTP (connection
    refused/reset, socket closed mid-response, unparseable body).
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        payload: dict | None = None,
        transport: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.transport = transport

    @property
    def retry_after_s(self) -> float | None:
        value = self.payload.get("retry_after_s")
        return float(value) if value is not None else None


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient request failures.

    Delay before attempt ``n+1`` is ``base_delay_s * 2**(n-1)`` capped at
    ``max_delay_s``, stretched by up to ``jitter`` (uniform), and floored
    by the server's ``Retry-After`` when one was sent.  A retry that would
    overrun ``total_deadline_s`` (measured from the first attempt) is not
    made — the last error is raised instead.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    total_deadline_s: float = 30.0
    jitter: float = 0.25
    retry_statuses: tuple[int, ...] = (429, 503)


DEFAULT_RETRY = RetryPolicy()


class ServeClient:
    """Thin JSON-over-HTTP client bound to one server base URL.

    ``retry`` (default :data:`DEFAULT_RETRY`) governs transient-failure
    handling; ``rng`` seeds the backoff jitter (tests pass
    ``random.Random(0)`` for reproducible schedules).  ``keep_alive=False``
    reverts to one connection per request.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        rng: random.Random | None = None,
        keep_alive: bool = True,
    ):
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self.timeout_s = timeout_s
        self.retry = retry
        self.keep_alive = keep_alive
        self._rng = rng if rng is not None else random.Random()
        self._local = threading.local()
        self._conn_lock = threading.Lock()
        self._conns: set[http.client.HTTPConnection] = set()

    # -- inference -----------------------------------------------------------
    def infer_csv_text(
        self,
        text: str,
        table: str | None = None,
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        """POST CSV text to ``/v1/infer``; the decoded response dict.

        ``model`` routes to one registered model via ``X-Repro-Model``
        (None → the server's default route).
        """
        return self._post_infer(
            text.encode("utf-8"), "text/csv", table=table,
            deadline_ms=deadline_ms, model=model,
        )

    def infer_csv_file(
        self,
        path,
        table: str | None = None,
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        """Stream a CSV file to ``/v1/infer?stream=1`` without buffering it.

        The body is the file object itself (with an explicit
        ``Content-Length`` from its size), so client memory stays flat no
        matter how large the upload; the ``stream=1`` query asks the server
        to profile it chunk by chunk through ``repro.sketch`` instead of
        materializing the table.  Retries re-open the file, so the retry
        policy works unchanged.  ``OSError`` propagates for an unreadable
        path (same as ``open``).
        """
        path = os.fspath(path)
        if table is None:
            table = os.path.splitext(os.path.basename(path))[0]

        def body():
            handle = open(path, "rb")
            return handle, os.fstat(handle.fileno()).st_size

        return self._post_infer(
            body, "text/csv", table=table, deadline_ms=deadline_ms,
            stream=True, model=model,
        )

    def infer_columns(
        self,
        columns: list[dict],
        table: str = "",
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        """POST a JSON column payload: ``[{"name": ..., "cells": [...]}]``."""
        body = json.dumps({"table": table, "columns": columns}).encode("utf-8")
        return self._post_infer(
            body, "application/json", deadline_ms=deadline_ms, model=model,
        )

    def _post_infer(
        self,
        body,
        content_type: str,
        table: str | None = None,
        deadline_ms: float | None = None,
        stream: bool = False,
        model: str | None = None,
    ) -> dict:
        query = []
        if table:
            query.append(f"table={urllib.parse.quote(table)}")
        if deadline_ms is not None:
            query.append(f"deadline_ms={deadline_ms:g}")
        if stream:
            query.append("stream=1")
        path = "/v1/infer" + ("?" + "&".join(query) if query else "")
        return self._request("POST", path, body, content_type, model=model)

    # -- pipelining ----------------------------------------------------------
    def infer_pipelined(
        self,
        jobs: list[tuple[str, str]],
        model: str | None = None,
        depth: int = 8,
        deadline_ms: float | None = None,
    ) -> list[dict]:
        """Pipeline many CSV inferences down one persistent connection.

        ``jobs`` is ``[(table_name, csv_text), ...]``; up to ``depth``
        requests are written ahead of the responses, so the connection's
        round-trip latency is paid once for the window instead of once per
        request.  Responses come back in request order (HTTP/1.1 pipelining
        semantics; ``http.client`` cannot do this, so the requests are
        written to a raw socket and the responses parsed off one buffered
        reader).  Returns the decoded response dicts in ``jobs`` order.

        No retry: a transport failure mid-pipeline raises
        :class:`ServeClientError` (callers that need at-least-once replay
        the whole window — inference is pure).
        """
        if not jobs:
            return []
        depth = max(1, int(depth))
        wire: list[bytes] = []
        for table, text in jobs:
            body = text.encode("utf-8")
            query = f"?table={urllib.parse.quote(table)}" if table else ""
            if deadline_ms is not None:
                query += ("&" if query else "?") + f"deadline_ms={deadline_ms:g}"
            context = TraceContext.generate()
            head = (
                f"POST /v1/infer{query} HTTP/1.1\r\n"
                f"Host: {self._host}:{self._port}\r\n"
                "Content-Type: text/csv\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"traceparent: {context.to_traceparent()}\r\n"
                + (f"X-Repro-Model: {model}\r\n" if model else "")
                + "\r\n"
            ).encode("ascii")
            wire.append(head + body)
        results: list[dict] = []
        with telemetry.span(
            "client.pipeline", n_requests=len(jobs), depth=depth
        ):
            sock = socket.create_connection(
                (self._host, self._port), timeout=self.timeout_s
            )
            try:
                reader = sock.makefile("rb")
                sent = received = 0
                while received < len(wire):
                    while sent < len(wire) and sent - received < depth:
                        sock.sendall(wire[sent])
                        sent += 1
                    status, headers, raw = _read_http_response(reader)
                    if not 200 <= status < 300:
                        try:
                            payload = json.loads(raw.decode("utf-8"))
                        except (ValueError, UnicodeDecodeError):
                            payload = {"error": raw.decode("utf-8", "replace")}
                        raise ServeClientError(
                            f"pipelined POST /v1/infer -> HTTP {status}: "
                            f"{payload.get('error', 'unknown error')}",
                            status=status, payload=payload,
                        )
                    results.append(json.loads(raw.decode("utf-8")))
                    received += 1
                    if (
                        headers.get("connection", "").lower() == "close"
                        and received < len(wire)
                    ):
                        raise ServeClientError(
                            "server closed a pipelined connection with "
                            f"{len(wire) - received} responses outstanding",
                            status=0, transport=True,
                        )
            except (OSError, ValueError) as exc:
                raise ServeClientError(
                    f"pipelined POST /v1/infer -> {type(exc).__name__}: {exc}",
                    status=0, transport=True,
                ) from exc
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
        telemetry.count("client.pipelined", len(results))
        return results

    # -- registry ------------------------------------------------------------
    def models(self) -> dict:
        """``GET /v1/models``: the server's routing table."""
        return self._request("GET", "/v1/models")

    def swap_model(
        self,
        name: str,
        path,
        wait: str = "flipped",
        timeout_s: float = 120.0,
    ) -> dict:
        """Hot-swap one registered model to the artifact at ``path``.

        ``wait`` mirrors the endpoint: ``"flipped"`` (default) blocks until
        the route points at the new artifact, ``"drained"`` until the old
        one has fully drained, ``"none"`` returns the 202 immediately.
        """
        body = json.dumps({
            "path": os.fspath(path), "wait": wait, "timeout_s": timeout_s,
        }).encode("utf-8")
        quoted = urllib.parse.quote(name, safe="")
        return self._request(
            "POST", f"/v1/models/{quoted}/swap", body, "application/json"
        )

    # -- status --------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        try:
            status, _, raw = self._perform("GET", "/metrics", None, {})
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"GET /metrics -> {exc}", status=0, transport=True
            ) from exc
        if status != 200:
            raise ServeClientError(
                f"GET /metrics -> HTTP {status}", status=status
            )
        return raw.decode("utf-8")

    def wait_ready(self, timeout_s: float = 60.0, poll_s: float = 0.2) -> dict:
        """Poll ``/healthz`` until the primary model is resident.

        Polls single-shot (no per-request retry — the outer loop *is* the
        retry).  Returns the final health dict; raises
        :class:`ServeClientError` when the model load failed or the timeout
        passes.
        """
        end = time.monotonic() + timeout_s
        health: dict = {}
        while time.monotonic() < end:
            try:
                health = self._request_once("GET", "/healthz")
            except ServeClientError:
                health = {}
            else:
                if health.get("ready"):
                    return health
                if health.get("model", {}).get("state") == "failed":
                    raise ServeClientError(
                        f"model load failed: {health['model'].get('error')}",
                        status=500, payload=health,
                    )
            time.sleep(poll_s)
        raise ServeClientError(
            f"server not ready after {timeout_s:.0f}s "
            f"(last health: {health or 'unreachable'})"
        )

    # -- connection management ----------------------------------------------
    def close(self) -> None:
        """Close every persistent connection this client has opened.

        Safe to call from any thread; a later request simply reconnects.
        """
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's persistent connection; ``reused`` is False when
        it was just created (its first request cannot be keep-alive-stale).
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        self._local.conn = conn
        with self._conn_lock:
            self._conns.add(conn)
        return conn, False

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._conn_lock:
            self._conns.discard(conn)
        try:
            conn.close()
        except OSError:
            pass

    def _perform(
        self, method: str, path: str, data, headers: dict
    ) -> tuple[int, dict, bytes]:
        """One request over the persistent connection → (status, headers,
        body).

        A transport failure on a *reused* keep-alive connection gets one
        transparent fresh-connection attempt (the server may have closed
        the idle socket between requests — routine, not an error) when the
        body is replayable; file-object bodies are consumed by the failed
        send, so their replay is left to the outer retry policy, which
        re-opens the file.
        """
        replayable = data is None or isinstance(data, (bytes, bytearray))
        for attempt in (0, 1):
            conn, reused = self._connection()
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                if reused and replayable and attempt == 0:
                    telemetry.count("client.reconnect")
                    continue
                raise
            resp_headers = {
                key.lower(): value for key, value in response.getheaders()
            }
            if response.will_close or not self.keep_alive:
                self._drop_connection()
            return response.status, resp_headers, raw
        raise AssertionError("unreachable")  # pragma: no cover

    # -- transport -----------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
        model: str | None = None,
    ) -> dict:
        # Every request gets a trace context.  With telemetry enabled the
        # client span itself is recorded and becomes the root the server's
        # spans hang off; disabled, a context is still minted so the server
        # side of the trace is stitched under one trace_id either way.
        with telemetry.span(
            "client.request", method=method, path=path.split("?", 1)[0]
        ) as span:
            context = span_context(span) or TraceContext.generate()
            return self._request_with_retry(
                method, path, body, content_type, context, model
            )

    def _request_with_retry(
        self,
        method: str,
        path: str,
        body: bytes | None,
        content_type: str | None,
        context: TraceContext,
        model: str | None = None,
    ) -> dict:
        policy = self.retry
        if policy is None:
            return self._request_once(
                method, path, body, content_type, context, model
            )
        start = time.monotonic()
        attempt = 1
        while True:
            try:
                return self._request_once(
                    method, path, body, content_type, context, model
                )
            except ServeClientError as exc:
                reason = self._retry_reason(exc, policy)
                if reason is None or attempt >= policy.max_attempts:
                    raise
                delay = min(
                    policy.max_delay_s,
                    policy.base_delay_s * 2 ** (attempt - 1),
                )
                delay *= 1.0 + policy.jitter * self._rng.random()
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                if time.monotonic() + delay > start + policy.total_deadline_s:
                    raise
                telemetry.count("client.retry")
                telemetry.count(f"client.retry.{reason}")
                telemetry.info(
                    "client.retrying", method=method, path=path,
                    attempt=attempt, delay_s=round(delay, 3), reason=reason,
                    trace_id=context.trace_id,
                )
                time.sleep(delay)
                attempt += 1

    @staticmethod
    def _retry_reason(exc: ServeClientError, policy: RetryPolicy) -> str | None:
        """Why this error is retryable, or None when it is not."""
        if exc.transport:
            return "transport"
        if exc.status in policy.retry_statuses:
            return f"status_{exc.status}"
        return None

    def _request_once(
        self,
        method: str,
        path: str,
        body=None,
        content_type: str | None = None,
        context: TraceContext | None = None,
        model: str | None = None,
    ) -> dict:
        try:
            faults.point("client.request", method=method, path=path)
        except FaultInjectedError as exc:
            # Client-side transport chaos: an injected strike looks like any
            # other connection failure, so the retry loop handles it.
            raise ServeClientError(
                f"{method} {path} -> injected fault: {exc}",
                status=0, transport=True,
            ) from exc
        # A callable body yields a fresh (file object, length) per attempt
        # (the streaming-upload path); http.client streams the file as-is
        # once Content-Length is set explicitly.
        opened = None
        headers: dict = {}
        if callable(body):
            opened, length = body()
            data = opened
            headers["Content-Length"] = str(length)
        else:
            data = body
        if content_type:
            headers["Content-Type"] = content_type
        if context is not None:
            headers["traceparent"] = context.to_traceparent()
        if model:
            headers["X-Repro-Model"] = model
        try:
            status, resp_headers, raw = self._perform(
                method, path, data, headers
            )
        except (OSError, http.client.HTTPException) as exc:
            # Connection refused/reset, socket closed mid-response
            # (RemoteDisconnected is a ConnectionResetError).
            raise ServeClientError(
                f"{method} {path} -> {type(exc).__name__}: {exc}",
                status=0, transport=True,
            ) from exc
        finally:
            if opened is not None:
                opened.close()
        if 200 <= status < 300:
            try:
                return json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ServeClientError(
                    f"{method} {path} -> unparseable response body: {exc}",
                    status=0, transport=True,
                ) from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = {"error": raw.decode("utf-8", "replace")}
        retry_after = resp_headers.get("retry-after")
        if retry_after is not None and "retry_after_s" not in payload:
            try:
                payload["retry_after_s"] = float(retry_after)
            except ValueError:
                pass
        raise ServeClientError(
            f"{method} {path} -> HTTP {status}: "
            f"{payload.get('error', 'unknown error')}",
            status=status, payload=payload,
        )


def _read_http_response(reader) -> tuple[int, dict, bytes]:
    """Parse one HTTP/1.1 response off a buffered reader (pipelining path).

    ``http.client`` refuses to send a second request before the first
    response is read, so the pipelined path writes raw requests and parses
    responses here — status line, headers to the blank line, then exactly
    ``Content-Length`` body bytes, leaving the reader positioned at the
    next response.
    """
    line = reader.readline()
    if not line:
        raise ServeClientError(
            "connection closed before a pipelined response",
            status=0, transport=True,
        )
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServeClientError(
            f"malformed pipelined status line: {line!r}",
            status=0, transport=True,
        )
    status = int(parts[1])
    headers: dict = {}
    while True:
        line = reader.readline()
        if not line:
            raise ServeClientError(
                "connection closed inside pipelined response headers",
                status=0, transport=True,
            )
        if line in (b"\r\n", b"\n"):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    raw = reader.read(length) if length else b""
    if len(raw) < length:
        raise ServeClientError(
            f"pipelined response truncated ({len(raw)}/{length} bytes)",
            status=0, transport=True,
        )
    return status, headers, raw
