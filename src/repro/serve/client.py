"""Stdlib (``urllib``) client for a running ``repro-serve`` instance.

Used by ``repro-infer --server URL`` (so the CLI can delegate to a resident
server instead of training/loading a model per invocation) and by
``scripts/bench_serve.py``.  No third-party HTTP dependency.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request


class ServeClientError(RuntimeError):
    """A non-2xx response (or transport failure) from the server.

    ``status`` is the HTTP status code (0 on transport errors);
    ``payload`` is the decoded JSON error body when one was returned.
    """

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}

    @property
    def retry_after_s(self) -> float | None:
        value = self.payload.get("retry_after_s")
        return float(value) if value is not None else None


class ServeClient:
    """Thin JSON-over-HTTP client bound to one server base URL."""

    def __init__(self, base_url: str, timeout_s: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- inference -----------------------------------------------------------
    def infer_csv_text(
        self,
        text: str,
        table: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """POST CSV text to ``/v1/infer``; the decoded response dict."""
        return self._post_infer(
            text.encode("utf-8"), "text/csv", table=table,
            deadline_ms=deadline_ms,
        )

    def infer_columns(
        self,
        columns: list[dict],
        table: str = "",
        deadline_ms: float | None = None,
    ) -> dict:
        """POST a JSON column payload: ``[{"name": ..., "cells": [...]}]``."""
        body = json.dumps({"table": table, "columns": columns}).encode("utf-8")
        return self._post_infer(
            body, "application/json", deadline_ms=deadline_ms
        )

    def _post_infer(
        self,
        body: bytes,
        content_type: str,
        table: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        query = []
        if table:
            query.append(f"table={urllib.parse.quote(table)}")
        if deadline_ms is not None:
            query.append(f"deadline_ms={deadline_ms:g}")
        path = "/v1/infer" + ("?" + "&".join(query) if query else "")
        return self._request("POST", path, body, content_type)

    # -- status --------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def wait_ready(self, timeout_s: float = 60.0, poll_s: float = 0.2) -> dict:
        """Poll ``/healthz`` until the primary model is resident.

        Returns the final health dict; raises :class:`ServeClientError`
        when the model load failed or the timeout passes.
        """
        end = time.monotonic() + timeout_s
        health: dict = {}
        while time.monotonic() < end:
            try:
                health = self.healthz()
            except ServeClientError:
                health = {}
            else:
                if health.get("ready"):
                    return health
                if health.get("model", {}).get("state") == "failed":
                    raise ServeClientError(
                        f"model load failed: {health['model'].get('error')}",
                        status=500, payload=health,
                    )
            time.sleep(poll_s)
        raise ServeClientError(
            f"server not ready after {timeout_s:.0f}s "
            f"(last health: {health or 'unreachable'})"
        )

    # -- transport -----------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
    ) -> dict:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if content_type:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            raise ServeClientError(
                f"{method} {path} -> HTTP {exc.code}: "
                f"{payload.get('error', 'unknown error')}",
                status=exc.code, payload=payload,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"{method} {path} -> {exc.reason}", status=0
            ) from exc
