"""Stdlib (``urllib``) client for a running ``repro-serve`` instance.

Used by ``repro-infer --server URL`` (so the CLI can delegate to a resident
server instead of training/loading a model per invocation) and by
``scripts/bench_serve.py``.  No third-party HTTP dependency.

Transient failures are retried by default: 429/503 responses (honoring
``Retry-After``) and transport errors (connection refused/reset, a server
dropping the socket mid-response) back off exponentially with jitter,
bounded by :class:`RetryPolicy.total_deadline_s`.  Retrying ``POST
/v1/infer`` is safe because inference is pure — the server holds no
per-request state, so a replayed request returns the same predictions.
Every retry is counted (``client.retry`` / ``client.retry.<reason>``).
Pass ``retry=None`` to get single-shot requests (the queue-shedding
benchmarks need to see their 429s).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass

from repro.faults import FaultInjectedError, faults
from repro.obs import TraceContext, span_context, telemetry


class ServeClientError(RuntimeError):
    """A non-2xx response (or transport failure) from the server.

    ``status`` is the HTTP status code (0 on transport errors);
    ``payload`` is the decoded JSON error body when one was returned;
    ``transport`` is True when the failure happened below HTTP (connection
    refused/reset, socket closed mid-response, unparseable body).
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        payload: dict | None = None,
        transport: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.transport = transport

    @property
    def retry_after_s(self) -> float | None:
        value = self.payload.get("retry_after_s")
        return float(value) if value is not None else None


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient request failures.

    Delay before attempt ``n+1`` is ``base_delay_s * 2**(n-1)`` capped at
    ``max_delay_s``, stretched by up to ``jitter`` (uniform), and floored
    by the server's ``Retry-After`` when one was sent.  A retry that would
    overrun ``total_deadline_s`` (measured from the first attempt) is not
    made — the last error is raised instead.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    total_deadline_s: float = 30.0
    jitter: float = 0.25
    retry_statuses: tuple[int, ...] = (429, 503)


DEFAULT_RETRY = RetryPolicy()


class ServeClient:
    """Thin JSON-over-HTTP client bound to one server base URL.

    ``retry`` (default :data:`DEFAULT_RETRY`) governs transient-failure
    handling; ``rng`` seeds the backoff jitter (tests pass
    ``random.Random(0)`` for reproducible schedules).
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        rng: random.Random | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry
        self._rng = rng if rng is not None else random.Random()

    # -- inference -----------------------------------------------------------
    def infer_csv_text(
        self,
        text: str,
        table: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """POST CSV text to ``/v1/infer``; the decoded response dict."""
        return self._post_infer(
            text.encode("utf-8"), "text/csv", table=table,
            deadline_ms=deadline_ms,
        )

    def infer_csv_file(
        self,
        path,
        table: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """Stream a CSV file to ``/v1/infer?stream=1`` without buffering it.

        The body is the file object itself (with an explicit
        ``Content-Length`` from its size), so client memory stays flat no
        matter how large the upload; the ``stream=1`` query asks the server
        to profile it chunk by chunk through ``repro.sketch`` instead of
        materializing the table.  Retries re-open the file, so the retry
        policy works unchanged.  ``OSError`` propagates for an unreadable
        path (same as ``open``).
        """
        path = os.fspath(path)
        if table is None:
            table = os.path.splitext(os.path.basename(path))[0]

        def body():
            handle = open(path, "rb")
            return handle, os.fstat(handle.fileno()).st_size

        return self._post_infer(
            body, "text/csv", table=table, deadline_ms=deadline_ms,
            stream=True,
        )

    def infer_columns(
        self,
        columns: list[dict],
        table: str = "",
        deadline_ms: float | None = None,
    ) -> dict:
        """POST a JSON column payload: ``[{"name": ..., "cells": [...]}]``."""
        body = json.dumps({"table": table, "columns": columns}).encode("utf-8")
        return self._post_infer(
            body, "application/json", deadline_ms=deadline_ms
        )

    def _post_infer(
        self,
        body,
        content_type: str,
        table: str | None = None,
        deadline_ms: float | None = None,
        stream: bool = False,
    ) -> dict:
        query = []
        if table:
            query.append(f"table={urllib.parse.quote(table)}")
        if deadline_ms is not None:
            query.append(f"deadline_ms={deadline_ms:g}")
        if stream:
            query.append("stream=1")
        path = "/v1/infer" + ("?" + "&".join(query) if query else "")
        return self._request("POST", path, body, content_type)

    # -- status --------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        request = urllib.request.Request(
            self.base_url + "/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"GET /metrics -> {exc}", status=0, transport=True
            ) from exc

    def wait_ready(self, timeout_s: float = 60.0, poll_s: float = 0.2) -> dict:
        """Poll ``/healthz`` until the primary model is resident.

        Polls single-shot (no per-request retry — the outer loop *is* the
        retry).  Returns the final health dict; raises
        :class:`ServeClientError` when the model load failed or the timeout
        passes.
        """
        end = time.monotonic() + timeout_s
        health: dict = {}
        while time.monotonic() < end:
            try:
                health = self._request_once("GET", "/healthz")
            except ServeClientError:
                health = {}
            else:
                if health.get("ready"):
                    return health
                if health.get("model", {}).get("state") == "failed":
                    raise ServeClientError(
                        f"model load failed: {health['model'].get('error')}",
                        status=500, payload=health,
                    )
            time.sleep(poll_s)
        raise ServeClientError(
            f"server not ready after {timeout_s:.0f}s "
            f"(last health: {health or 'unreachable'})"
        )

    # -- transport -----------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
    ) -> dict:
        # Every request gets a trace context.  With telemetry enabled the
        # client span itself is recorded and becomes the root the server's
        # spans hang off; disabled, a context is still minted so the server
        # side of the trace is stitched under one trace_id either way.
        with telemetry.span(
            "client.request", method=method, path=path.split("?", 1)[0]
        ) as span:
            context = span_context(span) or TraceContext.generate()
            return self._request_with_retry(
                method, path, body, content_type, context
            )

    def _request_with_retry(
        self,
        method: str,
        path: str,
        body: bytes | None,
        content_type: str | None,
        context: TraceContext,
    ) -> dict:
        policy = self.retry
        if policy is None:
            return self._request_once(method, path, body, content_type, context)
        start = time.monotonic()
        attempt = 1
        while True:
            try:
                return self._request_once(
                    method, path, body, content_type, context
                )
            except ServeClientError as exc:
                reason = self._retry_reason(exc, policy)
                if reason is None or attempt >= policy.max_attempts:
                    raise
                delay = min(
                    policy.max_delay_s,
                    policy.base_delay_s * 2 ** (attempt - 1),
                )
                delay *= 1.0 + policy.jitter * self._rng.random()
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                if time.monotonic() + delay > start + policy.total_deadline_s:
                    raise
                telemetry.count("client.retry")
                telemetry.count(f"client.retry.{reason}")
                telemetry.info(
                    "client.retrying", method=method, path=path,
                    attempt=attempt, delay_s=round(delay, 3), reason=reason,
                    trace_id=context.trace_id,
                )
                time.sleep(delay)
                attempt += 1

    @staticmethod
    def _retry_reason(exc: ServeClientError, policy: RetryPolicy) -> str | None:
        """Why this error is retryable, or None when it is not."""
        if exc.transport:
            return "transport"
        if exc.status in policy.retry_statuses:
            return f"status_{exc.status}"
        return None

    def _request_once(
        self,
        method: str,
        path: str,
        body=None,
        content_type: str | None = None,
        context: TraceContext | None = None,
    ) -> dict:
        try:
            faults.point("client.request", method=method, path=path)
        except FaultInjectedError as exc:
            # Client-side transport chaos: an injected strike looks like any
            # other connection failure, so the retry loop handles it.
            raise ServeClientError(
                f"{method} {path} -> injected fault: {exc}",
                status=0, transport=True,
            ) from exc
        # A callable body yields a fresh (file object, length) per attempt
        # (the streaming-upload path); urllib streams the file as-is once
        # Content-Length is set explicitly.
        opened = None
        if callable(body):
            opened, length = body()
            data = opened
        else:
            data = body
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if opened is not None:
            request.add_header("Content-Length", str(length))
        if content_type:
            request.add_header("Content-Type", content_type)
        if context is not None:
            request.add_header("traceparent", context.to_traceparent())
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            if retry_after is not None and "retry_after_s" not in payload:
                try:
                    payload["retry_after_s"] = float(retry_after)
                except ValueError:
                    pass
            raise ServeClientError(
                f"{method} {path} -> HTTP {exc.code}: "
                f"{payload.get('error', 'unknown error')}",
                status=exc.code, payload=payload,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"{method} {path} -> {exc.reason}", status=0, transport=True
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            # A reset/closed socket mid-response (RemoteDisconnected is a
            # ConnectionResetError) surfaces here rather than as URLError.
            raise ServeClientError(
                f"{method} {path} -> {type(exc).__name__}: {exc}",
                status=0, transport=True,
            ) from exc
        except json.JSONDecodeError as exc:
            raise ServeClientError(
                f"{method} {path} -> unparseable response body: {exc}",
                status=0, transport=True,
            ) from exc
        finally:
            if opened is not None:
                opened.close()
