"""Micro-batching queue for the inference service.

Concurrent HTTP handlers submit one :class:`InferenceRequest` each; a single
worker thread gathers requests into batches bounded by a column budget
(``max_batch_columns``) and a gathering window (``max_wait_s``), then hands
each batch to a runner callback.  Batching is what amortizes
``compute_stats_batch`` and one ``predict_proba`` call across independent
uploads — the same kernel-level win the offline benchmark gets from
featurizing a whole corpus at once (see ``docs/performance.md``).

Robustness semantics live here too: the queue is bounded (submissions past
the limit raise :class:`QueueFullError` → HTTP 429), every request carries a
monotonic-clock deadline (expired requests are shed before compute → HTTP
504), and :meth:`MicroBatcher.close` drains queued work so SIGTERM never
drops an accepted request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.obs import TraceContext, telemetry
from repro.tabular.table import Table


class QueueFullError(RuntimeError):
    """The bounded request queue is at capacity (shed with HTTP 429)."""

    def __init__(self, depth: int, limit: int, retry_after_s: float = 1.0):
        super().__init__(f"request queue full ({depth}/{limit})")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class ServiceClosedError(RuntimeError):
    """The batcher is draining/closed and accepts no new requests."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before a batch could serve it."""


class InferenceRequest:
    """One submitted table (or pre-built profile list), its deadline, and
    (eventually) its result.

    Streamed uploads are profiled on the HTTP handler thread (the only
    place the request body exists); what reaches the batcher is the list of
    :class:`~repro.core.featurize.ColumnProfile` objects, so ``table`` is
    ``None`` and ``profiles`` is set.  Exactly one of the two is non-None.
    """

    __slots__ = (
        "table", "profiles", "table_name", "model_name", "deadline",
        "enqueued_at", "started_at", "finished_at", "predictions", "model",
        "fingerprint", "generation", "degraded", "error", "batch_requests",
        "batch_columns", "trace", "_done",
    )

    def __init__(
        self,
        table: Table | None,
        deadline: float | None,
        trace: TraceContext | None = None,
        profiles: list | None = None,
        table_name: str = "",
        model_name: str | None = None,
    ):
        if (table is None) == (profiles is None):
            raise ValueError("exactly one of table/profiles must be given")
        self.table = table
        self.profiles = profiles
        self.table_name = table.name if table is not None else table_name
        self.model_name = model_name  # registry route; None → default model
        self.deadline = deadline  # time.monotonic() instant, or None
        self.trace = trace  # submitting request's span; batch spans adopt it
        self.enqueued_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.predictions = None  # list[ColumnPrediction] on success
        self.model: str | None = None
        self.fingerprint: str | None = None
        self.generation: int | None = None
        self.degraded = False
        self.error: BaseException | None = None
        self.batch_requests = 0
        self.batch_columns = 0
        self._done = threading.Event()

    @property
    def n_columns(self) -> int:
        if self.table is not None:
            return len(self.table.column_names)
        return len(self.profiles)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def complete(
        self,
        predictions,
        model: str,
        degraded: bool,
        fingerprint: str | None = None,
        generation: int | None = None,
    ) -> None:
        self.predictions = predictions
        self.model = model
        self.fingerprint = fingerprint
        self.generation = generation
        self.degraded = degraded
        self.finished_at = time.monotonic()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.finished_at = time.monotonic()
        self._done.set()

    def wait(self) -> bool:
        """Block until the request finishes or its deadline passes.

        True when a result (or error) is available; False on deadline.
        """
        if self.deadline is None:
            self._done.wait()
            return True
        remaining = self.deadline - time.monotonic()
        return self._done.wait(timeout=max(0.0, remaining))

    @property
    def queue_ms(self) -> float:
        started = self.started_at or self.finished_at or time.monotonic()
        return 1000.0 * (started - self.enqueued_at)

    @property
    def infer_ms(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return 1000.0 * (self.finished_at - self.started_at)


class MicroBatcher:
    """Bounded queue + single gathering worker in front of a batch runner.

    ``runner(batch)`` receives a non-empty ``list[InferenceRequest]`` whose
    deadlines have not passed and must call ``complete``/``fail`` on every
    one of them; a runner-level exception fails the whole batch.
    """

    def __init__(
        self,
        runner: Callable[[list[InferenceRequest]], None],
        max_batch_columns: int = 256,
        max_wait_s: float = 0.01,
        queue_limit: int = 64,
    ):
        self.runner = runner
        self.max_batch_columns = max(1, int(max_batch_columns))
        self.max_wait_s = max(0.0, float(max_wait_s))
        self.queue_limit = max(1, int(queue_limit))
        self._queue: deque[InferenceRequest] = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._worker: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Start the gathering worker (idempotent)."""
        with self._cv:
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._loop, name="serve-batcher", daemon=True
                )
                self._worker.start()
        return self

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting requests; by default finish everything queued.

        With ``drain=False`` queued requests fail with
        :class:`ServiceClosedError` instead of running.
        """
        with self._cv:
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            else:
                abandoned = []
            self._cv.notify_all()
        for request in abandoned:
            request.fail(ServiceClosedError("service shut down"))
        if self._worker is not None:
            self._worker.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        table: Table | None,
        deadline: float | None = None,
        trace: TraceContext | None = None,
        profiles: list | None = None,
        table_name: str = "",
        model_name: str | None = None,
    ) -> InferenceRequest:
        """Enqueue one table (or pre-built profile list); the caller then
        ``wait()``s on the request."""
        request = InferenceRequest(
            table, deadline, trace=trace, profiles=profiles,
            table_name=table_name, model_name=model_name,
        )
        with self._cv:
            if self._closed:
                raise ServiceClosedError("service is draining")
            if len(self._queue) >= self.queue_limit:
                telemetry.count("serve.shed")
                telemetry.observe_window("serve.shed_window", 1.0)
                raise QueueFullError(
                    len(self._queue), self.queue_limit,
                    retry_after_s=max(1.0, 2.0 * self.max_wait_s),
                )
            self._queue.append(request)
            telemetry.gauge("serve.queue_depth", len(self._queue))
            self._cv.notify_all()
        return request

    # -- worker --------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            live, expired = [], []
            now = time.monotonic()
            for request in batch:
                (expired if request.expired(now) else live).append(request)
            for request in expired:
                # Its handler already answered 504; never spend compute on it.
                telemetry.count("serve.expired_in_queue")
                request.fail(DeadlineExceededError("deadline passed in queue"))
            if not live:
                continue
            wall_now = time.time()
            for request in live:
                request.started_at = now
                request.batch_requests = len(live)
                request.batch_columns = sum(r.n_columns for r in live)
                # Nothing *runs* while a request waits in the queue, so the
                # wait span is synthesized from its enqueue/start timestamps
                # (monotonic delta re-anchored onto the wall clock).
                if request.trace is not None:
                    wait_s = max(0.0, now - request.enqueued_at)
                    telemetry.record_span(
                        "serve.queue_wait",
                        started_at=wall_now - wait_s,
                        wall_s=wait_s,
                        trace_id=request.trace.trace_id,
                        parent_span_id=request.trace.span_id,
                        table=request.table_name,
                    )
            try:
                self.runner(live)
            except BaseException as exc:  # runner bug: fail the batch, keep serving
                telemetry.count("serve.batch_error")
                telemetry.error("serve.batch_failed", error=repr(exc))
                for request in live:
                    if not request._done.is_set():
                        request.fail(exc)

    def _gather(self) -> list[InferenceRequest] | None:
        """Block for the first request, then gather more until the column
        budget fills or the wait window closes.  None means closed+empty."""
        with self._cv:
            while not self._queue:
                if self._closed:
                    return None
                self._cv.wait()
            first = self._queue.popleft()
            batch = [first]
            n_columns = first.n_columns
            window_ends = time.monotonic() + self.max_wait_s
            while n_columns < self.max_batch_columns and not self._closed:
                if not self._queue:
                    remaining = window_ends - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cv.wait(remaining)
                    continue
                candidate = self._queue[0]
                if n_columns + candidate.n_columns > self.max_batch_columns:
                    break  # never split one request across batches
                self._queue.popleft()
                batch.append(candidate)
                n_columns += candidate.n_columns
            telemetry.gauge("serve.queue_depth", len(self._queue))
            telemetry.observe_window("serve.queue_depth_window", len(self._queue))
        telemetry.observe("serve.batch_size", len(batch))
        telemetry.observe("serve.batch_columns", n_columns)
        telemetry.observe_window("serve.batch_size_window", len(batch))
        return batch
