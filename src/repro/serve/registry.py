"""Multi-model registry: several fingerprinted artifacts resident at once.

The registry owns the service's model lifecycle.  Each named
:class:`ModelEntry` loads in the background — either
``core/persistence.load_model`` on a saved artifact or a train-through-cache
via ``repro/cache`` (guarded by the cross-process
:class:`~repro.cache.FileLock`, so N serve processes sharing one artifact
cache elect exactly one trainer and the rest warm-fetch) — while the service
answers requests for a still-loading model with the paper's 11-rule
flowchart baseline marked ``degraded: true``.

Requests route to an entry by name (``X-Repro-Model`` header or
``/v1/models/<name>/infer`` path); ``resolve(None)`` is the default model,
so single-model deployments keep working unchanged.

Zero-downtime hot swap (:meth:`ModelEntry.swap`): the replacement artifact
loads on a background thread while the old model keeps answering; when
resident, the route flips atomically under the entry lock and the entry's
``generation`` bumps.  Batches *lease* the model they run against
(:meth:`ModelEntry.lease`), so the swap can wait for every in-flight batch
of the old generation to finish — the drain — before declaring the old
artifact released.  No request is ever dropped, and once a response carries
the new fingerprint no later-completed response carries the old one (the
batch runner is a single worker, so completions are ordered).

``/healthz`` surfaces every entry with its name, state, fingerprint and
swap generation, so a deployment can be tied to the exact artifact bytes
each route answers with.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.persistence import (
    fingerprint_model,
    load_model,
    model_fingerprint,
)
from repro.obs import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ArtifactCache
    from repro.core.models import TypeInferenceModel

#: Registry key of the entry created by ``ModelRegistry()`` when no model
#: path names it (the train-at-startup path).
DEFAULT_MODEL_NAME = "default"


class UnknownModelError(KeyError):
    """A request named a model the registry does not hold (HTTP 404)."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(name)
        self.name = name
        self.known = list(known)

    def __str__(self) -> str:
        return (
            f"unknown model {self.name!r} "
            f"(registered: {', '.join(self.known) or 'none'})"
        )


class SwapInProgressError(RuntimeError):
    """A swap was requested while another one is still loading (HTTP 409)."""


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for the default train-at-startup path."""

    n_examples: int = 1500
    trees: int = 50
    seed: int = 0

    def cache_params(self) -> dict:
        return {
            "purpose": "serve-default-rf",
            "model": "rf",
            "n_estimators": self.trees,
            "random_state": self.seed,
            "n_examples": self.n_examples,
            "corpus_seed": self.seed,
        }


class SwapHandle:
    """Progress of one hot swap: loaded → flipped → drained (or failed)."""

    def __init__(self, model: str, target_generation: int):
        self.model = model
        self.target_generation = target_generation
        self.error: str | None = None
        self._flipped = threading.Event()
        self._drained = threading.Event()

    @property
    def flipped(self) -> bool:
        return self.error is None and self._flipped.is_set()

    @property
    def drained(self) -> bool:
        return self.error is None and self._drained.is_set()

    @property
    def failed(self) -> bool:
        return self.error is not None

    def wait_flipped(self, timeout: float | None = None) -> bool:
        """Block until the route flipped (or the swap failed); True on flip."""
        self._flipped.wait(timeout=timeout)
        return self.flipped

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until the old artifact fully drained; True when it did."""
        self._drained.wait(timeout=timeout)
        return self.drained


class _Lease:
    """One batch's hold on an entry's (model, fingerprint, generation).

    Context manager so the entry can count in-flight uses per generation:
    a swap drains by waiting for every lease of the old generation to be
    released.
    """

    def __init__(self, entry: "ModelEntry"):
        self._entry = entry
        self.model: "TypeInferenceModel | None" = None
        self.fingerprint: str | None = None
        self.generation = 0

    def __enter__(self) -> "_Lease":
        entry = self._entry
        with entry._cv:
            self.model = entry._model
            self.fingerprint = entry.fingerprint
            self.generation = entry.generation
            if self.model is not None:
                entry._inflight[self.generation] = (
                    entry._inflight.get(self.generation, 0) + 1
                )
        return self

    def __exit__(self, *exc_info) -> None:
        entry = self._entry
        if self.model is None:
            return
        with entry._cv:
            count = entry._inflight[self.generation] - 1
            if count:
                entry._inflight[self.generation] = count
            else:
                del entry._inflight[self.generation]
                entry._cv.notify_all()


class ModelEntry:
    """One named, fingerprinted model slot inside the registry.

    States: ``loading`` → ``ready`` | ``failed``; :meth:`describe` reports
    ``draining`` while a superseded generation still has in-flight leases.
    """

    def __init__(
        self,
        name: str,
        model_path: str | None = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
    ):
        self.name = name
        self.model_path = model_path
        self.cache = cache
        self.train = train or TrainConfig()
        self._model: "TypeInferenceModel | None" = None
        self._cv = threading.Condition()
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self.state = "loading"
        self.fingerprint: str | None = None
        self.source: str | None = None
        self.model_label: str | None = None
        self.error: str | None = None
        self.generation = 0
        self.swap_in_progress = False
        self.last_swap_error: str | None = None
        self._inflight: dict[int, int] = {}

    # -- loading -------------------------------------------------------------
    def load(self, background: bool = True) -> "ModelEntry":
        """Start loading this entry (idempotent, no-op once ready)."""
        with self._cv:
            if self._ready.is_set():
                return self
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._load,
                    name=f"serve-model-loader-{self.name}",
                    daemon=True,
                )
                self._thread.start()
        if not background:
            self._ready.wait()
        return self

    def _load(self) -> None:
        with telemetry.span(
            "serve.model_load", model=self.name, path=self.model_path or ""
        ):
            try:
                model, fingerprint, source = self._load_payload(
                    self.model_path, self.cache, self.train
                )
            except BaseException as exc:
                with self._cv:
                    self.state = "failed"
                    self.error = f"{type(exc).__name__}: {exc}"
                telemetry.count("serve.model_load_failed")
                telemetry.error(
                    "serve.model_load_failed", model=self.name, error=self.error
                )
                self._ready.set()
                return
        with self._cv:
            self._model = model
            self.state = "ready"
            self.fingerprint = fingerprint
            self.source = source
            self.model_label = getattr(model, "name", type(model).__name__)
        telemetry.count("serve.model_loaded")
        telemetry.info(
            "serve.model_ready", model=self.name, source=source,
            fingerprint=fingerprint[:12],
        )
        self._ready.set()

    @staticmethod
    def _load_payload(
        model_path: str | None,
        cache: "ArtifactCache | None",
        train: TrainConfig,
    ) -> tuple["TypeInferenceModel", str, str]:
        """(model, fingerprint, source) for an artifact or a startup train."""
        if model_path is not None:
            model = load_model(model_path)
            return model, model_fingerprint(model_path), f"artifact:{model_path}"

        def build():
            from repro.core.models import RandomForestModel
            from repro.datagen.corpus import generate_corpus

            corpus = generate_corpus(
                n_examples=train.n_examples, seed=train.seed
            )
            model = RandomForestModel(
                n_estimators=train.trees, random_state=train.seed
            )
            model.fit(corpus.dataset)
            return model

        if cache is not None:
            # N serve processes sharing one cache dir elect exactly one
            # trainer: the lock serializes the fetch, so the losers find a
            # warm entry instead of re-fitting the same model in parallel.
            from repro.cache import FileLock

            lock_path = os.path.join(
                os.fspath(cache.root), "registry-train.lock"
            )
            with FileLock(lock_path, timeout_s=900.0):
                model = cache.fetch("model", train.cache_params(), build)
            return model, fingerprint_model(model), "trained (cache-backed)"
        model = build()
        return model, fingerprint_model(model), "trained"

    # -- access --------------------------------------------------------------
    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until loading finished (either way); True when ready."""
        self._ready.wait(timeout=timeout)
        return self.state == "ready"

    @property
    def ready(self) -> bool:
        return self.state == "ready"

    def current(self) -> "TypeInferenceModel | None":
        """The resident model, or None while loading / after failure."""
        with self._cv:
            return self._model

    def lease(self) -> _Lease:
        """A context-managed hold on the current (model, fp, generation)."""
        return _Lease(self)

    @property
    def draining(self) -> bool:
        """True while a superseded generation still has in-flight leases."""
        with self._cv:
            return any(gen < self.generation for gen in self._inflight)

    # -- hot swap ------------------------------------------------------------
    def swap(
        self,
        model_path: str | None = None,
        model: "TypeInferenceModel | None" = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
    ) -> SwapHandle:
        """Replace this entry's artifact with zero downtime.

        The replacement loads on a background thread while the old model
        keeps serving; on success the route flips atomically, ``generation``
        bumps, and the old artifact is released once every in-flight batch
        leased against it has finished.  On a load failure the old model
        keeps serving untouched (``handle.failed``, ``last_swap_error``).
        """
        with self._cv:
            if self.swap_in_progress:
                raise SwapInProgressError(
                    f"model {self.name!r} already has a swap loading"
                )
            if self._thread is not None and not self._ready.is_set():
                raise SwapInProgressError(
                    f"model {self.name!r} is still loading its first artifact"
                )
            self.swap_in_progress = True
            handle = SwapHandle(self.name, self.generation + 1)
        thread = threading.Thread(
            target=self._swap_worker,
            args=(handle, model_path, model, cache, train or self.train),
            name=f"serve-model-swap-{self.name}",
            daemon=True,
        )
        thread.start()
        return handle

    def _swap_worker(
        self, handle: SwapHandle, model_path, model, cache, train
    ) -> None:
        with telemetry.span(
            "serve.model_swap", model=self.name,
            target_generation=handle.target_generation,
        ):
            try:
                if model is not None:
                    payload = (
                        model, fingerprint_model(model), "swapped (in-memory)"
                    )
                else:
                    payload = self._load_payload(model_path, cache, train)
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
                with self._cv:
                    self.swap_in_progress = False
                    self.last_swap_error = error
                handle.error = error
                telemetry.count("serve.swap_failed")
                telemetry.error(
                    "serve.swap_failed", model=self.name, error=error
                )
                handle._flipped.set()
                handle._drained.set()
                return
            new_model, fingerprint, source = payload
            with self._cv:
                old_fingerprint = self.fingerprint
                self._model = new_model
                self.fingerprint = fingerprint
                self.source = source
                self.model_label = getattr(
                    new_model, "name", type(new_model).__name__
                )
                self.state = "ready"
                self.error = None
                self.last_swap_error = None
                self.generation += 1
                self.swap_in_progress = False
            self._ready.set()
            telemetry.count("serve.swap_flipped")
            telemetry.info(
                "serve.swap_flipped", model=self.name,
                generation=self.generation,
                old_fingerprint=(old_fingerprint or "")[:12],
                fingerprint=fingerprint[:12],
            )
            handle._flipped.set()
            # Drain: wait for every in-flight lease of a superseded
            # generation to be released, then the old artifact is gone.
            with self._cv:
                while any(gen < self.generation for gen in self._inflight):
                    self._cv.wait(timeout=0.5)
            telemetry.count("serve.swap_drained")
            telemetry.info(
                "serve.swap_drained", model=self.name,
                generation=self.generation,
            )
        handle._drained.set()

    # -- status --------------------------------------------------------------
    def describe(self) -> dict:
        """One model block of ``/healthz``: state, fingerprint, swap info."""
        with self._cv:
            state = self.state
            if state == "ready" and any(
                gen < self.generation for gen in self._inflight
            ):
                state = "draining"
            return {
                "state": state,
                "name": self.model_label,
                "source": self.source,
                "fingerprint": self.fingerprint,
                "error": self.error,
                "generation": self.generation,
                "swap_in_progress": self.swap_in_progress,
                "last_swap_error": self.last_swap_error,
            }


class ModelRegistry:
    """Named, fingerprinted model slots with per-request routing.

    ``ModelRegistry(model_path=...)`` / ``ModelRegistry(cache=..., train=...)``
    create the *default* entry exactly as the single-model registry did;
    :meth:`register` adds more resident models, :meth:`resolve` routes a
    request's model name (None → default) to its entry, and
    :meth:`swap` hot-swaps one entry's artifact with zero downtime.
    """

    def __init__(
        self,
        model_path: str | None = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
        default_name: str | None = None,
    ):
        self.cache = cache
        self.train = train or TrainConfig()
        if default_name is None:
            default_name = (
                os.path.splitext(os.path.basename(model_path))[0]
                if model_path else DEFAULT_MODEL_NAME
            )
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}
        self.default_name = default_name
        self._started = False
        self._entries[default_name] = ModelEntry(
            default_name, model_path=model_path, cache=cache, train=self.train
        )

    @classmethod
    def preloaded(
        cls,
        model: "TypeInferenceModel",
        fingerprint: str | None = None,
        source: str = "preloaded",
        name: str | None = None,
    ) -> "ModelRegistry":
        """A registry that is already ``ready`` with an in-memory model.

        For embedding the service in-process (tests, notebooks) without a
        disk artifact or a startup train.
        """
        name = name or getattr(model, "name", type(model).__name__)
        registry = cls(default_name=name)
        registry._started = True
        entry = registry._entries[name]
        entry._model = model
        entry.state = "ready"
        entry.fingerprint = fingerprint or fingerprint_model(model)
        entry.source = source
        entry.model_label = getattr(model, "name", type(model).__name__)
        entry._ready.set()
        return registry

    # -- membership ----------------------------------------------------------
    def register(
        self,
        name: str,
        model_path: str | None = None,
        model: "TypeInferenceModel | None" = None,
        fingerprint: str | None = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
        default: bool = False,
    ) -> ModelEntry:
        """Add a named model: a saved artifact, an in-memory model, or a
        train-through-cache config.  Loads in the background once the
        registry has been started (:meth:`load`)."""
        with self._lock:
            if name in self._entries:
                raise ValueError(
                    f"model {name!r} is already registered; use swap() to "
                    f"replace its artifact"
                )
            entry = ModelEntry(
                name, model_path=model_path,
                cache=cache if cache is not None else (
                    self.cache if model_path is None else None
                ),
                train=train or self.train,
            )
            if model is not None:
                entry._model = model
                entry.state = "ready"
                entry.fingerprint = fingerprint or fingerprint_model(model)
                entry.source = "preloaded"
                entry.model_label = getattr(
                    model, "name", type(model).__name__
                )
                entry._ready.set()
            self._entries[name] = entry
            if default:
                self.default_name = name
            started = self._started
        if started and model is None:
            entry.load()
        telemetry.count("serve.model_registered")
        return entry

    def set_default(self, name: str) -> None:
        """Point the default route at an already-registered model."""
        with self._lock:
            if name not in self._entries:
                raise UnknownModelError(name, list(self._entries))
            self.default_name = name

    def resolve(self, name: str | None = None) -> ModelEntry:
        """The entry a request routes to (None → the default model)."""
        with self._lock:
            key = name or self.default_name
            try:
                return self._entries[key]
            except KeyError:
                raise UnknownModelError(key, list(self._entries)) from None

    def names(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def swap(
        self,
        name: str | None = None,
        model_path: str | None = None,
        model: "TypeInferenceModel | None" = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
    ) -> SwapHandle:
        """Hot-swap one entry's artifact (None → the default model)."""
        return self.resolve(name).swap(
            model_path=model_path, model=model, cache=cache, train=train
        )

    # -- loading -------------------------------------------------------------
    def load(self, background: bool = True) -> "ModelRegistry":
        """Start loading every registered entry (idempotent).

        ``background=False`` blocks until every entry is ready or failed —
        used by tests and by ``repro-serve --wait-ready``.
        """
        with self._lock:
            self._started = True
            entries = list(self._entries.values())
        for entry in entries:
            entry.load()
        if not background:
            for entry in entries:
                entry.wait_ready()
        return self

    # -- default-entry access (single-model API, unchanged) ------------------
    def _default(self) -> ModelEntry:
        with self._lock:
            return self._entries[self.default_name]

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the default entry finished loading; True when ready."""
        return self._default().wait_ready(timeout=timeout)

    @property
    def ready(self) -> bool:
        return self._default().ready

    @property
    def state(self) -> str:
        return self._default().state

    @property
    def fingerprint(self) -> str | None:
        return self._default().fingerprint

    @property
    def source(self) -> str | None:
        return self._default().source

    @property
    def model_name(self) -> str | None:
        return self._default().model_label

    @property
    def error(self) -> str | None:
        return self._default().error

    def current(self, name: str | None = None) -> "TypeInferenceModel | None":
        """The routed model, or None while loading / after failure."""
        return self.resolve(name).current()

    def describe(self) -> dict:
        """The default entry's ``model`` block of ``/healthz``."""
        return self._default().describe()

    def describe_all(self) -> dict:
        """Every registered model's status block, keyed by registry name."""
        with self._lock:
            entries = dict(self._entries)
        return {name: entry.describe() for name, entry in entries.items()}
