"""Model registry: load the primary model once, serve from memory forever.

The registry owns the service's model lifecycle.  At startup it kicks off a
background load — either ``core/persistence.load_model`` on a saved artifact
or a train-through-cache via ``repro/cache`` (so a warm artifact dir makes
restarts near-instant) — while the service immediately answers requests with
the paper's 11-rule flowchart baseline (``tools/rules``) marked
``degraded: true``.  Once the primary model is resident, every batch uses it
with zero per-request load cost.

``/healthz`` surfaces :func:`~repro.core.persistence.model_fingerprint` so a
deployment can be tied to the exact artifact bytes it answers with.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.persistence import (
    fingerprint_model,
    load_model,
    model_fingerprint,
)
from repro.obs import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ArtifactCache
    from repro.core.models import TypeInferenceModel


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for the default train-at-startup path."""

    n_examples: int = 1500
    trees: int = 50
    seed: int = 0

    def cache_params(self) -> dict:
        return {
            "purpose": "serve-default-rf",
            "model": "rf",
            "n_estimators": self.trees,
            "random_state": self.seed,
            "n_examples": self.n_examples,
            "corpus_seed": self.seed,
        }


class ModelRegistry:
    """Single-slot registry with background loading and a status surface.

    States: ``loading`` → ``ready`` | ``failed``.  ``current()`` never
    blocks — it returns ``(model, meta)`` where ``model`` is None until the
    primary is resident, which is the signal for the batch runner to take
    the degraded heuristic path.
    """

    def __init__(
        self,
        model_path: str | None = None,
        cache: "ArtifactCache | None" = None,
        train: TrainConfig | None = None,
    ):
        self.model_path = model_path
        self.cache = cache
        self.train = train or TrainConfig()
        self._model: "TypeInferenceModel | None" = None
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self.state = "loading"
        self.fingerprint: str | None = None
        self.source: str | None = None
        self.model_name: str | None = None
        self.error: str | None = None

    @classmethod
    def preloaded(
        cls,
        model: "TypeInferenceModel",
        fingerprint: str | None = None,
        source: str = "preloaded",
    ) -> "ModelRegistry":
        """A registry that is already ``ready`` with an in-memory model.

        For embedding the service in-process (tests, notebooks) without a
        disk artifact or a startup train.
        """
        registry = cls()
        registry._model = model
        registry.state = "ready"
        registry.fingerprint = fingerprint or fingerprint_model(model)
        registry.source = source
        registry.model_name = getattr(model, "name", type(model).__name__)
        registry._ready.set()
        return registry

    # -- loading -------------------------------------------------------------
    def load(self, background: bool = True) -> "ModelRegistry":
        """Start loading the primary model (idempotent, no-op once ready).

        ``background=False`` blocks until the model is ready or failed —
        used by tests and by ``repro-serve --wait-ready``.
        """
        with self._lock:
            if self._ready.is_set():
                return self
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._load, name="serve-model-loader", daemon=True
                )
                self._thread.start()
        if not background:
            self._ready.wait()
        return self

    def _load(self) -> None:
        with telemetry.span("serve.model_load", path=self.model_path or ""):
            try:
                if self.model_path is not None:
                    model = load_model(self.model_path)
                    fingerprint = model_fingerprint(self.model_path)
                    source = f"artifact:{self.model_path}"
                else:
                    model = self._train_or_fetch()
                    fingerprint = fingerprint_model(model)
                    source = (
                        "trained (cache-backed)" if self.cache else "trained"
                    )
            except BaseException as exc:
                with self._lock:
                    self.state = "failed"
                    self.error = f"{type(exc).__name__}: {exc}"
                telemetry.count("serve.model_load_failed")
                telemetry.error("serve.model_load_failed", error=self.error)
                self._ready.set()
                return
        with self._lock:
            self._model = model
            self.state = "ready"
            self.fingerprint = fingerprint
            self.source = source
            self.model_name = getattr(model, "name", type(model).__name__)
        telemetry.count("serve.model_loaded")
        telemetry.info(
            "serve.model_ready", source=source, fingerprint=fingerprint[:12]
        )
        self._ready.set()

    def _train_or_fetch(self) -> "TypeInferenceModel":
        def build():
            from repro.core.models import RandomForestModel
            from repro.datagen.corpus import generate_corpus

            corpus = generate_corpus(
                n_examples=self.train.n_examples, seed=self.train.seed
            )
            model = RandomForestModel(
                n_estimators=self.train.trees, random_state=self.train.seed
            )
            model.fit(corpus.dataset)
            return model

        if self.cache is not None:
            return self.cache.fetch("model", self.train.cache_params(), build)
        return build()

    # -- access --------------------------------------------------------------
    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until loading finished (either way); True when ready."""
        self._ready.wait(timeout=timeout)
        return self.state == "ready"

    @property
    def ready(self) -> bool:
        return self.state == "ready"

    def current(self) -> "TypeInferenceModel | None":
        """The primary model, or None while loading / after failure."""
        with self._lock:
            return self._model

    def describe(self) -> dict:
        """The ``model`` block of ``/healthz`` (state, name, fingerprint)."""
        with self._lock:
            return {
                "state": self.state,
                "name": self.model_name,
                "source": self.source,
                "fingerprint": self.fingerprint,
                "error": self.error,
            }
