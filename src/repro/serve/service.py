"""The inference service: registry + micro-batcher + batch runner.

:class:`InferenceService` is the transport-independent core of
``repro-serve``: the HTTP layer (``serve/http.py``) and the in-process tests
both drive it through :meth:`infer`.  Its batch runner flattens every column
of every request in a batch through one ``profile_columns`` call (which is
one ``compute_stats_batch`` character-scan, deduped across requests by a
shared :class:`~repro.core.stats.StatsScanCache`) and one
``predict_proba`` call, then splits the predictions back per request.

Degradation: while the registry is still loading (or failed), batches are
answered by the paper's 11-rule flowchart baseline with ``degraded: true``
and a fixed 0.5 confidence — the platform stays responsive during cold
starts at rule-level accuracy (~54% 9-class, Section 3.2) instead of
queueing uploads behind a minute-long model fit.
"""

from __future__ import annotations

import time

from repro.core.pipeline import ColumnPrediction, TypeInferencePipeline
from repro.core.featurize import profile_columns
from repro.core.stats import StatsScanCache
from repro.obs import span_context, telemetry, use_context
from repro.serve.batching import InferenceRequest, MicroBatcher, QueueFullError
from repro.serve.registry import ModelRegistry
from repro.tabular.table import Table
from repro.tools.rules import RuleBaselineTool

#: Distinct cell values retained in the cross-request scan cache before it
#: is dropped and restarted — bounds resident memory on long-lived servers.
SCAN_CACHE_MAX_VALUES = 200_000

#: Confidence reported for degraded (rule-based) predictions: exactly the
#: paper's review threshold, so they are not silently trusted as
#: high-confidence but also not all flagged; clients must check `degraded`.
FALLBACK_CONFIDENCE = 0.5


class InferenceService:
    """Long-lived, batched type-inference over in-memory tables."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_columns: int = 256,
        max_wait_s: float = 0.01,
        queue_limit: int = 64,
        default_deadline_s: float = 30.0,
    ):
        self.registry = registry
        self.default_deadline_s = default_deadline_s
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_columns=max_batch_columns,
            max_wait_s=max_wait_s,
            queue_limit=queue_limit,
        )
        self._fallback = RuleBaselineTool()
        self._scan_cache = StatsScanCache()
        self.started_at = time.time()
        self.draining = False

    # -- lifecycle -----------------------------------------------------------
    def start(self, load_in_background: bool = True) -> "InferenceService":
        self.registry.load(background=load_in_background)
        self.batcher.start()
        return self

    def drain(self, timeout: float | None = 30.0) -> None:
        """Stop accepting work, finish everything queued (SIGTERM path)."""
        self.draining = True
        self.batcher.close(drain=True, timeout=timeout)

    # -- request path --------------------------------------------------------
    def infer(
        self, table: Table, deadline_s: float | None = None
    ) -> InferenceRequest:
        """Submit a table and block until result or deadline.

        Raises :class:`~repro.serve.batching.QueueFullError` /
        :class:`~repro.serve.batching.ServiceClosedError` at submission
        time; a request whose deadline passes is returned with
        ``predictions is None`` (the HTTP layer maps that to 504).
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = (
            time.monotonic() + deadline_s if deadline_s and deadline_s > 0
            else None
        )
        telemetry.count("serve.request")
        telemetry.count("serve.request_columns", len(table.column_names))
        with telemetry.span(
            "serve.request", table=table.name, n_columns=len(table.column_names)
        ) as span:
            # The request's trace context must ride INTO submit(): the
            # batcher worker may pick the request up before this thread
            # runs another line, so stamping it afterwards would race.
            try:
                request = self.batcher.submit(
                    table, deadline=deadline, trace=span_context(span)
                )
            except QueueFullError as exc:
                # No request object survives a shed; carry the trace id on
                # the exception so the HTTP layer can still echo it.
                exc.trace_id = getattr(span, "trace_id", None)
                raise
            finished = request.wait()
        if not finished:
            telemetry.count("serve.deadline_exceeded")
        else:
            latency_ms = request.queue_ms + request.infer_ms
            telemetry.observe("serve.request_ms", latency_ms)
            telemetry.observe_window("serve.request_ms_window", latency_ms)
        return request

    # -- batch runner (worker thread) ----------------------------------------
    def _run_batch(self, batch: list[InferenceRequest]) -> None:
        model = self.registry.current()
        n_columns = sum(r.n_columns for r in batch)
        # The batch span runs on the batcher worker thread, where the span
        # stack is empty — adopt the first member's trace so the tree is
        # request → queue_wait / batch → profile/predict.  A multi-request
        # batch has one parent slot; the other members' trace ids are kept
        # as an attribute so nothing is unattributable.
        trace = next((r.trace for r in batch if r.trace is not None), None)
        extra = {}
        if len(batch) > 1:
            extra["member_trace_ids"] = sorted(
                {r.trace.trace_id for r in batch if r.trace is not None}
            )
        with use_context(trace), telemetry.span(
            "serve.batch", n_requests=len(batch), n_columns=n_columns,
            degraded=model is None, **extra,
        ):
            if model is None:
                self._run_degraded(batch)
            else:
                self._run_primary(batch, model)

    def _run_primary(self, batch: list[InferenceRequest], model) -> None:
        if len(self._scan_cache.values) > SCAN_CACHE_MAX_VALUES:
            telemetry.count("serve.scan_cache_reset")
            self._scan_cache = StatsScanCache()
        columns = [column for request in batch for column in request.table]
        with telemetry.span("serve.profile", n_columns=len(columns)):
            profiles = profile_columns(columns, scan_cache=self._scan_cache)
        # Stamp provenance per request (profile_columns took the flat list).
        offset = 0
        for request in batch:
            for profile in profiles[offset:offset + request.n_columns]:
                profile.source_file = request.table.name
            offset += request.n_columns
        pipeline = TypeInferencePipeline(model)
        with telemetry.span("serve.predict", n_columns=len(profiles)):
            predictions = pipeline.predict_profiles(profiles)
        offset = 0
        label = getattr(model, "name", type(model).__name__)
        for request in batch:
            request.complete(
                predictions[offset:offset + request.n_columns],
                model=label, degraded=False,
            )
            offset += request.n_columns

    def _run_degraded(self, batch: list[InferenceRequest]) -> None:
        telemetry.count("serve.degraded_batches")
        for request in batch:
            predictions = [
                ColumnPrediction(
                    column=column.name,
                    feature_type=self._fallback.infer_column(column),
                    confidence=FALLBACK_CONFIDENCE,
                )
                for column in request.table
            ]
            request.complete(
                predictions, model=self._fallback.name, degraded=True
            )

    # -- status surfaces -----------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` body: service + model state in one dict."""
        if self.draining:
            status = "draining"
        elif self.registry.ready:
            status = "ready"
        else:
            status = "degraded"  # serving, but via the rules fallback
        return {
            "status": status,
            "ready": self.registry.ready,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.batcher.queue_depth,
            "queue_limit": self.batcher.queue_limit,
            "max_batch_columns": self.batcher.max_batch_columns,
            "max_wait_ms": round(1000.0 * self.batcher.max_wait_s, 3),
            "model": self.registry.describe(),
        }
