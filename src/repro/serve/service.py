"""The inference service: registry + micro-batcher + batch runner.

:class:`InferenceService` is the transport-independent core of
``repro-serve``: the HTTP layer (``serve/http.py``) and the in-process tests
both drive it through :meth:`infer`.  Its batch runner flattens every column
of every request in a batch through one ``profile_columns`` call (which is
one ``compute_stats_batch`` character-scan, deduped across requests by a
shared :class:`~repro.core.stats.StatsScanCache`) and one
``predict_proba`` call, then splits the predictions back per request.

Degradation: while the registry is still loading (or failed), batches are
answered by the paper's 11-rule flowchart baseline with ``degraded: true``
and a fixed 0.5 confidence — the platform stays responsive during cold
starts at rule-level accuracy (~54% 9-class, Section 3.2) instead of
queueing uploads behind a minute-long model fit.
"""

from __future__ import annotations

import contextlib
import time

from repro.core.pipeline import ColumnPrediction, TypeInferencePipeline
from repro.core.featurize import profile_columns
from repro.core.stats import StatsScanCache
from repro.obs import span_context, telemetry, use_context
from repro.serve.batching import InferenceRequest, MicroBatcher, QueueFullError
from repro.serve.registry import ModelRegistry, UnknownModelError
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.tools.rules import RuleBaselineTool

#: Default distinct cell values retained in the cross-request scan cache
#: before it is dropped and restarted — bounds resident memory on
#: long-lived servers.  Tunable per service via ``scan_cache_max_values``
#: (``repro-serve --scan-cache-max-values``).
SCAN_CACHE_MAX_VALUES = 200_000

#: Confidence reported for degraded (rule-based) predictions: exactly the
#: paper's review threshold, so they are not silently trusted as
#: high-confidence but also not all flagged; clients must check `degraded`.
FALLBACK_CONFIDENCE = 0.5


class InferenceService:
    """Long-lived, batched type-inference over in-memory tables."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_columns: int = 256,
        max_wait_s: float = 0.01,
        queue_limit: int = 64,
        default_deadline_s: float = 30.0,
        scan_cache_max_values: int = SCAN_CACHE_MAX_VALUES,
    ):
        self.registry = registry
        self.default_deadline_s = default_deadline_s
        self.scan_cache_max_values = max(0, int(scan_cache_max_values))
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_columns=max_batch_columns,
            max_wait_s=max_wait_s,
            queue_limit=queue_limit,
        )
        self._fallback = RuleBaselineTool()
        self._scan_cache = StatsScanCache()
        self.started_at = time.time()
        self.draining = False

    # -- lifecycle -----------------------------------------------------------
    def start(self, load_in_background: bool = True) -> "InferenceService":
        self.registry.load(background=load_in_background)
        self.batcher.start()
        return self

    def drain(self, timeout: float | None = 30.0) -> None:
        """Stop accepting work, finish everything queued (SIGTERM path)."""
        self.draining = True
        self.batcher.close(drain=True, timeout=timeout)

    # -- request path --------------------------------------------------------
    def infer(
        self,
        table: Table,
        deadline_s: float | None = None,
        model_name: str | None = None,
    ) -> InferenceRequest:
        """Submit a table and block until result or deadline.

        ``model_name`` routes the request to one registry entry (None → the
        default model); an unregistered name raises
        :class:`~repro.serve.registry.UnknownModelError` at submission time
        (the HTTP layer maps that to 404).  Raises
        :class:`~repro.serve.batching.QueueFullError` /
        :class:`~repro.serve.batching.ServiceClosedError` at submission
        time; a request whose deadline passes is returned with
        ``predictions is None`` (the HTTP layer maps that to 504).
        """
        return self._submit_and_wait(
            table=table, profiles=None, table_name=table.name,
            n_columns=len(table.column_names), deadline_s=deadline_s,
            model_name=model_name,
        )

    def infer_profiles(
        self,
        profiles: list,
        table_name: str = "",
        deadline_s: float | None = None,
        model_name: str | None = None,
    ) -> InferenceRequest:
        """Submit pre-built column profiles (the streamed-upload path).

        The HTTP handler profiles a streamed body chunk by chunk through
        :class:`~repro.sketch.StreamingProfiler` as it arrives; only the
        finished profiles are enqueued, so batcher memory stays independent
        of the upload size.  Same blocking/shedding/routing semantics as
        :meth:`infer`.
        """
        return self._submit_and_wait(
            table=None, profiles=profiles, table_name=table_name,
            n_columns=len(profiles), deadline_s=deadline_s,
            model_name=model_name,
        )

    def _submit_and_wait(
        self, table, profiles, table_name, n_columns, deadline_s,
        model_name=None,
    ) -> InferenceRequest:
        # Route validation happens before enqueue so an unknown model is a
        # synchronous 404, not a failed batch.
        self.registry.resolve(model_name)
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = (
            time.monotonic() + deadline_s if deadline_s and deadline_s > 0
            else None
        )
        telemetry.count("serve.request")
        telemetry.count("serve.request_columns", n_columns)
        with telemetry.span(
            "serve.request", table=table_name, n_columns=n_columns,
            streamed=table is None, model=model_name or "",
        ) as span:
            # The request's trace context must ride INTO submit(): the
            # batcher worker may pick the request up before this thread
            # runs another line, so stamping it afterwards would race.
            try:
                request = self.batcher.submit(
                    table, deadline=deadline, trace=span_context(span),
                    profiles=profiles, table_name=table_name,
                    model_name=model_name,
                )
            except QueueFullError as exc:
                # No request object survives a shed; carry the trace id on
                # the exception so the HTTP layer can still echo it.
                exc.trace_id = getattr(span, "trace_id", None)
                raise
            finished = request.wait()
        if not finished:
            telemetry.count("serve.deadline_exceeded")
        else:
            latency_ms = request.queue_ms + request.infer_ms
            telemetry.observe("serve.request_ms", latency_ms)
            telemetry.observe_window("serve.request_ms_window", latency_ms)
        return request

    # -- batch runner (worker thread) ----------------------------------------
    def _run_batch(self, batch: list[InferenceRequest]) -> None:
        # Group by routed registry entry.  Submission already validated the
        # route, so resolve() failing here means the registry changed under
        # us — fail just that request, keep serving the rest.
        groups: dict[str, tuple] = {}
        for request in batch:
            try:
                entry = self.registry.resolve(request.model_name)
            except UnknownModelError as exc:
                request.fail(exc)
                continue
            groups.setdefault(entry.name, (entry, []))[1].append(request)
        if not groups:
            return
        live = [r for _, members in groups.values() for r in members]
        n_columns = sum(r.n_columns for r in live)
        # The batch span runs on the batcher worker thread, where the span
        # stack is empty — adopt the first member's trace so the tree is
        # request → queue_wait / batch → profile/predict.  A multi-request
        # batch has one parent slot; the other members' trace ids are kept
        # as an attribute so nothing is unattributable.
        trace = next((r.trace for r in live if r.trace is not None), None)
        extra = {}
        if len(live) > 1:
            extra["member_trace_ids"] = sorted(
                {r.trace.trace_id for r in live if r.trace is not None}
            )
        # Leases pin each group's (model, fingerprint, generation) for the
        # whole batch, so a concurrent hot swap cannot flip a model under a
        # running batch — the swap's drain waits for these to release.
        with contextlib.ExitStack() as stack:
            leases = {
                name: stack.enter_context(entry.lease())
                for name, (entry, _) in groups.items()
            }
            degraded_groups = [
                name for name, lease in leases.items() if lease.model is None
            ]
            with use_context(trace), telemetry.span(
                "serve.batch", n_requests=len(live), n_columns=n_columns,
                models=sorted(groups), degraded=bool(degraded_groups),
                **extra,
            ):
                primary = [
                    request
                    for name, (_, members) in groups.items()
                    if leases[name].model is not None
                    for request in members
                ]
                profiles_by_request = self._profile_requests(primary)
                for name, (_, members) in groups.items():
                    lease = leases[name]
                    if lease.model is None:
                        self._run_degraded(members)
                    else:
                        self._run_primary(
                            members, lease, profiles_by_request
                        )

    def _profile_requests(
        self, batch: list[InferenceRequest]
    ) -> dict[int, list]:
        """One shared ``profile_columns`` scan across every model group.

        Profiles are model-agnostic, so a mixed-model batch still amortizes
        a single character scan; only the ``predict_proba`` call is per
        model.  Returns ``id(request) → its profiles``.
        """
        if not batch:
            return {}
        if len(self._scan_cache.values) > self.scan_cache_max_values:
            telemetry.count("serve.scan_cache_reset")
            self._scan_cache = StatsScanCache()
        # Table requests share one profile_columns scan; streamed requests
        # arrive pre-profiled and just slot into the prediction.
        table_requests = [r for r in batch if r.table is not None]
        columns = [
            column for request in table_requests for column in request.table
        ]
        profiles_by_request: dict[int, list] = {}
        if columns:
            with telemetry.span("serve.profile", n_columns=len(columns)):
                profiled = profile_columns(columns, scan_cache=self._scan_cache)
            # Stamp provenance per request (profile_columns took the flat
            # list).
            offset = 0
            for request in table_requests:
                chunk = profiled[offset:offset + request.n_columns]
                for profile in chunk:
                    profile.source_file = request.table.name
                profiles_by_request[id(request)] = chunk
                offset += request.n_columns
        for request in batch:
            if request.table is None:
                for profile in request.profiles:
                    profile.source_file = request.table_name
                profiles_by_request[id(request)] = request.profiles
        return profiles_by_request

    def _run_primary(
        self,
        batch: list[InferenceRequest],
        lease,
        profiles_by_request: dict[int, list],
    ) -> None:
        model = lease.model
        profiles = []
        for request in batch:
            profiles.extend(profiles_by_request[id(request)])
        pipeline = TypeInferencePipeline(model)
        label = getattr(model, "name", type(model).__name__)
        with telemetry.span(
            "serve.predict", n_columns=len(profiles), model=label
        ):
            predictions = pipeline.predict_profiles(profiles)
        offset = 0
        for request in batch:
            request.complete(
                predictions[offset:offset + request.n_columns],
                model=label, degraded=False,
                fingerprint=lease.fingerprint, generation=lease.generation,
            )
            offset += request.n_columns

    def _run_degraded(self, batch: list[InferenceRequest]) -> None:
        telemetry.count("serve.degraded_batches")
        for request in batch:
            if request.table is not None:
                columns = list(request.table)
            else:
                # Streamed request during a cold start: the raw cells are
                # gone, so the rules see each column's five sample values —
                # a documented approximation of the degraded answer (the
                # flowchart mostly keys on value syntax, which the samples
                # carry).
                columns = [
                    Column(profile.name, list(profile.samples))
                    for profile in request.profiles
                ]
            predictions = [
                ColumnPrediction(
                    column=column.name,
                    feature_type=self._fallback.infer_column(column),
                    confidence=FALLBACK_CONFIDENCE,
                )
                for column in columns
            ]
            request.complete(
                predictions, model=self._fallback.name, degraded=True
            )

    # -- status surfaces -----------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` body: service + model state in one dict."""
        if self.draining:
            status = "draining"
        elif self.registry.ready:
            status = "ready"
        else:
            status = "degraded"  # serving, but via the rules fallback
        return {
            "status": status,
            "ready": self.registry.ready,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.batcher.queue_depth,
            "queue_limit": self.batcher.queue_limit,
            "max_batch_columns": self.batcher.max_batch_columns,
            "max_wait_ms": round(1000.0 * self.batcher.max_wait_s, 3),
            "scan_cache_max_values": self.scan_cache_max_values,
            "model": self.registry.describe(),
            "default_model": self.registry.default_name,
            "models": self.registry.describe_all(),
        }
