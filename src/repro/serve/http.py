"""HTTP front end for :class:`~repro.serve.service.InferenceService`.

Stdlib-only (``http.server.ThreadingHTTPServer`` + ``json``).  Endpoints:

``POST /v1/infer``
    Body is either CSV text (``Content-Type: text/csv``, the raw upload) or
    a JSON payload ``{"table": name, "columns": [{"name": ..., "cells":
    [...]}]}``.  Optional ``?deadline_ms=N`` (or ``X-Deadline-Ms`` header)
    bounds end-to-end latency; an ``X-Repro-Model`` header routes the
    request to one registered model (absent → the default route).
    Responses: 200 with predictions, 400 on a malformed body, 404 for an
    unregistered model, 429 + ``Retry-After`` when the queue sheds, 503
    while draining, 504 past the deadline.

    ``?stream=1`` — or any CSV body larger than ``STREAM_BODY_BYTES`` —
    profiles the upload incrementally on the handler thread through
    :mod:`repro.sketch`: the body is read in bounded pieces straight into
    per-column sketches, so handler memory stays flat no matter how large
    the (still ``MAX_BODY_BYTES``-capped) upload is.  Only CSV bodies
    stream; ``stream=1`` with a JSON body is a 400.

``POST /v1/models/<name>/infer``
    Same as ``/v1/infer`` with the model route in the path (the path wins
    over ``X-Repro-Model``).

``POST /v1/models/<name>/swap``
    Zero-downtime hot swap of one registered model.  JSON body
    ``{"path": <artifact>, "wait": "flipped"|"drained"|"none",
    "timeout_s": N}``; the default ``wait: "flipped"`` blocks until the
    route atomically points at the new artifact (200 with the new
    fingerprint/generation), ``"drained"`` additionally waits for every
    in-flight batch against the old artifact, ``"none"`` returns 202
    immediately.  409 while another swap of the same model is loading;
    500 when the replacement artifact fails to load (the old model keeps
    serving).

``GET /v1/models``
    Every registered model with name, state (loading/ready/draining),
    fingerprint, and swap generation — the fleet routing table.

``GET /healthz``
    Service + model state, including every registered model's fingerprint,
    state, and swap generation (``models``).

``GET /metrics``
    Prometheus text exposition of the ``repro.obs`` metrics registry
    (``serve.request`` / ``serve.batch_size`` / ``serve.queue_depth`` /
    ``serve.shed`` and everything else the process recorded), including
    rolling-window quantiles.  ``Accept: application/json`` — or ``GET
    /metrics.json`` — returns the raw JSON snapshot instead.

Every ``POST /v1/infer`` honors an incoming W3C ``traceparent`` header:
the server's spans join the caller's trace, and the trace id is echoed in
the response body (``trace_id``) and the ``X-Trace-Id`` header.
"""

from __future__ import annotations

import json
import re
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from repro.core.featurize import ProfileError
from repro.faults import FaultInjectedError, faults
from repro.obs import (
    TraceContext,
    render_prometheus,
    telemetry,
    use_context,
)
from repro.serve.batching import QueueFullError, ServiceClosedError
from repro.serve.registry import SwapInProgressError, UnknownModelError
from repro.serve.service import InferenceService
from repro.sketch import StreamingProfiler
from repro.tabular.column import Column
from repro.tabular.csv_io import CSVReadError, iter_csv_chunks, read_csv_text
from repro.tabular.table import Table

MAX_BODY_BYTES = 64 * 1024 * 1024  # one upload, not a data lake

#: CSV bodies at/above this size stream through the sketch profiler even
#: without ``?stream=1`` — buffering them whole would multiply the body
#: size by the decoded-text + split-rows overhead per concurrent handler.
STREAM_BODY_BYTES = 8 * 1024 * 1024

#: Bytes per ``rfile.read`` on the streamed path.
STREAM_READ_BYTES = 1 << 16

#: ``POST /v1/models/<name>/(infer|swap)`` — the model route in the path.
_MODEL_PATH = re.compile(r"^/v1/models/([^/]+)/(infer|swap)$")


class BadRequestError(ValueError):
    """Client payload cannot be turned into a table (HTTP 400)."""


def table_from_json(payload) -> Table:
    """Decode the JSON column payload into a :class:`Table`."""
    if not isinstance(payload, dict):
        raise BadRequestError("JSON body must be an object")
    columns = payload.get("columns")
    if not isinstance(columns, list) or not columns:
        raise BadRequestError('JSON body needs a non-empty "columns" list')
    out = []
    for index, spec in enumerate(columns):
        if not isinstance(spec, dict) or "cells" not in spec:
            raise BadRequestError(
                f'columns[{index}] must be an object with "name" and "cells"'
            )
        cells = spec["cells"]
        if not isinstance(cells, list):
            raise BadRequestError(f"columns[{index}].cells must be a list")
        name = str(spec.get("name", f"column_{index}"))
        out.append(
            Column(name, [None if cell is None else str(cell) for cell in cells])
        )
    try:
        return Table(out, name=str(payload.get("table", "")))
    except ValueError as exc:  # ragged/duplicate columns
        raise BadRequestError(str(exc)) from exc


def parse_table(content_type: str, body: bytes, name: str = "upload") -> Table:
    """Decode a request body (CSV text or JSON columns) into a table."""
    kind = (content_type or "text/csv").split(";")[0].strip().lower()
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequestError(f"body is not UTF-8 ({exc.reason})") from exc
    if kind == "application/json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"invalid JSON body: {exc}") from exc
        return table_from_json(payload)
    try:
        return read_csv_text(text, name=name)
    except CSVReadError as exc:
        raise BadRequestError(str(exc)) from exc


class ServeHandler(BaseHTTPRequestHandler):
    """One HTTP connection; the service lives on ``self.server``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections time out so a drain can always finish
    # joining handler threads.
    timeout = 30

    @property
    def service(self) -> InferenceService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        path = urlparse(self.path).path
        if path == "/healthz":
            self._send_json(200, self.service.health())
        elif path == "/v1/models":
            registry = self.service.registry
            self._send_json(200, {
                "default": registry.default_name,
                "models": registry.describe_all(),
            })
        elif path == "/metrics.json":
            self._send_json(200, telemetry.metrics.snapshot())
        elif path == "/metrics":
            # Prometheus text exposition by default; JSON on request, so
            # pre-PR-6 scrapers that send Accept: application/json keep
            # working without switching to /metrics.json.
            if "application/json" in (self.headers.get("Accept") or ""):
                self._send_json(200, telemetry.metrics.snapshot())
            else:
                self._send_text(
                    200,
                    render_prometheus(telemetry.metrics.snapshot()),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802
        # A malformed/absent traceparent means "start fresh", never an error.
        context = TraceContext.from_traceparent(self.headers.get("traceparent"))
        with use_context(context):
            self._handle_post(context)

    def _handle_post(self, context: TraceContext | None) -> None:
        trace_id = context.trace_id if context is not None else None
        parsed = urlparse(self.path)
        model_name = self.headers.get("X-Repro-Model") or None
        match = _MODEL_PATH.match(parsed.path)
        if match is not None:
            model_name = unquote(match.group(1))  # the path wins
            if match.group(2) == "swap":
                self._handle_swap(model_name, trace_id)
                return
        elif parsed.path != "/v1/infer":
            self._send_json(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        try:
            # Chaos hook: a "serve.accept" rule sheds this request with a
            # retryable 503, exercising the client's backoff path.
            faults.point("serve.accept", path=parsed.path)
        except FaultInjectedError as exc:
            telemetry.count("serve.fault_reject")
            self._send_json(
                503,
                {"error": f"fault injected: {exc}", "retry_after_s": 0.05},
                headers={"Retry-After": "1"},
                trace_id=trace_id,
            )
            return
        if self.service.draining:
            self._send_json(
                503, {"error": "server is draining"}, trace_id=trace_id
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413 if length > MAX_BODY_BYTES else 400,
                {"error": f"Content-Length must be in (0, {MAX_BODY_BYTES}]"},
            )
            return
        name = self._query_value(parsed, "table") or "upload"
        kind = (
            (self.headers.get("Content-Type") or "text/csv")
            .split(";")[0].strip().lower()
        )
        try:
            deadline_s = self._deadline_s(parsed)
            stream = self._stream_requested(parsed)
            if stream and kind == "application/json":
                raise BadRequestError("stream=1 requires a CSV body")
        except BadRequestError as exc:
            telemetry.count("serve.bad_request")
            self._send_json(400, {"error": str(exc)}, trace_id=trace_id)
            return
        if stream or (kind != "application/json" and length >= STREAM_BODY_BYTES):
            self._handle_streamed_infer(
                name, length, deadline_s, trace_id, model_name
            )
            return
        body = self.rfile.read(length)
        try:
            table = parse_table(
                self.headers.get("Content-Type", ""), body, name=name
            )
        except BadRequestError as exc:
            telemetry.count("serve.bad_request")
            self._send_json(400, {"error": str(exc)}, trace_id=trace_id)
            return
        request = self._submit_infer(
            table.name, deadline_s, trace_id, table=table,
            model_name=model_name,
        )
        if request is not None:
            self._finish_infer(request, table.name, deadline_s, trace_id)

    def _handle_swap(self, model_name: str, trace_id: str | None) -> None:
        """``POST /v1/models/<name>/swap``: hot-swap one model's artifact."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400, {"error": "swap needs a JSON body with a model path"},
                trace_id=trace_id,
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(
                400, {"error": f"invalid JSON body: {exc}"}, trace_id=trace_id
            )
            return
        path = payload.get("path") if isinstance(payload, dict) else None
        wait = (
            payload.get("wait", "flipped") if isinstance(payload, dict)
            else "flipped"
        )
        timeout_s = (
            payload.get("timeout_s", 120.0) if isinstance(payload, dict)
            else 120.0
        )
        if not isinstance(path, str) or not path:
            self._send_json(
                400, {"error": 'swap body needs a "path" string'},
                trace_id=trace_id,
            )
            return
        if wait not in ("flipped", "drained", "none"):
            self._send_json(
                400,
                {"error": 'wait must be "flipped", "drained", or "none"'},
                trace_id=trace_id,
            )
            return
        try:
            handle = self.service.registry.swap(model_name, model_path=path)
        except UnknownModelError as exc:
            self._send_json(
                404, {"error": str(exc), "models": exc.known},
                trace_id=trace_id,
            )
            return
        except SwapInProgressError as exc:
            self._send_json(409, {"error": str(exc)}, trace_id=trace_id)
            return
        if wait == "none":
            self._send_json(
                202,
                {
                    "model": model_name,
                    "target_generation": handle.target_generation,
                    "state": "loading",
                },
                trace_id=trace_id,
            )
            return
        done = (
            handle.wait_drained(timeout=timeout_s) if wait == "drained"
            else handle.wait_flipped(timeout=timeout_s)
        )
        if handle.failed:
            self._send_json(
                500,
                {"error": f"swap failed: {handle.error}", "model": model_name},
                trace_id=trace_id,
            )
            return
        if not done:
            self._send_json(
                504,
                {
                    "error": f"swap not {wait} within {timeout_s}s",
                    "model": model_name,
                },
                trace_id=trace_id,
            )
            return
        entry = self.service.registry.resolve(model_name).describe()
        self._send_json(
            200,
            {"model": model_name, "swapped": wait, **entry},
            trace_id=trace_id,
        )

    def _handle_streamed_infer(
        self,
        name: str,
        length: int,
        deadline_s: float | None,
        trace_id: str | None,
        model_name: str | None = None,
    ) -> None:
        """Profile a CSV body incrementally, then enqueue the profiles.

        The body is read in ``STREAM_READ_BYTES`` pieces straight into
        :class:`~repro.sketch.StreamingProfiler` on this handler thread —
        nowhere does the raw upload (or the materialized table) exist in
        one piece.
        """
        telemetry.count("serve.stream_request")
        profiler = StreamingProfiler(
            source_file=name,
            scan_cache_max_values=self.service.scan_cache_max_values,
        )

        def pieces():
            remaining = length
            while remaining > 0:
                piece = self.rfile.read(min(STREAM_READ_BYTES, remaining))
                if not piece:
                    raise CSVReadError(
                        f"connection closed mid-upload "
                        f"({length - remaining} of {length} bytes)"
                    )
                remaining -= len(piece)
                yield piece

        try:
            with telemetry.span("serve.stream_profile", table=name):
                for chunk in iter_csv_chunks(pieces(), name=name):
                    profiler.consume(chunk)
                profiles = profiler.profiles()
        except (CSVReadError, ProfileError) as exc:
            # The socket may still hold unread body bytes; a keep-alive
            # reuse would read them as the next request line.
            self.close_connection = True
            telemetry.count("serve.bad_request")
            self._send_json(400, {"error": str(exc)}, trace_id=trace_id)
            return
        request = self._submit_infer(
            name, deadline_s, trace_id, profiles=profiles,
            model_name=model_name,
        )
        if request is not None:
            self._finish_infer(request, name, deadline_s, trace_id)

    def _submit_infer(
        self,
        name: str,
        deadline_s: float | None,
        trace_id: str | None,
        table: Table | None = None,
        profiles: list | None = None,
        model_name: str | None = None,
    ):
        """Submit to the service; on shed/drain/404, answer and return None."""
        try:
            if table is not None:
                return self.service.infer(
                    table, deadline_s=deadline_s, model_name=model_name
                )
            return self.service.infer_profiles(
                profiles, table_name=name, deadline_s=deadline_s,
                model_name=model_name,
            )
        except UnknownModelError as exc:
            telemetry.count("serve.unknown_model")
            self._send_json(
                404, {"error": str(exc), "models": exc.known},
                trace_id=trace_id,
            )
            return None
        except QueueFullError as exc:
            # A shed request without an incoming traceparent still has the
            # server-minted trace id (carried on the exception).
            trace_id = trace_id or getattr(exc, "trace_id", None)
            telemetry.warning(
                "serve.shed_request", table=name, trace_id=trace_id,
                queue_depth=exc.depth, queue_limit=exc.limit,
            )
            self._send_json(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(max(1, round(exc.retry_after_s)))},
                trace_id=trace_id,
            )
            return None
        except ServiceClosedError:
            self._send_json(
                503, {"error": "server is draining"}, trace_id=trace_id
            )
            return None

    def _finish_infer(
        self, request, name: str, deadline_s: float | None,
        trace_id: str | None,
    ) -> None:
        if trace_id is None and request.trace is not None:
            # No (valid) incoming traceparent: echo the trace the server
            # started for this request instead of dropping correlation.
            trace_id = request.trace.trace_id

        if request.predictions is None and request.error is None:
            telemetry.warning(
                "serve.deadline_exceeded", table=name,
                trace_id=trace_id,
                deadline_ms=round(1000.0 * deadline_s, 1)
                if deadline_s else None,
            )
            self._send_json(
                504,
                {
                    "error": "deadline exceeded",
                    "deadline_ms": round(1000.0 * deadline_s, 1)
                    if deadline_s else None,
                },
                trace_id=trace_id,
            )
            return
        if request.error is not None:
            if isinstance(request.error, ProfileError):
                # The upload's *content* defeated featurization — that is
                # the client's data, not a server fault.
                telemetry.count("serve.bad_request")
                status = 400
            elif "deadline" in str(request.error).lower():
                status = 504
            else:
                status = 500
            self._send_json(
                status, {"error": str(request.error)}, trace_id=trace_id
            )
            return
        self._send_json(
            200,
            {
                "table": name,
                "model": request.model,
                "fingerprint": request.fingerprint,
                "generation": request.generation,
                "degraded": request.degraded,
                "predictions": [p.as_dict() for p in request.predictions],
                "timing": {
                    "queue_ms": round(request.queue_ms, 3),
                    "infer_ms": round(request.infer_ms, 3),
                    "batch_requests": request.batch_requests,
                    "batch_columns": request.batch_columns,
                },
            },
            trace_id=trace_id,
        )

    # -- plumbing ------------------------------------------------------------
    def _stream_requested(self, parsed) -> bool:
        raw = self._query_value(parsed, "stream")
        if raw is None:
            return False
        value = raw.strip().lower()
        if value in ("1", "true", "yes", "on"):
            return True
        if value in ("0", "false", "no", "off", ""):
            return False
        raise BadRequestError(f"stream is not a boolean: {raw!r}")

    def _deadline_s(self, parsed) -> float | None:
        raw = self._query_value(parsed, "deadline_ms") or self.headers.get(
            "X-Deadline-Ms"
        )
        if raw is None:
            return None  # service default applies
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise BadRequestError(f"deadline_ms is not a number: {raw!r}")
        if deadline_ms <= 0:
            raise BadRequestError("deadline_ms must be positive")
        return deadline_ms / 1000.0

    @staticmethod
    def _query_value(parsed, key: str) -> str | None:
        values = parse_qs(parsed.query).get(key)
        return values[0] if values else None

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: dict | None = None,
        trace_id: str | None = None,
    ) -> None:
        if trace_id is not None:
            payload = {**payload, "trace_id": trace_id}
            headers = {**(headers or {}), "X-Trace-Id": trace_id}
        self._send_body(
            status, json.dumps(payload).encode("utf-8"),
            "application/json", headers,
        )

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain"
    ) -> None:
        self._send_body(status, text.encode("utf-8"), content_type, None)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict | None,
    ) -> None:
        try:
            # Chaos hook: a "serve.respond" rule drops the connection
            # before any bytes are written, so the client sees an abrupt
            # disconnect (never a torn half-response).
            faults.point("serve.respond", status=status)
        except FaultInjectedError:
            telemetry.count("serve.fault_disconnect")
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except BrokenPipeError:  # client gave up (e.g. its own timeout)
            telemetry.count("serve.client_gone")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        telemetry.debug("serve.http", client=self.address_string(),
                        line=format % args)


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns an :class:`InferenceService`.

    Handler threads are non-daemon and joined on close so a drain never
    cuts off an in-flight response mid-write.  Keep-alive makes each
    connection long-lived, so the server tracks every accepted socket:
    :meth:`shutdown_idle` half-closes them (read side only) after the
    service drain, turning each handler's next ``readline`` into EOF —
    idle persistent connections end immediately instead of holding the
    join for their 30 s keep-alive timeout, while in-flight responses
    still write out in full.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: InferenceService):
        super().__init__(address, ServeHandler)
        self.service = service
        self._conn_lock = threading.Lock()
        self._connections: set = set()

    def get_request(self):
        request, address = super().get_request()
        with self._conn_lock:
            self._connections.add(request)
        return request, address

    def shutdown_request(self, request) -> None:  # type: ignore[override]
        with self._conn_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def shutdown_idle(self) -> None:
        """Half-close every open connection so keep-alive handlers exit."""
        with self._conn_lock:
            connections = list(self._connections)
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass  # already closing


def make_server(
    host: str, port: int, service: InferenceService
) -> ServeHTTPServer:
    """Bind (port 0 picks an ephemeral port; read ``.server_port``)."""
    return ServeHTTPServer((host, port), service)
