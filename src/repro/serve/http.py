"""HTTP front end for :class:`~repro.serve.service.InferenceService`.

Stdlib-only (``http.server.ThreadingHTTPServer`` + ``json``).  Endpoints:

``POST /v1/infer``
    Body is either CSV text (``Content-Type: text/csv``, the raw upload) or
    a JSON payload ``{"table": name, "columns": [{"name": ..., "cells":
    [...]}]}``.  Optional ``?deadline_ms=N`` (or ``X-Deadline-Ms`` header)
    bounds end-to-end latency.  Responses: 200 with predictions, 400 on a
    malformed body, 429 + ``Retry-After`` when the queue sheds, 503 while
    draining, 504 past the deadline.

``GET /healthz``
    Service + model state (including the model artifact fingerprint).

``GET /metrics``
    JSON snapshot of the ``repro.obs`` metrics registry
    (``serve.request`` / ``serve.batch_size`` / ``serve.queue_depth`` /
    ``serve.shed`` and everything else the process recorded).
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.featurize import ProfileError
from repro.faults import FaultInjectedError, faults
from repro.obs import telemetry
from repro.serve.batching import QueueFullError, ServiceClosedError
from repro.serve.service import InferenceService
from repro.tabular.column import Column
from repro.tabular.csv_io import CSVReadError, read_csv_text
from repro.tabular.table import Table

MAX_BODY_BYTES = 64 * 1024 * 1024  # one upload, not a data lake


class BadRequestError(ValueError):
    """Client payload cannot be turned into a table (HTTP 400)."""


def table_from_json(payload) -> Table:
    """Decode the JSON column payload into a :class:`Table`."""
    if not isinstance(payload, dict):
        raise BadRequestError("JSON body must be an object")
    columns = payload.get("columns")
    if not isinstance(columns, list) or not columns:
        raise BadRequestError('JSON body needs a non-empty "columns" list')
    out = []
    for index, spec in enumerate(columns):
        if not isinstance(spec, dict) or "cells" not in spec:
            raise BadRequestError(
                f'columns[{index}] must be an object with "name" and "cells"'
            )
        cells = spec["cells"]
        if not isinstance(cells, list):
            raise BadRequestError(f"columns[{index}].cells must be a list")
        name = str(spec.get("name", f"column_{index}"))
        out.append(
            Column(name, [None if cell is None else str(cell) for cell in cells])
        )
    try:
        return Table(out, name=str(payload.get("table", "")))
    except ValueError as exc:  # ragged/duplicate columns
        raise BadRequestError(str(exc)) from exc


def parse_table(content_type: str, body: bytes, name: str = "upload") -> Table:
    """Decode a request body (CSV text or JSON columns) into a table."""
    kind = (content_type or "text/csv").split(";")[0].strip().lower()
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequestError(f"body is not UTF-8 ({exc.reason})") from exc
    if kind == "application/json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"invalid JSON body: {exc}") from exc
        return table_from_json(payload)
    try:
        return read_csv_text(text, name=name)
    except CSVReadError as exc:
        raise BadRequestError(str(exc)) from exc


class ServeHandler(BaseHTTPRequestHandler):
    """One HTTP connection; the service lives on ``self.server``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections time out so a drain can always finish
    # joining handler threads.
    timeout = 30

    @property
    def service(self) -> InferenceService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        path = urlparse(self.path).path
        if path == "/healthz":
            self._send_json(200, self.service.health())
        elif path == "/metrics":
            self._send_json(200, telemetry.metrics.snapshot())
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path != "/v1/infer":
            self._send_json(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        try:
            # Chaos hook: a "serve.accept" rule sheds this request with a
            # retryable 503, exercising the client's backoff path.
            faults.point("serve.accept", path=parsed.path)
        except FaultInjectedError as exc:
            telemetry.count("serve.fault_reject")
            self._send_json(
                503,
                {"error": f"fault injected: {exc}", "retry_after_s": 0.05},
                headers={"Retry-After": "1"},
            )
            return
        if self.service.draining:
            self._send_json(503, {"error": "server is draining"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413 if length > MAX_BODY_BYTES else 400,
                {"error": f"Content-Length must be in (0, {MAX_BODY_BYTES}]"},
            )
            return
        body = self.rfile.read(length)
        try:
            table = parse_table(
                self.headers.get("Content-Type", ""), body,
                name=self._query_value(parsed, "table") or "upload",
            )
            deadline_s = self._deadline_s(parsed)
        except BadRequestError as exc:
            telemetry.count("serve.bad_request")
            self._send_json(400, {"error": str(exc)})
            return

        try:
            request = self.service.infer(table, deadline_s=deadline_s)
        except QueueFullError as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            )
            return
        except ServiceClosedError:
            self._send_json(503, {"error": "server is draining"})
            return

        if request.predictions is None and request.error is None:
            self._send_json(
                504,
                {
                    "error": "deadline exceeded",
                    "deadline_ms": round(1000.0 * deadline_s, 1)
                    if deadline_s else None,
                },
            )
            return
        if request.error is not None:
            if isinstance(request.error, ProfileError):
                # The upload's *content* defeated featurization — that is
                # the client's data, not a server fault.
                telemetry.count("serve.bad_request")
                status = 400
            elif "deadline" in str(request.error).lower():
                status = 504
            else:
                status = 500
            self._send_json(status, {"error": str(request.error)})
            return
        self._send_json(
            200,
            {
                "table": table.name,
                "model": request.model,
                "degraded": request.degraded,
                "predictions": [p.as_dict() for p in request.predictions],
                "timing": {
                    "queue_ms": round(request.queue_ms, 3),
                    "infer_ms": round(request.infer_ms, 3),
                    "batch_requests": request.batch_requests,
                    "batch_columns": request.batch_columns,
                },
            },
        )

    # -- plumbing ------------------------------------------------------------
    def _deadline_s(self, parsed) -> float | None:
        raw = self._query_value(parsed, "deadline_ms") or self.headers.get(
            "X-Deadline-Ms"
        )
        if raw is None:
            return None  # service default applies
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise BadRequestError(f"deadline_ms is not a number: {raw!r}")
        if deadline_ms <= 0:
            raise BadRequestError("deadline_ms must be positive")
        return deadline_ms / 1000.0

    @staticmethod
    def _query_value(parsed, key: str) -> str | None:
        values = parse_qs(parsed.query).get(key)
        return values[0] if values else None

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        try:
            # Chaos hook: a "serve.respond" rule drops the connection
            # before any bytes are written, so the client sees an abrupt
            # disconnect (never a torn half-response).
            faults.point("serve.respond", status=status)
        except FaultInjectedError:
            telemetry.count("serve.fault_disconnect")
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except BrokenPipeError:  # client gave up (e.g. its own timeout)
            telemetry.count("serve.client_gone")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        telemetry.debug("serve.http", client=self.address_string(),
                        line=format % args)


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns an :class:`InferenceService`.

    Handler threads are non-daemon and joined on close so a drain never
    cuts off an in-flight response mid-write.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: InferenceService):
        super().__init__(address, ServeHandler)
        self.service = service


def make_server(
    host: str, port: int, service: InferenceService
) -> ServeHTTPServer:
    """Bind (port 0 picks an ephemeral port; read ``.server_port``)."""
    return ServeHTTPServer((host, port), service)
