"""repro.serve — long-lived batched feature-type inference service.

The serving layer the ROADMAP calls for: load fitted models once through a
multi-model :class:`~repro.serve.registry.ModelRegistry` (named,
fingerprinted artifacts with per-request routing and zero-downtime hot
swap), micro-batch concurrent column uploads through
:class:`~repro.serve.batching.MicroBatcher` (amortizing
``compute_stats_batch`` + ``predict_proba`` across requests), and expose it
all over stdlib HTTP (``POST /v1/infer``, ``POST /v1/models/<name>/infer``,
``GET /healthz``, ``GET /metrics``).  Horizontal scale-out is client-side:
:class:`~repro.serve.balance.FleetClient` balances over N serve processes
sharing one artifact cache.  See ``docs/serving.md``.
"""

from repro.serve.balance import FleetClient, NoBackendError
from repro.serve.batching import (
    DeadlineExceededError,
    InferenceRequest,
    MicroBatcher,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.client import RetryPolicy, ServeClient, ServeClientError
from repro.serve.registry import (
    ModelRegistry,
    SwapHandle,
    SwapInProgressError,
    TrainConfig,
    UnknownModelError,
)
from repro.serve.service import InferenceService

__all__ = [
    "DeadlineExceededError",
    "FleetClient",
    "InferenceRequest",
    "InferenceService",
    "MicroBatcher",
    "ModelRegistry",
    "NoBackendError",
    "QueueFullError",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ServiceClosedError",
    "SwapHandle",
    "SwapInProgressError",
    "TrainConfig",
    "UnknownModelError",
]
