"""repro.serve — long-lived batched feature-type inference service.

The serving layer the ROADMAP calls for: load fitted models once through a
:class:`~repro.serve.registry.ModelRegistry`, micro-batch concurrent column
uploads through :class:`~repro.serve.batching.MicroBatcher` (amortizing
``compute_stats_batch`` + ``predict_proba`` across requests), and expose it
all over stdlib HTTP (``POST /v1/infer``, ``GET /healthz``,
``GET /metrics``).  See ``docs/serving.md``.
"""

from repro.serve.batching import (
    DeadlineExceededError,
    InferenceRequest,
    MicroBatcher,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.registry import ModelRegistry, TrainConfig
from repro.serve.service import InferenceService

__all__ = [
    "DeadlineExceededError",
    "InferenceRequest",
    "InferenceService",
    "MicroBatcher",
    "ModelRegistry",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "ServiceClosedError",
    "TrainConfig",
]
