"""Client-side load balancer over N ``repro-serve`` processes.

Horizontal scale-out without a separate proxy tier: the fleet is N
independent serve processes (typically sharing one artifact cache dir, so
the PR 9 ``FileLock`` makes exactly one of them train the default model and
the rest warm-fetch), and :class:`FleetClient` spreads requests over them
from inside the caller.

Routing is least-in-flight: each request goes to the healthy backend with
the fewest outstanding requests (ties broken round-robin), which naturally
tracks differences in backend speed.  Failures fail over: a transport
error (backend died, connection refused) puts the backend in a short
cooldown and the request is re-sent to another backend; retryable HTTP
statuses (429 shed, 503 draining) fail over without cooldown — the backend
is alive, just busy.  The retry budget is one :class:`RetryPolicy` across
the whole fleet, so a request is never retried more times than a
single-backend client would.

Inference is pure (the servers hold no per-request state), so replaying a
request on another backend can never produce a different answer — the
scale-out parity tests in ``tests/test_serve_fleet.py`` pin exactly that.
Every underlying :class:`~repro.serve.client.ServeClient` keeps its
persistent connections, and each request still mints one trace context, so
``X-Trace-Id`` stitching works unchanged through failover.
"""

from __future__ import annotations

import random
import threading
import time

from repro.obs import telemetry
from repro.serve.client import (
    DEFAULT_RETRY,
    RetryPolicy,
    ServeClient,
    ServeClientError,
)


class NoBackendError(ServeClientError):
    """Every backend failed (or the fleet is empty)."""


class _Backend:
    __slots__ = ("url", "client", "inflight", "cooldown_until")

    def __init__(self, url: str, timeout_s: float, keep_alive: bool):
        self.url = url.rstrip("/")
        # Backends get single-shot clients: retry/failover policy lives in
        # the fleet loop, where the next attempt can pick a different
        # backend instead of hammering the failed one.
        self.client = ServeClient(
            self.url, timeout_s=timeout_s, retry=None, keep_alive=keep_alive
        )
        self.inflight = 0
        self.cooldown_until = 0.0


class FleetClient:
    """Balance requests over several serve processes; fail over on error.

    ``retry`` bounds attempts *across the fleet* (default
    :data:`~repro.serve.client.DEFAULT_RETRY`); ``cooldown_s`` is how long
    a backend sits out after a transport error before being eligible
    again.  Pass ``rng`` for a reproducible backoff schedule.
    """

    def __init__(
        self,
        base_urls: list[str],
        timeout_s: float = 60.0,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        rng: random.Random | None = None,
        cooldown_s: float = 0.5,
        keep_alive: bool = True,
    ):
        if not base_urls:
            raise ValueError("FleetClient needs at least one backend URL")
        self._backends = [
            _Backend(url, timeout_s, keep_alive) for url in base_urls
        ]
        self.retry = retry
        self.cooldown_s = cooldown_s
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._rr = 0

    @property
    def urls(self) -> list[str]:
        return [backend.url for backend in self._backends]

    # -- inference -----------------------------------------------------------
    def infer_csv_text(
        self,
        text: str,
        table: str | None = None,
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        return self._balanced(
            "infer_csv_text", text, table=table, deadline_ms=deadline_ms,
            model=model,
        )

    def infer_csv_file(
        self,
        path,
        table: str | None = None,
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        return self._balanced(
            "infer_csv_file", path, table=table, deadline_ms=deadline_ms,
            model=model,
        )

    def infer_columns(
        self,
        columns: list[dict],
        table: str = "",
        deadline_ms: float | None = None,
        model: str | None = None,
    ) -> dict:
        return self._balanced(
            "infer_columns", columns, table=table, deadline_ms=deadline_ms,
            model=model,
        )

    # -- fleet-wide operations -----------------------------------------------
    def swap_model(
        self,
        name: str,
        path,
        wait: str = "flipped",
        timeout_s: float = 120.0,
    ) -> dict:
        """Hot-swap ``name`` on *every* backend; ``{url: response}``.

        Raises the first failure after attempting all backends, so a fleet
        is never left silently split across artifacts.
        """
        results: dict = {}
        first_error: ServeClientError | None = None
        for backend in self._backends:
            try:
                results[backend.url] = backend.client.swap_model(
                    name, path, wait=wait, timeout_s=timeout_s
                )
            except ServeClientError as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def healthz(self) -> dict:
        """``{url: health dict}`` for every reachable backend."""
        out: dict = {}
        for backend in self._backends:
            try:
                out[backend.url] = backend.client.healthz()
            except ServeClientError as exc:
                out[backend.url] = {"status": "unreachable", "error": str(exc)}
        return out

    def wait_ready(self, timeout_s: float = 60.0, poll_s: float = 0.2) -> dict:
        """Block until every backend's default model is resident."""
        end = time.monotonic() + timeout_s
        out: dict = {}
        for backend in self._backends:
            remaining = max(poll_s, end - time.monotonic())
            out[backend.url] = backend.client.wait_ready(
                timeout_s=remaining, poll_s=poll_s
            )
        return out

    def close(self) -> None:
        for backend in self._backends:
            backend.client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- balancing core ------------------------------------------------------
    def _pick(self, tried: set) -> _Backend:
        with self._lock:
            now = time.monotonic()
            fresh = [
                b for b in self._backends
                if id(b) not in tried and b.cooldown_until <= now
            ]
            if not fresh:
                # Everyone tried or cooling: least-bad backend (ignore the
                # cooldown rather than fail — it may have just restarted).
                fresh = [
                    b for b in self._backends if id(b) not in tried
                ] or list(self._backends)
            self._rr += 1
            rr = self._rr
            backend = min(
                fresh,
                key=lambda b: (b.inflight, (rr + self._backends.index(b))
                               % len(self._backends)),
            )
            backend.inflight += 1
            return backend

    def _release(self, backend: _Backend) -> None:
        with self._lock:
            backend.inflight -= 1

    def _cool(self, backend: _Backend) -> None:
        with self._lock:
            backend.cooldown_until = time.monotonic() + self.cooldown_s

    def _balanced(self, method: str, *args, **kwargs) -> dict:
        policy = self.retry
        max_attempts = policy.max_attempts if policy else 1
        # Failing over to an untried backend does not consume retry budget:
        # with N backends a request may probe each one once, *then* the
        # policy's backoff/attempt accounting kicks in.
        max_attempts += len(self._backends) - 1
        deadline = (
            time.monotonic() + policy.total_deadline_s if policy else None
        )
        tried: set = set()
        attempt = 1
        while True:
            backend = self._pick(tried)
            try:
                return getattr(backend.client, method)(*args, **kwargs)
            except ServeClientError as exc:
                retryable = exc.transport or (
                    policy is not None and exc.status in policy.retry_statuses
                )
                if exc.transport:
                    # The backend itself failed — sit it out briefly so the
                    # fleet stops routing load at a dead process.
                    self._cool(backend)
                    telemetry.count("fleet.backend_down")
                if not retryable or attempt >= max_attempts:
                    raise
                tried.add(id(backend))
                swept = len(tried) >= len(self._backends)
                if swept:
                    tried.clear()  # every backend probed: start over
                delay = 0.0
                if policy is not None and swept:
                    # A full fleet sweep failed; back off before sweep N+1.
                    delay = min(
                        policy.max_delay_s,
                        policy.base_delay_s * 2 ** (attempt - 1),
                    ) * (1.0 + policy.jitter * self._rng.random())
                    if exc.retry_after_s is not None:
                        delay = max(delay, exc.retry_after_s)
                if deadline is not None and (
                    time.monotonic() + delay > deadline
                ):
                    raise
                telemetry.count("fleet.failover")
                if delay:
                    time.sleep(delay)
                attempt += 1
            finally:
                self._release(backend)
