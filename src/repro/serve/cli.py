"""``repro-serve``: run the batched type-inference service.

Usage::

    repro-serve --model rf.model                  # serve a saved artifact
    repro-serve --cache-dir ~/.cache/repro        # train-through-cache
    repro-serve --port 0                          # ephemeral port (printed)

The process answers immediately: while the primary model loads (or trains),
``POST /v1/infer`` is served by the rule-based fallback with
``degraded: true``.  SIGTERM/SIGINT triggers a graceful drain: new requests
get 503, queued requests finish, then the process exits 0.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

from repro.cache import ArtifactCache
from repro.faults import add_fault_flags, configure_faults
from repro.obs import (
    RunManifest,
    add_observability_flags,
    telemetry,
)
from repro.obs.export import write_json, write_spans_jsonl
from repro.serve.http import make_server
from repro.serve.registry import ModelRegistry, TrainConfig
from repro.serve.service import InferenceService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived batched feature type inference over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8099,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    model = parser.add_argument_group("model")
    model.add_argument(
        "--model", dest="models", action="append", default=None,
        metavar="[NAME=]PATH",
        help="saved model artifact to serve; repeatable — NAME=PATH "
             "registers it under NAME (default name: the file stem). "
             "Without any --model, a default model is trained at startup.",
    )
    model.add_argument(
        "--default-model", default=None, metavar="NAME",
        help="which registered model answers un-routed requests "
             "(default: the first --model)",
    )
    model.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="artifact cache for the train-at-startup path (default "
             "$REPRO_CACHE_DIR; a warm cache makes restarts near-instant)",
    )
    model.add_argument("--trees", type=int, default=50)
    model.add_argument("--seed", type=int, default=0)
    model.add_argument("--train-examples", type=int, default=1500)
    model.add_argument(
        "--wait-ready", action="store_true",
        help="block until the primary model is resident before serving "
             "(disables the degraded-start window)",
    )
    batching = parser.add_argument_group("batching & robustness")
    batching.add_argument(
        "--max-batch-columns", type=int, default=256, metavar="N",
        help="column budget per micro-batch",
    )
    batching.add_argument(
        "--max-wait-ms", type=float, default=10.0, metavar="MS",
        help="batch gathering window; higher = bigger batches, more latency",
    )
    batching.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="bounded queue size; submissions past it are shed with 429",
    )
    batching.add_argument(
        "--deadline-ms", type=float, default=30000.0, metavar="MS",
        help="default per-request deadline (clients override per call)",
    )
    batching.add_argument(
        "--scan-cache-max-values", type=int, default=200_000, metavar="N",
        help="distinct cell values retained in the cross-request stats scan "
             "cache (and per streamed upload) before it is recycled; lower "
             "bounds resident memory tighter at the cost of re-scanning "
             "repeated values",
    )
    add_fault_flags(parser)
    add_observability_flags(parser)
    return parser


def _parse_model_specs(specs: list[str] | None) -> list[tuple[str, str]]:
    """``[NAME=]PATH`` flags → ``[(name, path)]`` (name defaults to stem)."""
    out: list[tuple[str, str]] = []
    for spec in specs or []:
        name, sep, path = spec.partition("=")
        if sep and name and os.sep not in name:
            out.append((name, path))
        else:
            out.append((os.path.splitext(os.path.basename(spec))[0], spec))
    return out


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    # A server's /metrics endpoint is only useful with telemetry on, so
    # unlike the batch CLIs, repro-serve always enables it.
    telemetry.enable(log_level=args.log_level or "info")
    configure_faults(args)

    specs = _parse_model_specs(args.models)
    names = [name for name, _ in specs]
    if len(set(names)) != len(names):
        print(f"repro-serve: duplicate model names in --model: {names}",
              file=sys.stderr)
        return 1
    default_name = args.default_model
    if default_name is not None and specs and default_name not in names:
        print(f"repro-serve: --default-model {default_name!r} is not among "
              f"--model names {names}", file=sys.stderr)
        return 1

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache = ArtifactCache(cache_dir) if cache_dir and not specs else None
    train = TrainConfig(
        n_examples=args.train_examples, trees=args.trees, seed=args.seed
    )
    if specs:
        if default_name is None:
            default_name = names[0]
        default_path = dict(specs)[default_name]
        registry = ModelRegistry(
            model_path=default_path, train=train, default_name=default_name
        )
        for name, path in specs:
            if name != default_name:
                registry.register(name, model_path=path)
    else:
        registry = ModelRegistry(cache=cache, train=train)
    service = InferenceService(
        registry,
        max_batch_columns=args.max_batch_columns,
        max_wait_s=args.max_wait_ms / 1000.0,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline_ms / 1000.0,
        scan_cache_max_values=args.scan_cache_max_values,
    )
    try:
        server = make_server(args.host, args.port, service)
    except OSError as exc:
        print(f"repro-serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    service.start(load_in_background=not args.wait_ready)
    if args.wait_ready:
        failed = [
            (name, entry["error"])
            for name, entry in registry.describe_all().items()
            if entry["state"] == "failed"
        ]
        if failed:
            for name, error in failed:
                print(f"repro-serve: model {name!r} load failed: {error}",
                      file=sys.stderr)
            return 1

    manifest = RunManifest(
        command="repro-serve",
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=args.seed,
        scale=args.train_examples,
        model_path=",".join(path for _, path in specs) or None,
        cache_dir=str(cache_dir) if cache_dir else None,
    )

    # The startup line is machine-readable on purpose: tests and
    # bench_serve.py parse the URL (--port 0 binds an ephemeral port).
    described = (
        "artifacts " + ",".join(names) if specs else "training"
    )
    print(
        f"repro-serve listening on http://{args.host}:{server.server_port} "
        f"(model: {described})",
        flush=True,
    )

    stop = threading.Event()

    def _graceful(signum, frame):
        telemetry.info("serve.signal", signal=signal.Signals(signum).name)
        stop.set()
        # shutdown() must come from another thread than serve_forever().
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        # Drain: refuse new work (503), finish queued requests, half-close
        # idle keep-alive connections, then join handler threads so every
        # accepted request gets its response.
        service.drain()
        server.shutdown_idle()
        server.server_close()
        if args.metrics_out:
            write_json(args.metrics_out, telemetry.metrics.snapshot())
        if args.trace_out:
            n = write_spans_jsonl(args.trace_out, telemetry.spans)
            telemetry.info("serve.trace_exported", path=args.trace_out,
                           spans=n, dropped=telemetry.tracer.dropped)
        if args.manifest:
            manifest.extra["model_fingerprint"] = registry.fingerprint
            manifest.extra["model_state"] = registry.state
            manifest.extra["models"] = registry.describe_all()
            manifest.finalize(telemetry)
            manifest.write(args.manifest)
        print("repro-serve: drained, bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
