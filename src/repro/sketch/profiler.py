"""Drive per-column sketches over an incremental CSV chunk stream.

:class:`StreamingProfiler` consumes :class:`~repro.tabular.csv_io.CSVChunk`
objects (from :func:`~repro.tabular.csv_io.iter_csv_chunks`) and produces
the same ``list[ColumnProfile]`` that ``profile_table`` computes from a
materialized :class:`~repro.tabular.table.Table` — under a memory
footprint bounded by the chunk size, the distinct cap, and the scan-cache
recycle threshold, independent of the number of rows.

:func:`profile_csv_stream` is the one-call convenience wrapper used by
``repro-infer --stream``.
"""

from __future__ import annotations

import os

from repro.core.featurize import _KERNEL_ERRORS, ColumnProfile, ProfileError
from repro.core.stats import StatsScanCache
from repro.obs import telemetry
from repro.sketch.column import ColumnSketch, SketchConfig
from repro.tabular.csv_io import CSVChunk, iter_csv_chunks

#: Rows gathered per CSV chunk: large enough to amortize the vectorized
#: scan, small enough that a chunk of wide text rows stays a few MB.
DEFAULT_CHUNK_ROWS = 16_384

#: Distinct cell values retained in the shared scan cache before it is
#: dropped and restarted (the ``repro.serve`` recycle idiom) — bounds the
#: interning table on high-cardinality streams.
DEFAULT_SCAN_CACHE_MAX_VALUES = 200_000


class StreamingProfiler:
    """Accumulate column sketches chunk by chunk; finalize to profiles.

    The profiler owns the shared :class:`~repro.core.stats.StatsScanCache`
    (recycled past ``scan_cache_max_values`` interned values) and the
    global row counter that keeps "head" sample order exact across chunks.
    ``row_offset`` seeds that counter for shard profilers whose
    :meth:`merge` results must behave as if one profiler saw every row.
    """

    def __init__(
        self,
        source_file: str = "",
        config: SketchConfig | None = None,
        scan_cache_max_values: int = DEFAULT_SCAN_CACHE_MAX_VALUES,
        row_offset: int = 0,
    ):
        self.source_file = source_file
        self.config = config if config is not None else SketchConfig()
        self.scan_cache_max_values = scan_cache_max_values
        self._cache = StatsScanCache()
        self._sketches: list[ColumnSketch] | None = None
        self._names: list[str] | None = None
        self._rows_seen = 0
        self._row_offset = row_offset
        self._n_chunks = 0

    @property
    def column_names(self) -> list[str] | None:
        return list(self._names) if self._names is not None else None

    @property
    def n_rows(self) -> int:
        return self._rows_seen

    def consume(self, chunk: CSVChunk) -> None:
        """Fold one CSV chunk into the per-column sketches."""
        if self._names is None:
            self._names = list(chunk.header)
            self._sketches = [
                ColumnSketch(name, self.config) for name in self._names
            ]
        elif list(chunk.header) != self._names:
            raise ProfileError(
                f"chunk header changed mid-stream for {self.source_file!r}: "
                f"{self._names} -> {list(chunk.header)}"
            )
        rows = chunk.rows
        if not rows:
            return
        offset = self._row_offset + self._rows_seen
        with telemetry.span(
            "sketch.chunk",
            source=self.source_file,
            index=self._n_chunks,
            n_rows=len(rows),
        ):
            for sketch, cells in zip(self._sketches, zip(*rows)):
                try:
                    sketch.update(
                        cells, scan_cache=self._cache, cell_offset=offset
                    )
                except _KERNEL_ERRORS as exc:
                    raise ProfileError(
                        f"cannot featurize column {sketch.name!r}"
                        f"{f' of {self.source_file!r}' if self.source_file else ''}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
        self._rows_seen += len(rows)
        self._n_chunks += 1
        telemetry.count("sketch.chunks")
        telemetry.count("sketch.rows", len(rows))
        if len(self._cache.values) > self.scan_cache_max_values:
            telemetry.count("sketch.scan_cache_reset")
            self._cache = StatsScanCache()

    def merge(self, other: "StreamingProfiler") -> "StreamingProfiler":
        """Fold a shard profiler (disjoint row ranges, same header) in."""
        if other._names is None:
            return self
        if self._names is None:
            self._names = list(other._names)
            self._sketches = other._sketches
            self._rows_seen = other._rows_seen
            self._n_chunks = other._n_chunks
            return self
        if self._names != other._names:
            raise ProfileError(
                f"cannot merge profilers with different headers: "
                f"{self._names} vs {other._names}"
            )
        for mine, theirs in zip(self._sketches, other._sketches):
            mine.merge(theirs)
        self._rows_seen += other._rows_seen
        self._n_chunks += other._n_chunks
        return self

    def profiles(self) -> list[ColumnProfile]:
        """Finalize every sketch into a ``ColumnProfile``."""
        if self._sketches is None:
            raise ProfileError(
                f"no CSV chunks consumed for {self.source_file!r}"
            )
        probe_cache = self._cache.probe_cache
        out: list[ColumnProfile] = []
        with telemetry.span(
            "sketch.finalize",
            source=self.source_file,
            n_columns=len(self._sketches),
            n_rows=self._rows_seen,
        ):
            for sketch in self._sketches:
                try:
                    stats = sketch.finalize(probe_cache=probe_cache)
                except _KERNEL_ERRORS as exc:
                    raise ProfileError(
                        f"cannot featurize column {sketch.name!r}"
                        f"{f' of {self.source_file!r}' if self.source_file else ''}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                out.append(
                    ColumnProfile(
                        name=sketch.name,
                        samples=sketch.samples(),
                        stats=stats,
                        source_file=self.source_file,
                    )
                )
        telemetry.count("featurize.columns", len(out))
        return out


def profile_csv_stream(
    source,
    name: str = "",
    config: SketchConfig | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    io_chunk_bytes: int | None = None,
    delimiter: str | None = None,
    scan_cache_max_values: int = DEFAULT_SCAN_CACHE_MAX_VALUES,
) -> list[ColumnProfile]:
    """Profile a CSV source (path, binary file, or bytes iterable) in one
    bounded-memory pass.  Raises
    :class:`~repro.tabular.csv_io.CSVReadError` on unreadable input and
    :class:`~repro.core.featurize.ProfileError` on unfeaturizable content,
    mirroring ``load_csv_table`` + ``profile_table``.
    """
    if not name and isinstance(source, (str, os.PathLike)):
        name = os.path.splitext(os.path.basename(os.fspath(source)))[0]
    profiler = StreamingProfiler(
        source_file=name,
        config=config,
        scan_cache_max_values=scan_cache_max_values,
    )
    kwargs = {"chunk_rows": chunk_rows, "delimiter": delimiter, "name": name}
    if io_chunk_bytes is not None:
        kwargs["io_chunk_bytes"] = io_chunk_bytes
    for chunk in iter_csv_chunks(source, **kwargs):
        profiler.consume(chunk)
    return profiler.profiles()
