"""``repro.sketch``: bounded-memory streaming profiler with mergeable
per-column sketches.

The paper's base featurization (Section 2.3: counts, numeric moments,
distinct values, five sample values per column) is entirely one-pass
computable.  This package computes it without materializing the column:

* :class:`~repro.sketch.accumulator.ExactMoments` — order-independent
  exact sum / sum-of-squares / min / max of float64 values.
* :class:`~repro.sketch.column.ColumnSketch` — accumulates the 25
  descriptive statistics incrementally via ``update(cells)``, merges
  order-independently via ``merge(other)``, and ``finalize()``-s to a
  :class:`~repro.core.stats.DescriptiveStats` matching
  ``compute_stats_batch`` (bit-identical except the documented
  float-reassociation delta on ``mean_value``/``std_value``).
* :class:`~repro.sketch.profiler.StreamingProfiler` /
  :func:`~repro.sketch.profiler.profile_csv_stream` — drive sketches over
  :func:`~repro.tabular.csv_io.iter_csv_chunks` to
  ``profile_columns``-equivalent :class:`~repro.core.featurize.ColumnProfile`
  output under a bounded memory footprint.

This is the substrate the distributed-stats roadmap item will merge across
hosts: shard sketches of the same column combine with ``merge`` in any
order.
"""

from repro.sketch.accumulator import ExactMoments
from repro.sketch.column import (
    DEFAULT_DISTINCT_CAP,
    ColumnSketch,
    SketchConfig,
)
from repro.sketch.profiler import (
    DEFAULT_CHUNK_ROWS,
    StreamingProfiler,
    profile_csv_stream,
)

__all__ = [
    "ColumnSketch",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_DISTINCT_CAP",
    "ExactMoments",
    "SketchConfig",
    "StreamingProfiler",
    "profile_csv_stream",
]
