"""A mergeable, bounded-memory sketch of one column's 25 descriptive stats.

:class:`ColumnSketch` is the streaming counterpart of
:func:`repro.core.stats.compute_stats_batch`: cells arrive in chunks
through :meth:`ColumnSketch.update`, shard sketches combine through
:meth:`ColumnSketch.merge` (order-independently), and
:meth:`ColumnSketch.finalize` emits a
:class:`~repro.core.stats.DescriptiveStats`.

Parity contract (asserted in ``tests/test_sketch.py``):

* 23 of the 25 statistics are **bit-identical** to the batch kernel on the
  same rows: all count/percentage stats, the five shape-count mean/std
  pairs (their segment sums are exact integers in both kernels),
  ``min_value``/``max_value``, ``numeric_fraction``, and the five boolean
  sample probes.
* ``mean_value``/``std_value`` carry the documented float-reassociation
  delta: the sketch accumulates the *exact* moments
  (:class:`~repro.sketch.accumulator.ExactMoments`) and rounds once, while
  numpy's pairwise summation rounds in element order.  The difference is
  numpy's own summation error — ulp-level for well-conditioned data.
* ``num_distinct`` is exact until ``distinct_cap`` values have been seen;
  past the cap the sketch spills (drops the value set, reports exactly the
  cap) and raises the ``distinct_overflowed`` flag.  Spilling is a sticky
  state, so merge stays order-independent.

Bounded state: the distinct-value dict is capped, sample candidates are
capped at ``sample_k``, and the moment accumulators are O(1).  The
per-chunk scan reuses the PR 2 LUT/segment-sum kernel through a shared
:class:`~repro.core.stats.StatsScanCache` (whose recycling is the
caller's — typically the profiler's — responsibility).
"""

from __future__ import annotations

import hashlib
import math
from bisect import insort
from dataclasses import dataclass

import numpy as np

from repro.core.stats import (
    N_STATS,
    DescriptiveStats,
    StatsScanCache,
    _finite,
    _probe_samples,
)
from repro.obs import telemetry
from repro.sketch.accumulator import ExactMoments
from repro.tabular.dtypes import is_missing

#: Distinct values tracked per column before the sketch spills.  Sized so
#: benchmark-scale columns (hundreds of rows) never spill while a single
#: high-cardinality column stays under ~10 MB of interned strings.
DEFAULT_DISTINCT_CAP = 65_536

#: The paper samples five distinct values per column (Section 2.3).
N_SAMPLE_VALUES = 5


@dataclass(frozen=True)
class SketchConfig:
    """Shared knobs of a sketch family; merging requires equal configs.

    ``sample_mode`` picks how the five sample values are drawn:

    * ``"head"`` — the first ``sample_k`` distinct values in global cell
      order, matching ``Column.head_distinct`` (and therefore the batch
      profiler's deterministic default) exactly, even across merges.
    * ``"reservoir"`` — a seeded bottom-k hash sample over the distinct
      values: each distinct value's ``blake2b(seed || value)`` digest is
      computed once and the ``sample_k`` smallest digests win.  The result
      depends only on the *set* of distinct values, so it is
      order-independent and mergeable, and stays unbiased past the
      distinct cap.
    """

    distinct_cap: int = DEFAULT_DISTINCT_CAP
    sample_mode: str = "head"
    sample_k: int = N_SAMPLE_VALUES
    seed: int = 0

    def __post_init__(self):
        if self.sample_mode not in ("head", "reservoir"):
            raise ValueError(f"unknown sample_mode: {self.sample_mode!r}")
        if self.distinct_cap < 1:
            raise ValueError("distinct_cap must be positive")
        if self.sample_k < 0:
            raise ValueError("sample_k must be >= 0")


def _sample_digest(seed: int, value: str) -> bytes:
    """Deterministic per-value digest driving the bottom-k reservoir."""
    payload = f"{seed}:".encode("ascii") + value.encode("utf-8", "surrogatepass")
    return hashlib.blake2b(payload, digest_size=8).digest()


class ColumnSketch:
    """Streaming accumulator of the 25 descriptive statistics of one column."""

    def __init__(self, name: str, config: SketchConfig | None = None):
        self.name = name
        self.config = config if config is not None else SketchConfig()
        self.n_total = 0
        self.n_present = 0
        self.n_chunks = 0
        self.distinct_overflowed = False
        #: distinct value -> None, insertion-ordered = global first-seen
        #: order (for sequentially-updated sketches).
        self._distinct: dict[str, None] = {}
        # Exact integer sums/sum-of-squares of the 5 shape counts
        # (word/stopword/char/whitespace/delimiter), over present cells.
        self._count_sums = [0, 0, 0, 0, 0]
        self._count_sumsqs = [0, 0, 0, 0, 0]
        self._moments = ExactMoments()
        #: head-sample candidates: value -> global first-occurrence cell
        #: index; while fewer than ``sample_k`` distinct values have been
        #: seen (``_head_open``) every distinct value is a candidate.
        self._head: dict[str, int] = {}
        self._head_open = self.config.sample_k > 0
        #: bottom-k reservoir: sorted (digest, value) pairs, k smallest.
        self._reservoir: list[tuple[bytes, str]] = []
        self._reservoir_members: set[str] = set()

    # -- accumulation --------------------------------------------------------
    def update(
        self,
        cells,
        scan_cache: StatsScanCache | None = None,
        cell_offset: int | None = None,
    ) -> None:
        """Fold a chunk of raw cells (strings or ``None``) into the sketch.

        Cells are normalized exactly like :class:`~repro.tabular.column.Column`
        (``str()`` then missing-token detection), so feeding raw CSV rows and
        feeding ``Column.cells`` produce identical sketches.

        ``scan_cache`` should be shared across chunks/columns so repeated
        values are scanned once (the caller bounds and recycles it);
        without one, a throwaway cache serves the single chunk.

        ``cell_offset`` is the global index of ``cells[0]`` within the full
        column; it defaults to sequential growth (``self.n_total``).  Shard
        sketches that will be merged must pass their true offsets so the
        "head" sample order is global, not per-shard.
        """
        if cell_offset is None:
            cell_offset = self.n_total
        k = self.config.sample_k
        head = self._head
        head_open = self._head_open
        present: list[str] = []
        append = present.append
        index = cell_offset
        for cell in cells:
            if cell is not None:
                text = cell if type(cell) is str else str(cell)
                if not is_missing(text):
                    append(text)
                    if head_open and text not in head:
                        head[text] = index
                        if len(head) >= k:
                            head_open = False
            index += 1
        self._head_open = head_open
        self.n_total += len(cells)
        self.n_present += len(present)
        self.n_chunks += 1

        if not self.distinct_overflowed:
            distinct = self._distinct
            distinct.update(dict.fromkeys(present))
            if len(distinct) > self.config.distinct_cap:
                self._spill_distinct()

        if not present:
            return
        cache = scan_cache if scan_cache is not None else StatsScanCache()
        interned = cache.value_index.__getitem__
        codes = list(map(interned, present))
        cache.scan_novel()
        code_arr = np.asarray(codes, dtype=np.intp)
        uniq, freq = np.unique(code_arr, return_counts=True)
        weights = freq.astype(float)
        # Frequency-weighted segment sums: every term is an exact integer
        # in float64 (counts are small ints, chunk totals << 2**53), so
        # these equal the batch kernel's per-cell reduceat sums exactly.
        sub = cache.counts[:, uniq]
        sums = sub @ weights
        sumsq = (sub * sub) @ weights
        for j in range(5):
            self._count_sums[j] += int(sums[j])
            self._count_sumsqs[j] += int(sumsq[j])
        parsed = cache.parsed[uniq]
        numeric_mask = ~np.isnan(parsed)
        if numeric_mask.any():
            self._moments.add_many(
                parsed[numeric_mask].tolist(), freq[numeric_mask].tolist()
            )
        if self.config.sample_mode == "reservoir":
            self._update_reservoir(
                cache.values[code] for code in uniq.tolist()
            )
        if telemetry.enabled:
            telemetry.count("sketch.cells", len(cells))

    def _spill_distinct(self) -> None:
        """Stop tracking distinct values; report exactly the cap from now on.

        Dropping the set (instead of LRU-evicting within it) keeps
        ``num_distinct`` a pure function of the accumulated multiset, so
        merge order cannot change the reported value.
        """
        self.distinct_overflowed = True
        self._distinct = {}
        telemetry.count("sketch.distinct_spilled")

    def _update_reservoir(self, candidates) -> None:
        k = self.config.sample_k
        if k <= 0:
            return
        reservoir = self._reservoir
        members = self._reservoir_members
        seed = self.config.seed
        for value in candidates:
            if value in members:
                continue
            entry = (_sample_digest(seed, value), value)
            if len(reservoir) < k:
                insort(reservoir, entry)
                members.add(value)
            elif entry < reservoir[-1]:
                members.discard(reservoir.pop()[1])
                insort(reservoir, entry)
                members.add(value)

    # -- merging -------------------------------------------------------------
    def merge(self, other: "ColumnSketch") -> "ColumnSketch":
        """Fold ``other`` (a sketch of disjoint cells of the same column)
        into this sketch.  Order-independent: any merge tree over the same
        set of chunk sketches produces the same final state.
        """
        if self.config != other.config:
            raise ValueError(
                f"cannot merge sketches with different configs: "
                f"{self.config} vs {other.config}"
            )
        self.n_total += other.n_total
        self.n_present += other.n_present
        self.n_chunks += other.n_chunks
        for j in range(5):
            self._count_sums[j] += other._count_sums[j]
            self._count_sumsqs[j] += other._count_sumsqs[j]
        self._moments.merge(other._moments)

        # Head samples: keep each value's smallest first-occurrence index,
        # then trim to the k earliest.  A value of the true global head is
        # always within the first k distinct of the shard holding its first
        # occurrence, so the union of shard heads covers it and trimming is
        # exact.
        k = self.config.sample_k
        head = self._head
        for value, index in other._head.items():
            current = head.get(value)
            if current is None or index < current:
                head[value] = index
        if len(head) > k:
            self._head = dict(
                sorted(head.items(), key=lambda item: item[1])[:k]
            )
        self._head_open = len(self._head) < k

        if self.distinct_overflowed or other.distinct_overflowed:
            if not self.distinct_overflowed:
                self._spill_distinct()
        else:
            self._distinct.update(dict.fromkeys(other._distinct))
            if len(self._distinct) > self.config.distinct_cap:
                self._spill_distinct()

        if self.config.sample_mode == "reservoir":
            self._update_reservoir(value for _, value in other._reservoir)
        telemetry.count("sketch.merge")
        return self

    # -- results -------------------------------------------------------------
    @property
    def distinct_count(self) -> int:
        """Exact distinct count, or the cap once the sketch spilled."""
        if self.distinct_overflowed:
            return self.config.distinct_cap
        return len(self._distinct)

    def distinct_values(self) -> list[str]:
        """The distinct values in first-seen order (sequential updates).

        Unavailable after a spill — callers that need the full domain
        (e.g. rng-driven sampling) must size ``distinct_cap`` above it.
        """
        if self.distinct_overflowed:
            raise ValueError(
                f"distinct values of column {self.name!r} spilled at "
                f"cap {self.config.distinct_cap}"
            )
        return list(self._distinct)

    def samples(self) -> list[str]:
        """The sample values the finalize-time probes run over."""
        if self.config.sample_mode == "reservoir":
            return [value for _, value in self._reservoir]
        ordered = sorted(self._head.items(), key=lambda item: item[1])
        return [value for value, _ in ordered]

    def finalize(
        self,
        samples: list[str] | None = None,
        probe_cache: dict | None = None,
    ) -> DescriptiveStats:
        """The 25 descriptive statistics of everything accumulated so far.

        Replays the batch kernel's finalization arithmetic operation for
        operation (same IEEE divisions, same ``_finite`` clamps) over the
        sketch's exact integer sums.  ``samples`` overrides the sketch's
        own sample values (the datagen path supplies rng-drawn ones);
        ``probe_cache`` memoizes regex probes across columns.
        """
        row = np.zeros(N_STATS)
        total = self.n_total
        n_present = self.n_present
        row[0] = float(total)
        row[1] = float(total - n_present)
        row[3] = float(self.distinct_count)
        if total:
            row[2] = row[1] / row[0]
            row[4] = row[3] / row[0]
        if n_present:
            denom = float(n_present)
            for j in range(5):
                mean = float(self._count_sums[j]) / denom
                variance = float(self._count_sumsqs[j]) / denom - mean * mean
                if variance < 0.0:
                    variance = 0.0
                row[9 + 2 * j] = mean
                row[10 + 2 * j] = math.sqrt(variance)
            n_numeric = self._moments.count
            if n_numeric:
                mean, std = self._moments.mean_std()
                row[5] = _finite(mean)
                row[6] = _finite(std)
                row[7] = _finite(self._moments.min)
                row[8] = _finite(self._moments.max)
            row[19] = n_numeric / n_present
        if samples is None:
            samples = self.samples()
        cache = probe_cache if probe_cache is not None else {}
        row[20:25] = _probe_samples(samples, cache)
        return DescriptiveStats(row)
