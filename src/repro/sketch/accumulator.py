"""Exact, order-independent moment accumulation for float64 values.

``compute_stats_batch`` computes ``numeric.mean()`` / ``numeric.std()``
with numpy, whose pairwise summation rounds differently depending on
element *order* — a mergeable sketch cannot reproduce that bit pattern
without replaying the exact element sequence.  Instead of chasing numpy's
rounding, :class:`ExactMoments` removes rounding from accumulation
entirely: every finite float64 is a dyadic rational ``m * 2**e`` with
``e >= -1074``, so scaling by ``2**1074`` turns each value into an integer
and Python's big ints carry the *true* sum (and the true sum of squares at
scale ``2**2148``) with zero error, in any order.  ``mean_std`` rounds the
exact result once, through :class:`fractions.Fraction`, so the streamed
mean/std are the correctly-rounded true moments.

The difference to the batch kernel is therefore bounded by numpy's own
summation error — ulp-level for well-conditioned data.  This is the
documented float-reassociation delta of ``mean_value``/``std_value``
(stat indices 5 and 6); every other statistic is integer arithmetic and
matches the batch kernel bit for bit.  The bound is asserted in
``tests/test_sketch.py`` and discussed in ``docs/performance.md``.
"""

from __future__ import annotations

import math
from fractions import Fraction

#: The smallest positive float64 (subnormal) is ``2**-1074``: multiplying
#: any finite float64 by ``2**1074`` therefore yields an exact integer.
_SCALE_BITS = 1074
_SQ_SCALE_BITS = 2 * _SCALE_BITS
_SCALE = 1 << _SCALE_BITS
_SQ_SCALE = 1 << _SQ_SCALE_BITS


def _to_float(fraction: Fraction) -> float:
    """Correctly-rounded float64 of an exact rational (inf past the range)."""
    try:
        return float(fraction)
    except OverflowError:
        return math.inf if fraction > 0 else -math.inf


class ExactMoments:
    """Exact streaming sum / sum-of-squares / min / max of float64 values.

    ``add``/``add_weighted`` never round; ``merge`` is plain integer
    addition, so any partition of the input into sketches merged in any
    order yields the same state bit for bit.
    """

    __slots__ = ("count", "_sum", "_sumsq", "min", "max")

    def __init__(self):
        self.count = 0
        self._sum = 0  # true sum of values, scaled by 2**1074
        self._sumsq = 0  # true sum of squares, scaled by 2**2148
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.add_weighted(value, 1)

    def add_weighted(self, value: float, weight: int) -> None:
        """Accumulate ``weight`` occurrences of ``value`` exactly.

        Only finite values are meaningful (the scan kernel already filters
        non-finite parses); non-finite input raises ``ValueError`` rather
        than silently corrupting the integer state.
        """
        if not math.isfinite(value):
            raise ValueError(f"ExactMoments requires finite values, got {value!r}")
        numerator, denominator = value.as_integer_ratio()
        # denominator is 2**k for floats; bit_length() == k + 1.
        k = denominator.bit_length() - 1
        self._sum += weight * (numerator << (_SCALE_BITS - k))
        self._sumsq += weight * ((numerator * numerator) << (_SQ_SCALE_BITS - 2 * k))
        self.count += weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values, weights=None) -> None:
        """Accumulate a batch (``weights`` aligns with ``values`` when given)."""
        if weights is None:
            for value in values:
                self.add_weighted(value, 1)
        else:
            for value, weight in zip(values, weights):
                self.add_weighted(value, int(weight))

    def merge(self, other: "ExactMoments") -> "ExactMoments":
        self.count += other.count
        self._sum += other._sum
        self._sumsq += other._sumsq
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def mean_std(self) -> tuple[float, float]:
        """Correctly-rounded population mean and standard deviation.

        Variance is the exact ``E[x^2] - E[x]^2`` (never negative: the
        arithmetic is exact), rounded once before the square root.
        """
        if not self.count:
            return 0.0, 0.0
        mean_frac = Fraction(self._sum, _SCALE * self.count)
        var_frac = Fraction(self._sumsq, _SQ_SCALE * self.count) - mean_frac * mean_frac
        return _to_float(mean_frac), math.sqrt(_to_float(var_frac))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactMoments):
            return NotImplemented
        return (
            self.count == other.count
            and self._sum == other._sum
            and self._sumsq == other._sumsq
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactMoments(count={self.count}, min={self.min}, max={self.max})"
